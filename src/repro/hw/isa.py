"""Accelerator operation set and program container.

The compiler lowers a quantized ViT into a linear *program* of three
operation kinds:

* :class:`GemmOp` — an (M×K)·(K×N) integer matrix multiply on the
  systolic array;
* :class:`VectorOp` — an elementwise/reduction pass on the vector unit
  (LayerNorm, softmax, GELU LUT, residual add, requantization);
* :class:`DmaOp` — a DRAM↔SRAM transfer.

Ops carry only *shapes*; the simulator derives timing and energy, and the
functional path executes real integer arithmetic through the same
quantized kernels the CPU reference uses.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterator, List, Optional, Union


class VectorKind(enum.Enum):
    LAYERNORM = "layernorm"
    SOFTMAX = "softmax"
    GELU = "gelu"
    ADD = "add"
    QUANTIZE = "quantize"
    DEQUANTIZE = "dequantize"


class DmaDirection(enum.Enum):
    LOAD = "load"     # DRAM -> SRAM
    STORE = "store"   # SRAM -> DRAM


@dataclasses.dataclass(frozen=True)
class GemmOp:
    """Integer GEMM: activations (M, K) × weights (K, N) → (M, N)."""

    name: str
    m: int
    k: int
    n: int
    weight_bits: int = 8
    act_bits: int = 8
    site: Optional[str] = None   # which QuantizedLinear realizes this GEMM

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"GEMM {self.name!r} has non-positive dims")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def act_bytes(self) -> int:
        return self.m * self.k * self.act_bits // 8

    @property
    def weight_bytes(self) -> int:
        return self.k * self.n * self.weight_bits // 8

    @property
    def out_bytes(self) -> int:
        return self.m * self.n * 4  # int32 accumulators


@dataclasses.dataclass(frozen=True)
class VectorOp:
    """Vector-unit pass over ``elements`` scalars."""

    name: str
    kind: VectorKind
    elements: int
    # Relative cost: passes over the data the op needs (softmax reads the
    # data for max, exp, and normalize → 3; layernorm similar).
    passes: int = 1

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ValueError(f"vector op {self.name!r} with no elements")
        if self.passes <= 0:
            raise ValueError("passes must be positive")


@dataclasses.dataclass(frozen=True)
class DmaOp:
    """DRAM transfer of ``num_bytes``."""

    name: str
    direction: DmaDirection
    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes <= 0:
            raise ValueError(f"DMA op {self.name!r} with no payload")


Operation = Union[GemmOp, VectorOp, DmaOp]


@dataclasses.dataclass
class Program:
    """An ordered operation list plus workload metadata."""

    name: str
    ops: List[Operation] = dataclasses.field(default_factory=list)
    batch: int = 1

    def append(self, op: Operation) -> None:
        self.ops.append(op)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    def total_macs(self) -> int:
        return sum(op.macs for op in self.ops if isinstance(op, GemmOp))

    def total_vector_elements(self) -> int:
        return sum(op.elements * op.passes for op in self.ops
                   if isinstance(op, VectorOp))

    def total_dma_bytes(self) -> int:
        return sum(op.num_bytes for op in self.ops if isinstance(op, DmaOp))

    def counts(self) -> Dict[str, int]:
        out = {"gemm": 0, "vector": 0, "dma": 0}
        for op in self.ops:
            if isinstance(op, GemmOp):
                out["gemm"] += 1
            elif isinstance(op, VectorOp):
                out["vector"] += 1
            else:
                out["dma"] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        return (
            f"Program({self.name}: {counts['gemm']} GEMMs "
            f"[{self.total_macs() / 1e6:.2f} MMACs], "
            f"{counts['vector']} vector ops "
            f"[{self.total_vector_elements() / 1e3:.1f} Kelem], "
            f"{counts['dma']} DMAs [{self.total_dma_bytes() / 1024:.1f} KiB])"
        )
