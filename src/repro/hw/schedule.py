"""Operation-level schedule: when each op runs on which engine.

The simulator reports aggregate latency; the scheduler reconstructs the
underlying timeline — per-op start/end cycles honoring the same
double-buffered overlap model — so reports can show *where* the cycles
go (a textual Gantt chart per engine).  The schedule's makespan matches
the simulator's total cycle count by construction, which the test suite
asserts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import Program
from repro.hw.simulator import OpRecord, Simulator


@dataclasses.dataclass
class ScheduledOp:
    """One operation's placement on the timeline."""

    name: str
    engine: str
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclasses.dataclass
class Schedule:
    """The full timeline."""

    ops: List[ScheduledOp]
    makespan: int

    def engine_ops(self, engine: str) -> List[ScheduledOp]:
        return [op for op in self.ops if op.engine == engine]

    def engine_busy(self, engine: str) -> int:
        return sum(op.cycles for op in self.engine_ops(engine))

    def engine_occupancy(self, engine: str) -> float:
        return self.engine_busy(engine) / self.makespan if self.makespan else 0.0

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart, one row per engine."""
        if not self.ops or self.makespan == 0:
            return "(empty schedule)"
        scale = width / self.makespan
        lines = [f"timeline: {self.makespan} cycles "
                 f"({'#' } = ~{max(1, int(1 / scale))} cycles)"]
        for engine in ("gemm", "vector", "dma"):
            row = [" "] * width
            for op in self.engine_ops(engine):
                lo = min(width - 1, int(op.start * scale))
                hi = min(width, max(lo + 1, int(op.end * scale)))
                for i in range(lo, hi):
                    row[i] = "#"
            occupancy = self.engine_occupancy(engine) * 100.0
            lines.append(f"{engine:<6} |{''.join(row)}| {occupancy:5.1f} %")
        return "\n".join(lines)


def build_schedule(program: Program, config: AcceleratorConfig,
                   overlap_efficiency: float = 0.8) -> Schedule:
    """Place every op on the timeline with the simulator's overlap rule.

    Same-engine ops serialize; an engine switch hides
    ``overlap_efficiency × min(cycles, previous cycles)`` of the new op
    behind the previous one.
    """
    simulator = Simulator(config, overlap_efficiency=overlap_efficiency)
    records: List[OpRecord] = [simulator._op_record(op) for op in program]

    scheduled: List[ScheduledOp] = []
    clock = 0.0
    engine_available: Dict[str, float] = {"gemm": 0.0, "vector": 0.0, "dma": 0.0}
    previous_engine: Optional[str] = None
    previous_cycles = 0
    for record in records:
        if previous_engine is None or record.engine == previous_engine:
            start = clock
        else:
            hidden = overlap_efficiency * min(record.cycles, previous_cycles)
            start = clock - hidden
        # An engine is a physical resource: it cannot start a new op
        # before finishing its previous one (the simulator's aggregate
        # model ignores this; the schedule is the stricter view).
        start = max(start, engine_available[record.engine])
        end = start + record.cycles
        scheduled.append(ScheduledOp(
            name=record.name, engine=record.engine,
            start=int(round(start)), end=int(round(end)),
        ))
        engine_available[record.engine] = end
        clock = end
        previous_engine = record.engine
        previous_cycles = record.cycles
    return Schedule(ops=scheduled, makespan=int(round(clock)))
