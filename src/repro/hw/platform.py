"""Platform-level power/energy accounting for streaming deployments.

The abstract's "3.5× speedup and 40% reduction in energy consumption
compared to GPU-based implementations" pairs a *latency* ratio with an
*energy* ratio that cannot both hold for raw per-inference core energy
(a 3.5× faster device at 0.6× the energy would need 2.1× the power).
The consistent reading — and the one edge deployments actually care
about — is **system energy for a continuous sensing stream**: the board's
idle power integrated over the frame period plus the active-compute
energy of each inference.  Idle power dominates at realistic frame
rates, so the leaner accelerator platform saves tens of percent while
the per-inference core energy saving is orders of magnitude.

This module provides that accounting for both platforms.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class PlatformPower:
    """Board-level power model: idle floor + active adder while computing."""

    name: str
    idle_w: float
    active_extra_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.active_extra_w < 0:
            raise ValueError("power values must be non-negative")

    @staticmethod
    def gpu_board() -> "PlatformPower":
        """Jetson-class module: board idles ~2 W, adds ~8 W under load."""
        return PlatformPower("gpu-board", idle_w=2.0, active_extra_w=8.0)

    @staticmethod
    def accelerator_board() -> "PlatformPower":
        """Accelerator SoC platform: lean MCU-class host + the core.

        The active adder covers the accelerator core, its DRAM traffic,
        and host orchestration during an inference burst.
        """
        return PlatformPower("accelerator-board", idle_w=1.2, active_extra_w=2.0)


def energy_per_frame_j(platform: PlatformPower, inference_latency_s: float,
                       fps: float) -> float:
    """System energy attributable to one frame of a continuous stream.

    The board draws ``idle_w`` for the whole frame period and
    ``active_extra_w`` additionally during the inference burst.  Requires
    the platform to keep up (latency ≤ frame period).
    """
    if fps <= 0:
        raise ValueError("fps must be positive")
    period = 1.0 / fps
    if inference_latency_s > period:
        raise ValueError(
            f"platform cannot sustain {fps} fps: inference takes "
            f"{inference_latency_s * 1e3:.2f} ms > {period * 1e3:.2f} ms frame period"
        )
    return platform.idle_w * period + platform.active_extra_w * inference_latency_s


def streaming_comparison(
    accel_latency_s: float,
    gpu_latency_s: float,
    fps: float = 30.0,
    accel_platform: PlatformPower = PlatformPower.accelerator_board(),
    gpu_platform: PlatformPower = PlatformPower.gpu_board(),
) -> Dict[str, float]:
    """The paper's headline comparison: speedup + streaming energy reduction."""
    accel_energy = energy_per_frame_j(accel_platform, accel_latency_s, fps)
    gpu_energy = energy_per_frame_j(gpu_platform, gpu_latency_s, fps)
    return {
        "fps": fps,
        "speedup": gpu_latency_s / accel_latency_s,
        "accel_latency_ms": accel_latency_s * 1e3,
        "gpu_latency_ms": gpu_latency_s * 1e3,
        "accel_energy_per_frame_mj": accel_energy * 1e3,
        "gpu_energy_per_frame_mj": gpu_energy * 1e3,
        "energy_reduction_pct": 100.0 * (1.0 - accel_energy / gpu_energy),
    }
