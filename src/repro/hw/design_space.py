"""Design-space exploration: the accelerator's area/latency/energy Pareto.

Sweeps array geometry, clock, and SRAM provisioning for a fixed workload
(a compiled quantized ViT) and extracts the Pareto-optimal points — the
analysis a DAC paper runs to justify its chosen configuration.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.area import estimate_area
from repro.hw.compiler import Compiler
from repro.hw.config import AcceleratorConfig
from repro.hw.simulator import Simulator
from repro.quant.vit import QuantizedVisionTransformer


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    config: AcceleratorConfig
    latency_ms: float
    energy_uj: float
    area_mm2: float
    utilization: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (latency, energy, area): no worse on all,
        strictly better on at least one."""
        no_worse = (
            self.latency_ms <= other.latency_ms
            and self.energy_uj <= other.energy_uj
            and self.area_mm2 <= other.area_mm2
        )
        strictly_better = (
            self.latency_ms < other.latency_ms
            or self.energy_uj < other.energy_uj
            or self.area_mm2 < other.area_mm2
        )
        return no_worse and strictly_better

    def as_row(self) -> Dict[str, object]:
        return {
            "array": f"{self.config.array_rows}x{self.config.array_cols}",
            "clock_mhz": self.config.clock_mhz,
            "latency_ms": self.latency_ms,
            "energy_uj": self.energy_uj,
            "area_mm2": self.area_mm2,
            "util_pct": self.utilization * 100.0,
        }


def sweep(
    model: QuantizedVisionTransformer,
    array_sizes: Sequence[Tuple[int, int]] = ((8, 8), (16, 16), (24, 24), (32, 32)),
    clocks_mhz: Sequence[float] = (250.0, 500.0, 800.0),
    batch: int = 1,
    node_nm: float = 28.0,
) -> List[DesignPoint]:
    """Evaluate every configuration in the grid."""
    points: List[DesignPoint] = []
    for (rows, cols), clock in itertools.product(array_sizes, clocks_mhz):
        config = AcceleratorConfig(
            name=f"dse-{rows}x{cols}@{clock:.0f}",
            array_rows=rows, array_cols=cols, clock_mhz=clock,
        )
        program = Compiler(config).compile(model, batch=batch)
        report = Simulator(config).simulate(program)
        points.append(DesignPoint(
            config=config,
            latency_ms=report.latency_ms,
            energy_uj=report.energy_per_inference_j * 1e6,
            area_mm2=estimate_area(config, node_nm=node_nm).total_mm2,
            utilization=report.array_utilization,
        ))
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by latency."""
    front = [
        p for p in points
        if not any(q.dominates(p) for q in points)
    ]
    return sorted(front, key=lambda p: p.latency_ms)
