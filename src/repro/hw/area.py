"""First-order silicon area model for the accelerator.

DAC-style evaluations report area alongside latency/energy.  This model
composes the standard back-of-envelope terms — per-PE MAC area, SRAM
macro density, vector-lane area, and a fixed controller/NoC overhead —
at a configurable technology node with classical area scaling.  Absolute
mm² are indicative; the purpose is comparing accelerator configurations
(the E7 array-size sweep) on an area-latency-energy Pareto.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.hw.config import AcceleratorConfig

# Reference constants at 28 nm (typical published figures).
_REFERENCE_NODE_NM = 28.0
_PE_AREA_UM2 = 450.0          # one int8 MAC PE incl. pipeline registers
_SRAM_UM2_PER_BYTE = 1.1      # single-port SRAM macro density
_VECTOR_LANE_UM2 = 2_500.0    # one fp/int vector lane with LUT share
_CONTROLLER_MM2 = 0.08        # sequencer, DMA engines, NoC, config regs


@dataclasses.dataclass(frozen=True)
class AreaReport:
    """Area breakdown in mm²."""

    node_nm: float
    array_mm2: float
    sram_mm2: float
    vector_mm2: float
    controller_mm2: float

    @property
    def total_mm2(self) -> float:
        return (self.array_mm2 + self.sram_mm2 + self.vector_mm2
                + self.controller_mm2)

    def breakdown(self) -> Dict[str, float]:
        return {
            "array": self.array_mm2,
            "sram": self.sram_mm2,
            "vector": self.vector_mm2,
            "controller": self.controller_mm2,
            "total": self.total_mm2,
        }

    def summary(self) -> str:
        lines = [f"area @ {self.node_nm:.0f} nm: {self.total_mm2:.3f} mm²"]
        for name, mm2 in self.breakdown().items():
            if name != "total":
                lines.append(f"  {name:<10} {mm2:.3f} mm²")
        return "\n".join(lines)


def node_scale(node_nm: float) -> float:
    """Classical area scaling factor relative to the 28 nm reference."""
    if node_nm <= 0:
        raise ValueError("technology node must be positive")
    return (node_nm / _REFERENCE_NODE_NM) ** 2


def estimate_area(config: AcceleratorConfig, node_nm: float = 28.0) -> AreaReport:
    """Estimate the accelerator's silicon area."""
    scale = node_scale(node_nm)
    pe_count = config.array_rows * config.array_cols
    sram_bytes = (config.weight_sram_kib + config.act_sram_kib
                  + config.accum_sram_kib) * 1024
    return AreaReport(
        node_nm=node_nm,
        array_mm2=pe_count * _PE_AREA_UM2 * scale / 1e6,
        sram_mm2=sram_bytes * _SRAM_UM2_PER_BYTE * scale / 1e6,
        vector_mm2=config.vector_lanes * _VECTOR_LANE_UM2 * scale / 1e6,
        controller_mm2=_CONTROLLER_MM2 * scale,
    )
