"""Edge-GPU baseline: a calibrated roofline latency/energy model.

The paper compares its accelerator against a "GPU-based implementation".
We model an embedded (Jetson-class) GPU executing the same ViT program:

* every GEMM becomes a kernel whose time is the roofline maximum of
  compute time (peak throughput × an occupancy factor that penalizes the
  tiny batch-1 GEMMs a 32×32-window ViT produces) and memory time;
* vector ops are partially fused into neighbouring kernels
  (``fusion_factor``); the rest pay a launch each;
* every kernel pays ``kernel_launch_us`` of host-side launch latency —
  the dominant cost for sub-millisecond edge inference, and the reason a
  dedicated accelerator wins at batch 1;
* energy = busy power × latency (+ idle power when duty-cycled).

Constants default to a Jetson-Nano-class part.  They are calibration
inputs, not measurements — EXPERIMENTS.md discusses sensitivity.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.hw.isa import DmaOp, GemmOp, Program, VectorOp


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Embedded GPU platform parameters."""

    name: str = "edge-gpu"
    peak_fp16_tflops: float = 1.0
    dram_gbps: float = 25.6
    kernel_launch_us: float = 3.0
    occupancy_saturation_macs: float = 4.0e6  # GEMM size giving ~50 % occupancy
    min_occupancy: float = 0.02
    vector_gelems_per_s: float = 20.0         # elementwise throughput
    fusion_factor: float = 0.5                # fraction of vector ops fused away
    idle_w: float = 2.0
    busy_w: float = 10.0

    def __post_init__(self) -> None:
        if self.peak_fp16_tflops <= 0 or self.dram_gbps <= 0:
            raise ValueError("throughput parameters must be positive")
        if not 0.0 <= self.fusion_factor <= 1.0:
            raise ValueError("fusion_factor must be in [0, 1]")

    @staticmethod
    def jetson_class() -> "GPUConfig":
        return GPUConfig()

    @staticmethod
    def fast_host() -> "GPUConfig":
        """Optimistic baseline: CUDA-graph launches, better fusion."""
        return GPUConfig(name="edge-gpu-graphs", kernel_launch_us=1.0,
                         fusion_factor=0.8)


@dataclasses.dataclass
class GPUReport:
    """GPU simulation result (mirrors the accelerator's PerfReport)."""

    config_name: str
    program_name: str
    batch: int
    latency_s: float
    energy_j: float
    kernel_count: int
    time_breakdown_s: Dict[str, float]

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def throughput_inferences_per_s(self) -> float:
        return self.batch / self.latency_s

    @property
    def energy_per_inference_j(self) -> float:
        return self.energy_j / self.batch

    def summary(self) -> str:
        lines = [
            f"{self.program_name} on {self.config_name} (batch={self.batch})",
            f"  latency    : {self.latency_ms:.3f} ms ({self.kernel_count} kernels)",
            f"  throughput : {self.throughput_inferences_per_s:.1f} inf/s",
            f"  energy     : {self.energy_per_inference_j * 1e3:.3f} mJ/inference",
        ]
        for component, seconds in sorted(self.time_breakdown_s.items()):
            lines.append(f"  t[{component:<7}] : {seconds * 1e3:.3f} ms")
        return "\n".join(lines)


class GPUModel:
    """Run an accelerator :class:`Program`'s workload through the GPU model.

    The program is used purely as a shape container — the GPU executes
    the float (fp16) network, so weight/act bit widths are ignored and
    operand bytes are recomputed at 2 bytes/element.
    """

    def __init__(self, config: GPUConfig = GPUConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def _occupancy(self, macs: int) -> float:
        cfg = self.config
        frac = macs / (macs + cfg.occupancy_saturation_macs)
        return max(cfg.min_occupancy, 2.0 * frac * 0.5)  # saturates toward 1

    def _gemm_time(self, op: GemmOp) -> float:
        cfg = self.config
        flops = 2.0 * op.macs
        compute = flops / (cfg.peak_fp16_tflops * 1e12 * self._occupancy(op.macs))
        fp16_bytes = 2 * (op.m * op.k + op.k * op.n + op.m * op.n)
        memory = fp16_bytes / (cfg.dram_gbps * 1e9)
        return max(compute, memory)

    def _vector_time(self, op: VectorOp) -> float:
        return op.elements * op.passes / (self.config.vector_gelems_per_s * 1e9)

    def _dma_time(self, op: DmaOp) -> float:
        return op.num_bytes / (self.config.dram_gbps * 1e9)

    # ------------------------------------------------------------------
    def simulate(self, program: Program) -> GPUReport:
        cfg = self.config
        launch = cfg.kernel_launch_us * 1e-6
        compute_s = 0.0
        memory_s = 0.0
        kernels = 0.0
        for op in program:
            if isinstance(op, GemmOp):
                compute_s += self._gemm_time(op)
                kernels += 1.0
            elif isinstance(op, VectorOp):
                compute_s += self._vector_time(op)
                # A fraction of elementwise ops fuse into a neighbouring
                # kernel's epilogue and pay no launch of their own.
                kernels += 1.0 - cfg.fusion_factor
            else:
                memory_s += self._dma_time(op)
        launch_s = kernels * launch
        latency = compute_s + launch_s + memory_s
        energy = cfg.busy_w * latency
        return GPUReport(
            config_name=cfg.name,
            program_name=program.name,
            batch=program.batch,
            latency_s=latency,
            energy_j=energy,
            kernel_count=int(round(kernels)),
            time_breakdown_s={
                "compute": compute_s,
                "launch": launch_s,
                "memory": memory_s,
            },
        )
