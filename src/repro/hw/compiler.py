"""Compiler: quantized ViT → accelerator program.

Lowering strategy (batch-1 oriented, as the paper's edge deployment):

1. all integer weights are DMA-loaded once per inference if they do not
   fit in the weight SRAM, or pinned across inferences if they do — the
   compiler emits the load only in the streaming case;
2. the input image is DMA-loaded, and patches are formed on the fly by
   the activation SRAM's addressing (no cost op);
3. each ViT stage becomes GEMM ops on the systolic array plus vector ops
   (LayerNorm, softmax, GELU, residual adds, requantization);
4. attention's ``QK^T`` and ``AV`` products are GEMMs too (per head), at
   activation precision;
5. logits are DMA-stored at the end.

The emitted :class:`~repro.hw.isa.Program` is purely shape-based; the
functional equivalence of the integer kernels is established separately
(the simulator can execute the program's GEMM sites through the exact
:class:`~repro.quant.QuantizedLinear` arithmetic).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import (
    DmaDirection,
    DmaOp,
    GemmOp,
    Program,
    VectorKind,
    VectorOp,
)
from repro.hw.memory import MemoryModel
from repro.hw.vector_unit import default_passes
from repro.quant.vit import QuantizedVisionTransformer


def _vector(name: str, kind: VectorKind, elements: int) -> VectorOp:
    return VectorOp(name=name, kind=kind, elements=elements,
                    passes=default_passes(kind))


@dataclasses.dataclass
class Compiler:
    """Lower a quantized ViT to a :class:`Program`."""

    config: AcceleratorConfig

    def compile(self, model: QuantizedVisionTransformer, batch: int = 1,
                pin_weights: bool = True) -> Program:
        if batch <= 0:
            raise ValueError("batch must be positive")
        cfg = model.config
        memory = MemoryModel(self.config)
        program = Program(name=f"{cfg.depth}x{cfg.dim}-vit-b{batch}", batch=batch)

        # Packed footprint: sub-byte weights round up to whole bytes per
        # layer (matches QuantizedVisionTransformer.model_size_bytes).
        total_weight_bytes = sum(
            (layer.weight_q.size * layer.weight_bits + 7) // 8
            for layer in model.layers.values()
        )
        weights_resident = pin_weights and memory.weights_fit(total_weight_bytes)
        if not weights_resident:
            program.append(DmaOp("load_weights", DmaDirection.LOAD,
                                 total_weight_bytes))

        tokens = cfg.num_tokens
        dim = cfg.dim
        heads = cfg.num_heads
        head_dim = dim // heads
        act_bits = next(iter(model.layers.values())).act_bits

        def gemm(site: str, m: int, k: int, n: int,
                 name: Optional[str] = None) -> None:
            layer = model.layers.get(site)
            weight_bits = layer.weight_bits if layer is not None else act_bits
            program.append(GemmOp(
                name=name or site, m=m * batch, k=k, n=n,
                weight_bits=weight_bits, act_bits=act_bits,
                site=site if layer is not None else None,
            ))

        # --- input ---
        image_bytes = batch * cfg.in_channels * cfg.image_size ** 2
        program.append(DmaOp("load_image", DmaDirection.LOAD, image_bytes))
        program.append(_vector("quantize_input", VectorKind.QUANTIZE,
                               batch * cfg.num_patches * cfg.patch_dim))

        # --- patch embedding ---
        gemm("patch_proj", m=cfg.num_patches, k=cfg.patch_dim, n=dim)
        program.append(_vector("add_pos_embed", VectorKind.ADD,
                               batch * tokens * dim))

        # --- encoder blocks ---
        for i in range(cfg.depth):
            prefix = f"block{i}"
            seq_elems = batch * tokens * dim
            program.append(_vector(f"{prefix}.ln1", VectorKind.LAYERNORM, seq_elems))
            program.append(_vector(f"{prefix}.quant_qkv", VectorKind.QUANTIZE, seq_elems))
            gemm(f"{prefix}.qkv", m=tokens, k=dim, n=3 * dim)
            # attention products per head, at activation precision
            for h in range(heads):
                program.append(GemmOp(
                    name=f"{prefix}.scores.h{h}", m=batch * tokens,
                    k=head_dim, n=tokens,
                    weight_bits=act_bits, act_bits=act_bits, site=None,
                ))
            program.append(_vector(f"{prefix}.softmax", VectorKind.SOFTMAX,
                                   batch * heads * tokens * tokens))
            for h in range(heads):
                program.append(GemmOp(
                    name=f"{prefix}.context.h{h}", m=batch * tokens,
                    k=tokens, n=head_dim,
                    weight_bits=act_bits, act_bits=act_bits, site=None,
                ))
            program.append(_vector(f"{prefix}.quant_proj", VectorKind.QUANTIZE, seq_elems))
            gemm(f"{prefix}.proj", m=tokens, k=dim, n=dim)
            program.append(_vector(f"{prefix}.residual1", VectorKind.ADD, seq_elems))

            hidden = int(dim * cfg.mlp_ratio)
            program.append(_vector(f"{prefix}.ln2", VectorKind.LAYERNORM, seq_elems))
            program.append(_vector(f"{prefix}.quant_fc1", VectorKind.QUANTIZE, seq_elems))
            gemm(f"{prefix}.fc1", m=tokens, k=dim, n=hidden)
            program.append(_vector(f"{prefix}.gelu", VectorKind.GELU,
                                   batch * tokens * hidden))
            program.append(_vector(f"{prefix}.quant_fc2", VectorKind.QUANTIZE,
                                   batch * tokens * hidden))
            gemm(f"{prefix}.fc2", m=tokens, k=hidden, n=dim)
            program.append(_vector(f"{prefix}.residual2", VectorKind.ADD, seq_elems))

        # --- heads ---
        program.append(_vector("final_ln", VectorKind.LAYERNORM, batch * tokens * dim))
        program.append(_vector("quant_head", VectorKind.QUANTIZE, batch * dim))
        gemm("head", m=1, k=dim, n=cfg.num_classes)
        logits = cfg.num_classes
        for name in model.attribute_names:
            site = f"attr_head_{name}"
            cardinality = model.layers[site].out_features
            gemm(site, m=1, k=dim, n=cardinality)
            logits += cardinality
        if "task_head.fc1" in model.layers:
            gemm("task_head.fc1", m=1, k=dim, n=dim)
            program.append(_vector("task_head.gelu", VectorKind.GELU, batch * dim))
            gemm("task_head.fc2", m=1, k=dim, n=2)
            logits += 2
        program.append(DmaOp("store_logits", DmaDirection.STORE,
                             max(1, batch * logits * 4)))
        return program


def compile_model(model: QuantizedVisionTransformer,
                  config: Optional[AcceleratorConfig] = None,
                  batch: int = 1) -> Program:
    """One-call convenience wrapper."""
    return Compiler(config or AcceleratorConfig.edge_default()).compile(
        model, batch=batch
    )
