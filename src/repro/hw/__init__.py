"""Cycle-level accelerator simulator, compiler, and GPU baseline.

The paper reports a 3.5× speedup and 40% energy reduction for its
hardware acceleration circuit versus a GPU implementation.  Those numbers
come from a pre-silicon performance/energy model — the standard DAC
methodology — and this package rebuilds that model:

* :class:`AcceleratorConfig` — the microarchitecture: a weight-stationary
  systolic GEMM array, a SIMD vector unit (LayerNorm / softmax / GELU
  LUT), double-buffered SRAM scratchpads, and a DRAM channel;
* :class:`SystolicArray` — functional *and* timing model of the GEMM
  array (the functional path bit-matches :class:`repro.quant.QuantizedLinear`);
* :class:`Compiler` — lowers a :class:`~repro.quant.QuantizedVisionTransformer`
  into a program of GEMM / vector / DMA operations;
* :class:`Simulator` — executes a program against a config, producing
  latency, utilization, and per-component energy reports;
* :class:`GPUModel` — a calibrated roofline model of an edge GPU running
  the same network, the paper's comparison baseline.
"""

from repro.hw.config import AcceleratorConfig, EnergyTable
from repro.hw.isa import GemmOp, VectorOp, DmaOp, VectorKind, DmaDirection, Program
from repro.hw.systolic import SystolicArray, GemmTiming
from repro.hw.vector_unit import VectorUnit, gelu_lut, GELU_LUT_RANGE
from repro.hw.memory import MemoryModel, DmaTiming
from repro.hw.compiler import Compiler, compile_model
from repro.hw.simulator import Simulator, PerfReport, OpRecord
from repro.hw.gpu import GPUModel, GPUConfig
from repro.hw.platform import PlatformPower, energy_per_frame_j, streaming_comparison
from repro.hw.area import AreaReport, estimate_area, node_scale
from repro.hw.schedule import Schedule, ScheduledOp, build_schedule
from repro.hw.design_space import DesignPoint, pareto_front, sweep

__all__ = [
    "AcceleratorConfig",
    "EnergyTable",
    "GemmOp",
    "VectorOp",
    "DmaOp",
    "VectorKind",
    "DmaDirection",
    "Program",
    "SystolicArray",
    "GemmTiming",
    "VectorUnit",
    "gelu_lut",
    "GELU_LUT_RANGE",
    "MemoryModel",
    "DmaTiming",
    "Compiler",
    "compile_model",
    "Simulator",
    "PerfReport",
    "OpRecord",
    "GPUModel",
    "GPUConfig",
    "PlatformPower",
    "energy_per_frame_j",
    "streaming_comparison",
    "AreaReport",
    "estimate_area",
    "node_scale",
    "Schedule",
    "ScheduledOp",
    "build_schedule",
    "DesignPoint",
    "pareto_front",
    "sweep",
]
