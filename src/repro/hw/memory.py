"""Memory hierarchy model: SRAM scratchpads and the DRAM channel."""

from __future__ import annotations

import dataclasses
import math

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import DmaOp


@dataclasses.dataclass(frozen=True)
class DmaTiming:
    cycles: int
    num_bytes: int


class MemoryModel:
    """DMA timing plus SRAM capacity checks."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def dma_cycles(self, op: DmaOp) -> DmaTiming:
        cfg = self.config
        transfer = math.ceil(op.num_bytes / cfg.dram_bytes_per_cycle)
        return DmaTiming(cycles=cfg.dram_latency_cycles + transfer,
                         num_bytes=op.num_bytes)

    # ------------------------------------------------------------------
    def weights_fit(self, total_weight_bytes: int) -> bool:
        return total_weight_bytes <= self.config.weight_sram_kib * 1024

    def activations_fit(self, peak_act_bytes: int) -> bool:
        return peak_act_bytes <= self.config.act_sram_kib * 1024

    def check_layer(self, weight_bytes: int, act_bytes: int,
                    out_bytes: int) -> None:
        """Raise if a single layer cannot be resident during execution."""
        cfg = self.config
        if weight_bytes > cfg.weight_sram_kib * 1024:
            raise ValueError(
                f"layer weights ({weight_bytes} B) exceed weight SRAM "
                f"({cfg.weight_sram_kib} KiB); tiling over DRAM required"
            )
        if act_bytes > cfg.act_sram_kib * 1024:
            raise ValueError(
                f"layer activations ({act_bytes} B) exceed activation SRAM "
                f"({cfg.act_sram_kib} KiB)"
            )
        if out_bytes > cfg.accum_sram_kib * 1024:
            raise ValueError(
                f"layer accumulators ({out_bytes} B) exceed accumulator SRAM "
                f"({cfg.accum_sram_kib} KiB)"
            )
