"""Weight-stationary systolic array: timing and functional models.

Timing model
------------
The array holds an ``R×C`` weight tile (R = reduction/K dimension,
C = output-channel/N dimension).  A GEMM of shape (M, K) × (K, N) is tiled
into ``ceil(K/R) × ceil(N/C)`` weight tiles; for each tile the M
activation rows stream through the array with the classic systolic fill +
drain pipeline:

    cycles(tile) = weight_load + M + R + C - 2

Weight loads hide behind compute via double buffering except for a small
fixed swap cost (``weight_load_cycles_per_tile``).  Partial-sum
accumulation across the K tiles happens in the int32 accumulator SRAM and
costs no extra array cycles.

Functional model
----------------
:meth:`SystolicArray.run` executes the same tiling loop with real integer
arithmetic and returns both the int32 result and the cycle count, so the
test suite can bit-match the array against a plain ``@`` matmul while
checking the cycle ledger.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

import numpy as np

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import GemmOp


@dataclasses.dataclass(frozen=True)
class GemmTiming:
    """Cycle breakdown of one GEMM on the array."""

    cycles: int
    tiles: int
    macs: int
    peak_macs: int  # cycles × array PEs

    @property
    def utilization(self) -> float:
        """Fraction of PE-cycles doing useful MACs, in (0, 1]."""
        return self.macs / self.peak_macs if self.peak_macs else 0.0


class SystolicArray:
    """Timing + functional model of the GEMM unit."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def tiles_for(self, k: int, n: int) -> int:
        cfg = self.config
        return math.ceil(k / cfg.array_rows) * math.ceil(n / cfg.array_cols)

    def gemm_cycles(self, op: GemmOp) -> GemmTiming:
        cfg = self.config
        tiles = self.tiles_for(op.k, op.n)
        per_tile = cfg.weight_load_cycles_per_tile + op.m + cfg.array_rows + cfg.array_cols - 2
        cycles = tiles * per_tile
        return GemmTiming(
            cycles=cycles,
            tiles=tiles,
            macs=op.macs,
            peak_macs=cycles * cfg.peak_macs_per_cycle,
        )

    # ------------------------------------------------------------------
    # functional execution (bit-exact integer tiling loop)
    # ------------------------------------------------------------------
    def run(self, activations: np.ndarray, weights: np.ndarray) -> Tuple[np.ndarray, GemmTiming]:
        """Execute (M, K) × (K, N) through the tiled array.

        ``activations`` and ``weights`` are integer arrays; the result is
        the exact int64 accumulation, identical to ``activations @ weights``.
        """
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("systolic array executes 2-D operands")
        m, k = activations.shape
        k2, n = weights.shape
        if k != k2:
            raise ValueError(f"shape mismatch: ({m},{k}) x ({k2},{n})")
        cfg = self.config
        acc = np.zeros((m, n), dtype=np.int64)
        a64 = activations.astype(np.int64)
        w64 = weights.astype(np.int64)
        for k0 in range(0, k, cfg.array_rows):
            k1 = min(k0 + cfg.array_rows, k)
            for n0 in range(0, n, cfg.array_cols):
                n1 = min(n0 + cfg.array_cols, n)
                # One weight tile resident in the array; stream M rows.
                acc[:, n0:n1] += a64[:, k0:k1] @ w64[k0:k1, n0:n1]
        timing = self.gemm_cycles(
            GemmOp(name="run", m=m, k=k, n=n)
        )
        return acc, timing
