"""SIMD vector unit: timing model and the GELU lookup table.

The vector unit handles everything the systolic array does not: LayerNorm
(two reduction passes + normalize), softmax (max, exp, normalize), the
GELU activation via a piecewise-linear lookup table, residual adds, and
(de)quantization.  Throughput is ``vector_lanes`` elements per cycle per
pass.

The GELU LUT is implemented functionally so the approximation error is a
measurable quantity (tests assert < 1e-2 absolute error inside the table
range), mirroring how a real design would validate its special-function
unit.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import VectorKind, VectorOp

GELU_LUT_RANGE: Tuple[float, float] = (-8.0, 8.0)
_GELU_LUT_SIZE = 512

# Precompute the table once at import: a real design burns this into ROM.
_LUT_X = np.linspace(GELU_LUT_RANGE[0], GELU_LUT_RANGE[1], _GELU_LUT_SIZE)
_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)
_LUT_Y = 0.5 * _LUT_X * (1.0 + np.tanh(_SQRT_2_OVER_PI * (_LUT_X + 0.044715 * _LUT_X ** 3)))


def gelu_lut(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear GELU as the hardware special-function unit computes it.

    Values outside the table range saturate to the identity (positive) or
    zero (negative), matching GELU's asymptotes.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.interp(x, _LUT_X, _LUT_Y)
    out = np.where(x > GELU_LUT_RANGE[1], x, out)
    out = np.where(x < GELU_LUT_RANGE[0], 0.0, out)
    return out.astype(np.float32)


# Pass counts per op kind: how many times the data streams through lanes.
_PASSES = {
    VectorKind.LAYERNORM: 3,   # mean, variance, normalize+affine
    VectorKind.SOFTMAX: 3,     # max, exp+sum, divide
    VectorKind.GELU: 1,        # LUT lookup
    VectorKind.ADD: 1,
    VectorKind.QUANTIZE: 1,
    VectorKind.DEQUANTIZE: 1,
}


def default_passes(kind: VectorKind) -> int:
    return _PASSES[kind]


class VectorUnit:
    """Timing model: cycles for a vector op."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    def op_cycles(self, op: VectorOp) -> int:
        lanes = self.config.vector_lanes
        per_pass = math.ceil(op.elements / lanes)
        # Small fixed pipeline start cost per pass.
        return op.passes * (per_pass + 4)
