"""Program simulator: latency, utilization, and energy.

Execution model: GEMMs occupy the systolic array, vector ops the vector
unit, DMAs the DRAM channel.  Consecutive operations on *different*
engines overlap under double buffering up to a configurable overlap
efficiency; operations on the same engine serialize.  This captures the
first-order pipelining a real scheduler achieves without simulating a
full dependency graph.

Energy model: per-action constants from the config's
:class:`~repro.hw.config.EnergyTable` — MAC energy (scaled by operand
bits), SRAM traffic for GEMM operands/results, DRAM traffic for DMAs,
vector-lane operations, plus static power integrated over the latency.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import DmaOp, GemmOp, Program, VectorOp
from repro.hw.memory import MemoryModel
from repro.hw.systolic import SystolicArray
from repro.hw.vector_unit import VectorUnit
from repro.obs import get_registry


@dataclasses.dataclass
class OpRecord:
    """Per-operation simulation record."""

    name: str
    engine: str          # "gemm" | "vector" | "dma"
    cycles: int
    energy_pj: float
    utilization: float = 1.0


@dataclasses.dataclass
class PerfReport:
    """Simulation result for one program."""

    config_name: str
    program_name: str
    batch: int
    total_cycles: int
    latency_s: float
    energy_j: float
    records: List[OpRecord]
    engine_cycles: Dict[str, int]
    energy_breakdown_j: Dict[str, float]

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def throughput_inferences_per_s(self) -> float:
        return self.batch / self.latency_s

    @property
    def energy_per_inference_j(self) -> float:
        return self.energy_j / self.batch

    @property
    def array_utilization(self) -> float:
        """MAC utilization of the systolic array while it is active."""
        gemm_records = [r for r in self.records if r.engine == "gemm"]
        if not gemm_records:
            return 0.0
        weighted = sum(r.utilization * r.cycles for r in gemm_records)
        cycles = sum(r.cycles for r in gemm_records)
        return weighted / cycles

    def summary(self) -> str:
        lines = [
            f"{self.program_name} on {self.config_name} (batch={self.batch})",
            f"  latency       : {self.latency_ms:.3f} ms "
            f"({self.total_cycles} cycles)",
            f"  throughput    : {self.throughput_inferences_per_s:.1f} inf/s",
            f"  energy        : {self.energy_per_inference_j * 1e3:.3f} mJ/inference",
            f"  array util    : {self.array_utilization * 100:.1f} %",
        ]
        for engine, cycles in sorted(self.engine_cycles.items()):
            lines.append(f"  {engine:<6} cycles : {cycles}")
        for component, joules in sorted(self.energy_breakdown_j.items()):
            lines.append(f"  E[{component:<7}]  : {joules * 1e3:.3f} mJ")
        return "\n".join(lines)


class Simulator:
    """Execute a :class:`Program` against an :class:`AcceleratorConfig`."""

    def __init__(self, config: AcceleratorConfig,
                 overlap_efficiency: float = 0.8) -> None:
        if not 0.0 <= overlap_efficiency <= 1.0:
            raise ValueError("overlap_efficiency must be in [0, 1]")
        self.config = config
        self.overlap_efficiency = overlap_efficiency
        self.array = SystolicArray(config)
        self.vector_unit = VectorUnit(config)
        self.memory = MemoryModel(config)

    # ------------------------------------------------------------------
    def _op_record(self, op) -> OpRecord:
        energy = self.config.energy
        if isinstance(op, GemmOp):
            timing = self.array.gemm_cycles(op)
            mac_energy = op.macs * energy.mac_pj(op.weight_bits, op.act_bits)
            sram_traffic = (
                op.act_bytes * energy.sram_read_pj_per_byte
                + op.weight_bytes * energy.sram_read_pj_per_byte
                + op.out_bytes * energy.sram_write_pj_per_byte
            )
            return OpRecord(op.name, "gemm", timing.cycles,
                            mac_energy + sram_traffic, timing.utilization)
        if isinstance(op, VectorOp):
            cycles = self.vector_unit.op_cycles(op)
            pj = op.elements * op.passes * energy.vector_op_pj
            # vector data passes through SRAM once per pass
            pj += op.elements * op.passes * (
                energy.sram_read_pj_per_byte + energy.sram_write_pj_per_byte
            )
            return OpRecord(op.name, "vector", cycles, pj)
        if isinstance(op, DmaOp):
            timing = self.memory.dma_cycles(op)
            pj = op.num_bytes * energy.dram_pj_per_byte
            return OpRecord(op.name, "dma", timing.cycles, pj)
        raise TypeError(f"unknown op type {type(op)!r}")

    # ------------------------------------------------------------------
    def simulate(self, program: Program) -> PerfReport:
        obs = get_registry()
        with obs.span("hw.simulate", program=program.name, batch=program.batch,
                      config=self.config.name) as span:
            with obs.time("hw.op_model"):
                records = [self._op_record(op) for op in program]

            # Latency: serialize within an engine; overlap engine switches.
            with obs.time("hw.step_loop"):
                total = 0.0
                previous_engine: Optional[str] = None
                previous_cycles = 0
                for record in records:
                    if previous_engine is None or record.engine == previous_engine:
                        total += record.cycles
                    else:
                        # Hide part of the shorter op behind the longer one.
                        hidden = self.overlap_efficiency * min(record.cycles, previous_cycles)
                        total += record.cycles - hidden
                    previous_engine = record.engine
                    previous_cycles = record.cycles
            total_cycles = int(round(total))
            obs.count("hw.ops_simulated", len(records))
            span.set_attr(ops=len(records), total_cycles=total_cycles)
        latency_s = self.config.cycles_to_seconds(total_cycles)

        dynamic_pj: Dict[str, float] = {"gemm": 0.0, "vector": 0.0, "dma": 0.0}
        engine_cycles: Dict[str, int] = {"gemm": 0, "vector": 0, "dma": 0}
        for record in records:
            dynamic_pj[record.engine] += record.energy_pj
            engine_cycles[record.engine] += record.cycles

        static_j = self.config.energy.static_mw * 1e-3 * latency_s
        breakdown = {k: v * 1e-12 for k, v in dynamic_pj.items()}
        breakdown["static"] = static_j
        energy_j = sum(breakdown.values())

        return PerfReport(
            config_name=self.config.name,
            program_name=program.name,
            batch=program.batch,
            total_cycles=total_cycles,
            latency_s=latency_s,
            energy_j=energy_j,
            records=records,
            engine_cycles=engine_cycles,
            energy_breakdown_j=breakdown,
        )
