"""Accelerator microarchitecture configuration and energy tables.

Energy numbers are per-action constants in picojoules, drawn from the
standard 28/22 nm literature values used by DAC-style evaluations
(int8 MAC ≈ 0.1–0.3 pJ, SRAM access ≈ 1–2 pJ/byte, DRAM ≈ 20–60 pJ/byte).
Absolute joules are not the reproduction target — the accelerator/GPU
*ratios* are — but keeping the constants physically plausible keeps the
ratios honest.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class EnergyTable:
    """Per-action energy constants (picojoules)."""

    mac_int8_pj: float = 0.2          # one int8×int8+int32 MAC
    mac_scale_per_bit: float = 0.125  # MAC energy scales ~linearly with operand bits
    sram_read_pj_per_byte: float = 1.2
    sram_write_pj_per_byte: float = 1.5
    dram_pj_per_byte: float = 40.0
    vector_op_pj: float = 1.0         # one vector-lane elementary operation
    static_mw: float = 45.0           # leakage + clock tree for the whole core

    def mac_pj(self, weight_bits: int, act_bits: int) -> float:
        """MAC energy scaled by operand widths (8b/8b is the reference)."""
        width_factor = (weight_bits + act_bits) / 16.0
        return self.mac_int8_pj * max(width_factor, 0.25)


@dataclasses.dataclass(frozen=True)
class AcceleratorConfig:
    """The iTask edge accelerator."""

    name: str = "itask-edge"
    array_rows: int = 16              # K dimension of the weight-stationary tile
    array_cols: int = 16              # N dimension
    clock_mhz: float = 500.0
    weight_sram_kib: int = 512
    act_sram_kib: int = 256
    accum_sram_kib: int = 64
    dram_gbps: float = 8.0            # LPDDR4-class single channel
    dram_latency_cycles: int = 60
    vector_lanes: int = 32
    weight_load_cycles_per_tile: int = 4   # double-buffered weight swap overhead
    energy: EnergyTable = EnergyTable()

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.clock_mhz <= 0 or self.dram_gbps <= 0:
            raise ValueError("clock and bandwidth must be positive")

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def peak_int8_tops(self) -> float:
        """Peak int8 throughput in tera-ops (2 ops per MAC)."""
        return 2.0 * self.peak_macs_per_cycle * self.clock_hz / 1e12

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_gbps * 1e9 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    @staticmethod
    def edge_default() -> "AcceleratorConfig":
        """The configuration used throughout the paper reproduction."""
        return AcceleratorConfig()

    @staticmethod
    def small() -> "AcceleratorConfig":
        """Area-constrained variant (ablation: array-size sweep)."""
        return AcceleratorConfig(name="itask-edge-small", array_rows=8,
                                 array_cols=8, weight_sram_kib=256,
                                 act_sram_kib=128)

    @staticmethod
    def large() -> "AcceleratorConfig":
        return AcceleratorConfig(name="itask-edge-large", array_rows=32,
                                 array_cols=32, weight_sram_kib=1024,
                                 act_sram_kib=512)
