"""Lightweight observability: stage timers and counters for hot paths.

``repro.obs`` has no dependencies (stdlib only) and is safe to import
from any layer.  The detection pipeline, KG matcher, and hardware
simulator all record into the process-wide registry so benchmarks can
print a per-stage latency breakdown instead of one opaque number:

    from repro.obs import get_registry
    get_registry().reset()
    detector.detect(scene)
    print(get_registry().report("detect"))
"""

from repro.obs.registry import Counter, Registry, Timer, get_registry, traced

__all__ = ["Counter", "Registry", "Timer", "get_registry", "traced"]
