"""Observability: spans, live metrics, mergeable export, SLOs.

``repro.obs`` has no dependencies (stdlib only) and is safe to import
from any layer.  The detection pipeline, KG matcher, hardware simulator,
trainers, and quantization calibration all record into the process-wide
registry, so benchmarks can print a per-stage latency breakdown — with
p50/p90/p99 from streaming histograms — instead of one opaque number:

    from repro.obs import get_registry
    get_registry().reset()
    detector.detect(scene)
    print(get_registry().report("detect"))

Timed blocks nest: ``registry.span("detect.total")`` around
``registry.time("detect.nms")`` yields a parent/child trace tree that
:mod:`repro.obs.trace` exports as Chrome trace-event JSON (open it in
Perfetto), and :mod:`repro.obs.telemetry` persists alongside a run
manifest as ``BENCH_*.json`` for ``repro obs report/trace/compare``.

On top of that process-lifetime layer sits the request/live surface:

* :mod:`repro.obs.context` — per-request trace ids (tenant, mission,
  deadline) that survive the engine's queue hop, so every span and
  cascade routing decision is attributable to one request;
* :mod:`repro.obs.series` — sliding-window rate/p50/p99 per metric in
  constant memory, for "what is happening *now*";
* :mod:`repro.obs.export` — Prometheus text exposition, a bit-exact
  mergeable snapshot protocol for sharded serving, and the
  ``repro obs serve`` HTTP surface;
* :mod:`repro.obs.slo` — declarative objectives with fast/slow
  multi-window burn-rate alerts (live) and telemetry gates (CI);
* :mod:`repro.obs.sampler` — tail-based exemplar retention (slowest /
  shed / escalated / errored traces) plus a flight-recorder ring
  dumped to replayable JSON on engine errors and shed storms.
"""

from repro.obs.context import (
    RequestContext,
    context_from_wire,
    context_to_wire,
    current_context,
    new_trace_id,
    request_context,
    use_context,
)
from repro.obs.registry import (
    Counter,
    Distribution,
    Histogram,
    Registry,
    Span,
    Timer,
    get_registry,
    install_registry,
    traced,
)
from repro.obs.series import (
    SeriesRecorder,
    WindowedCounter,
    WindowedSeries,
    merge_series_states,
)
from repro.obs.export import (
    MetricsServer,
    merge_snapshots,
    mergeable_snapshot,
    prometheus_text,
    snapshot_delta,
)
from repro.obs.slo import (
    SLO,
    SLOStatus,
    default_slos,
    evaluate_live,
    evaluate_telemetry,
    load_slos,
)
from repro.obs.sampler import (
    Exemplar,
    ExemplarSampler,
    FlightRecorder,
    ShedStormDetector,
    get_sampler,
    install_sampler,
)
from repro.obs.trace import chrome_trace, flatten_tree, span_tree
from repro.obs.telemetry import (
    SCHEMA_VERSION,
    Comparison,
    CompareRow,
    build_telemetry,
    compare_telemetry,
    load_telemetry,
    run_manifest,
    write_telemetry,
)

__all__ = [
    "Counter",
    "Distribution",
    "Histogram",
    "Registry",
    "Span",
    "Timer",
    "get_registry",
    "install_registry",
    "traced",
    "RequestContext",
    "context_from_wire",
    "context_to_wire",
    "current_context",
    "new_trace_id",
    "request_context",
    "use_context",
    "SeriesRecorder",
    "WindowedCounter",
    "WindowedSeries",
    "merge_series_states",
    "MetricsServer",
    "merge_snapshots",
    "mergeable_snapshot",
    "prometheus_text",
    "snapshot_delta",
    "SLO",
    "SLOStatus",
    "default_slos",
    "evaluate_live",
    "evaluate_telemetry",
    "load_slos",
    "Exemplar",
    "ExemplarSampler",
    "FlightRecorder",
    "ShedStormDetector",
    "get_sampler",
    "install_sampler",
    "chrome_trace",
    "span_tree",
    "flatten_tree",
    "SCHEMA_VERSION",
    "Comparison",
    "CompareRow",
    "build_telemetry",
    "compare_telemetry",
    "load_telemetry",
    "run_manifest",
    "write_telemetry",
]
