"""Lightweight observability: spans, stage timers, and counters.

``repro.obs`` has no dependencies (stdlib only) and is safe to import
from any layer.  The detection pipeline, KG matcher, hardware simulator,
trainers, and quantization calibration all record into the process-wide
registry, so benchmarks can print a per-stage latency breakdown — with
p50/p90/p99 from streaming histograms — instead of one opaque number:

    from repro.obs import get_registry
    get_registry().reset()
    detector.detect(scene)
    print(get_registry().report("detect"))

Timed blocks nest: ``registry.span("detect.total")`` around
``registry.time("detect.nms")`` yields a parent/child trace tree that
:mod:`repro.obs.trace` exports as Chrome trace-event JSON (open it in
Perfetto), and :mod:`repro.obs.telemetry` persists alongside a run
manifest as ``BENCH_*.json`` for ``repro obs report/trace/compare``.
"""

from repro.obs.registry import (
    Counter,
    Distribution,
    Histogram,
    Registry,
    Span,
    Timer,
    get_registry,
    traced,
)
from repro.obs.trace import chrome_trace, flatten_tree, span_tree
from repro.obs.telemetry import (
    SCHEMA_VERSION,
    Comparison,
    CompareRow,
    build_telemetry,
    compare_telemetry,
    load_telemetry,
    run_manifest,
    write_telemetry,
)

__all__ = [
    "Counter",
    "Distribution",
    "Histogram",
    "Registry",
    "Span",
    "Timer",
    "get_registry",
    "traced",
    "chrome_trace",
    "span_tree",
    "flatten_tree",
    "SCHEMA_VERSION",
    "Comparison",
    "CompareRow",
    "build_telemetry",
    "compare_telemetry",
    "load_telemetry",
    "run_manifest",
    "write_telemetry",
]
