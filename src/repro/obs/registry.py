"""Zero-dependency timers and counters for the inference hot path.

The registry is deliberately tiny: a :class:`Timer` accumulates wall-clock
durations per named stage, a :class:`Counter` accumulates event counts,
and a :class:`Registry` holds both behind get-or-create accessors.  Code
under measurement uses the ``with registry.time("stage")`` context manager
(or the :func:`traced` decorator for whole functions); benchmarks call
``registry.report()`` to print a per-stage latency table and
``registry.reset()`` between timed sections.

A process-wide default registry (:func:`get_registry`) lets deep call
sites — window extraction, model forward, KG matching, NMS, the hardware
simulator — record into one shared table without plumbing a handle
through every signature.  Instrumentation overhead is two
``perf_counter`` calls per stage; setting ``registry.enabled = False``
turns every probe into a no-op for overhead-sensitive runs.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import math
import threading
import time
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Timer",
    "Registry",
    "get_registry",
    "traced",
]


@dataclasses.dataclass
class Timer:
    """Accumulated wall-clock statistics for one named stage."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    last_s: float = 0.0

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        self.last_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


@dataclasses.dataclass
class Counter:
    """Accumulated event count (windows scanned, ops simulated, ...)."""

    name: str
    value: float = 0

    def add(self, amount: float = 1) -> None:
        self.value += amount


class Registry:
    """Named collection of timers and counters.

    Thread-safe for concurrent ``time``/``count`` calls; detection servers
    can share one registry across worker threads.
    """

    def __init__(self, name: str = "obs") -> None:
        self.name = name
        self.enabled = True
        self._timers: Dict[str, Timer] = {}
        self._counters: Dict[str, Counter] = {}
        self._lock = threading.Lock()

    # -- accessors ------------------------------------------------------
    def timer(self, name: str) -> Timer:
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = Timer(name)
            return timer

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    @property
    def timers(self) -> Dict[str, Timer]:
        with self._lock:
            return dict(self._timers)

    @property
    def counters(self) -> Dict[str, Counter]:
        with self._lock:
            return dict(self._counters)

    # -- recording ------------------------------------------------------
    @contextlib.contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager accumulating the block's wall time under ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timer(name).record(time.perf_counter() - start)

    def count(self, name: str, amount: float = 1) -> None:
        if self.enabled:
            self.counter(name).add(amount)

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator timing every call to the wrapped function.

        The stage name defaults to the function's qualified name.
        """

        def decorate(func: Callable) -> Callable:
            stage = name or f"{func.__module__.split('.')[-1]}.{func.__qualname__}"

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.time(stage):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # -- inspection -----------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict view of all stats (stable for serialization/tests)."""
        with self._lock:
            return {
                "timers": {
                    n: {
                        "calls": t.calls,
                        "total_s": t.total_s,
                        "mean_s": t.mean_s,
                        "min_s": t.min_s,
                        "max_s": t.max_s,
                        "last_s": t.last_s,
                    }
                    for n, t in self._timers.items()
                },
                "counters": {n: c.value for n, c in self._counters.items()},
            }

    def report(self, title: Optional[str] = None) -> str:
        """Human-readable per-stage latency table, sorted by total time."""
        lines = [f"== {title or self.name}: per-stage timings =="]
        timers = sorted(self.timers.values(), key=lambda t: -t.total_s)
        if timers:
            width = max(len(t.name) for t in timers)
            lines.append(
                f"{'stage'.ljust(width)} | {'calls':>6} | {'total ms':>10} | "
                f"{'mean ms':>10} | {'max ms':>10}"
            )
            for t in timers:
                lines.append(
                    f"{t.name.ljust(width)} | {t.calls:>6d} | "
                    f"{t.total_s * 1e3:>10.3f} | {t.mean_s * 1e3:>10.3f} | "
                    f"{t.max_s * 1e3:>10.3f}"
                )
        else:
            lines.append("(no timers recorded)")
        counters = sorted(self.counters.values(), key=lambda c: c.name)
        if counters:
            width = max(len(c.name) for c in counters)
            lines.append("-- counters --")
            for c in counters:
                amount = int(c.value) if float(c.value).is_integer() else c.value
                lines.append(f"{c.name.ljust(width)} | {amount}")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._timers.clear()
            self._counters.clear()


_GLOBAL = Registry("repro")


def get_registry() -> Registry:
    """The process-wide registry the hot path records into."""
    return _GLOBAL


def traced(name: Optional[str] = None) -> Callable:
    """``@traced("stage")`` — time calls into the global registry."""
    return _GLOBAL.traced(name)
