"""Zero-dependency tracing, timers, and counters for the inference hot path.

Three layers, all stdlib-only:

* **Timers/counters/distributions** — a :class:`Timer` accumulates
  wall-clock durations per named stage (count/total/min/max plus a
  streaming log-bucket :class:`Histogram` for p50/p90/p99); a
  :class:`Counter` accumulates event counts; a :class:`Distribution`
  accumulates a stream of plain values (engine batch sizes, queue
  depths) behind the same percentile histogram.
* **Spans** — ``with registry.span("detect.total", task="...") as sp:``
  opens a hierarchical span.  Spans nest through a thread-local stack, so
  a stage timed inside another stage becomes its child automatically;
  every completed span both feeds the stage's Timer and is appended to a
  bounded in-memory event list that :mod:`repro.obs.trace` can export as
  Chrome trace-event JSON (viewable in Perfetto / ``chrome://tracing``).
  ``registry.time(name)`` is the attribute-less alias, so the historical
  call sites participate in the tree for free.
* **Telemetry** — :meth:`Registry.telemetry_snapshot` is the
  serialization-ready view (strict JSON: no ``Infinity``) that
  :mod:`repro.obs.telemetry` embeds in ``BENCH_*.json`` files.

A process-wide default registry (:func:`get_registry`) lets deep call
sites — window extraction, model forward, KG matching, NMS, the hardware
simulator, trainers, quantization calibration — record into one shared
table without plumbing a handle through every signature.

Overhead discipline: with ``registry.enabled = False`` every probe
returns before touching a clock, a lock, or the span stack; with it
enabled, the get-or-create accessors are lock-free on the hit path
(plain dict reads are atomic under the GIL) and only take the registry
lock to *create* a stage or append a completed span.  Per-stage mutation
uses a per-Timer/per-Counter lock so concurrent recordings never lose
updates (totals stay exact across threads).
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import itertools
import math
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.context import current_context

__all__ = [
    "Counter",
    "Distribution",
    "FP_SCALE",
    "Histogram",
    "Registry",
    "Span",
    "Timer",
    "get_registry",
    "traced",
]

# Fixed-point scale for mergeable accumulators.  Floating-point addition
# is not associative, so per-shard float totals merged in different
# orders drift in the last bits; accumulating integers (nanoseconds for
# timers, value * FP_SCALE for counters/distributions) at record time
# makes every merge order bit-identical.  Python ints never overflow.
FP_SCALE = 10 ** 9


def fixed_point(value: float) -> int:
    """Round a value onto the shared fixed-point grid (1e-9 resolution)."""
    return int(round(value * FP_SCALE))


# ----------------------------------------------------------------------
# Percentile histogram
# ----------------------------------------------------------------------
# Geometric buckets from 0.1 µs up: bucket i covers
# [_HIST_MIN_S * G**i, _HIST_MIN_S * G**(i+1)).  93 buckets reach ~100 s,
# and the geometric-midpoint representative bounds the relative error of
# any percentile by sqrt(G) - 1 ≈ 11.8 %.
_HIST_MIN_S = 1e-7
_HIST_GROWTH = 1.25
_HIST_BUCKETS = 93
_LOG_GROWTH = math.log(_HIST_GROWTH)


class Histogram:
    """Streaming fixed-bucket (log-scale) histogram of durations.

    Constant memory, O(1) :meth:`record`, percentile queries by walking
    the cumulative counts.  Representative values are clamped to the
    observed ``[min, max]`` so extreme percentiles never overshoot the
    data.
    """

    __slots__ = ("counts", "count", "_min", "_max")

    def __init__(self) -> None:
        self.counts = [0] * _HIST_BUCKETS
        self.count = 0
        self._min = math.inf
        self._max = 0.0

    @staticmethod
    def bucket_index(seconds: float) -> int:
        if seconds <= _HIST_MIN_S:
            return 0
        index = int(math.log(seconds / _HIST_MIN_S) / _LOG_GROWTH)
        return min(index, _HIST_BUCKETS - 1)

    def record(self, seconds: float) -> None:
        self.counts[self.bucket_index(seconds)] += 1
        self.count += 1
        if seconds < self._min:
            self._min = seconds
        if seconds > self._max:
            self._max = seconds

    def percentile(self, q: float) -> float:
        """Approximate the ``q``-th percentile (``0 <= q <= 100``)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                low = _HIST_MIN_S * _HIST_GROWTH ** index
                representative = low * math.sqrt(_HIST_GROWTH)
                return min(max(representative, self._min), self._max)
        return self._max  # pragma: no cover — unreachable (seen == count)

    # -- mergeable state ------------------------------------------------
    # Sparse JSON-safe bucket state for the cross-process snapshot merge
    # protocol (see repro.obs.export).  Bucket counts are ints and
    # min/max are exact observed values, so merging is associative,
    # commutative, and bit-exact in any order.

    def merge_state(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "buckets": [[i, c] for i, c in enumerate(self.counts) if c],
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
        }

    def merge_in(self, state: Dict[str, Any]) -> "Histogram":
        for index, bucket_count in state["buckets"]:
            self.counts[int(index)] += int(bucket_count)
        self.count += int(state["count"])
        if state["min"] is not None and state["min"] < self._min:
            self._min = state["min"]
        if state["max"] is not None and state["max"] > self._max:
            self._max = state["max"]
        return self

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "Histogram":
        return cls().merge_in(state)


# ----------------------------------------------------------------------
# Timers and counters
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Timer:
    """Accumulated wall-clock statistics for one named stage."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    last_s: float = 0.0
    # Integer-nanosecond twin of total_s: the order-independent
    # accumulator the mergeable snapshot protocol exports.
    total_ns: int = 0
    histogram: Histogram = dataclasses.field(default_factory=Histogram,
                                             repr=False, compare=False)
    _lock: threading.Lock = dataclasses.field(default_factory=threading.Lock,
                                              repr=False, compare=False)

    def record(self, seconds: float) -> None:
        with self._lock:
            self.calls += 1
            self.total_s += seconds
            self.total_ns += fixed_point(seconds)
            self.min_s = min(self.min_s, seconds)
            self.max_s = max(self.max_s, seconds)
            self.last_s = seconds
            self.histogram.record(seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def percentile(self, q: float) -> float:
        return self.histogram.percentile(q)

    @property
    def p50_s(self) -> float:
        return self.percentile(50.0)

    @property
    def p90_s(self) -> float:
        return self.percentile(90.0)

    @property
    def p99_s(self) -> float:
        return self.percentile(99.0)

    def stats(self) -> Dict[str, float]:
        """Strict-JSON stats dict (never emits ``Infinity``)."""
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            # A created-but-never-recorded timer keeps min_s = inf
            # internally; exporting that breaks strict JSON consumers.
            "min_s": self.min_s if self.calls else 0.0,
            "max_s": self.max_s,
            "last_s": self.last_s,
            "p50_s": self.p50_s,
            "p90_s": self.p90_s,
            "p99_s": self.p99_s,
        }

    def merge_state(self) -> Dict[str, Any]:
        """Order-independent state for cross-process merging.

        ``last_s`` is deliberately absent: "last" depends on arrival
        order, which a merge of concurrent shards cannot define.
        """
        with self._lock:
            return {
                "calls": self.calls,
                "total_ns": self.total_ns,
                "min_s": self.min_s if self.calls else None,
                "max_s": self.max_s if self.calls else None,
                "hist": self.histogram.merge_state(),
            }


@dataclasses.dataclass
class Counter:
    """Accumulated event count (windows scanned, ops simulated, ...)."""

    name: str
    value: float = 0
    # Fixed-point twin of value (value * FP_SCALE, rounded per add) so
    # shard merges are bit-exact regardless of order.
    value_fp: int = 0
    _lock: threading.Lock = dataclasses.field(default_factory=threading.Lock,
                                              repr=False, compare=False)

    def add(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount
            self.value_fp += fixed_point(amount)

    def merge_state(self) -> Dict[str, Any]:
        with self._lock:
            return {"value_fp": self.value_fp}


@dataclasses.dataclass
class Distribution:
    """Accumulated statistics of a dimensionless value stream.

    Where a :class:`Timer` summarizes durations, a Distribution
    summarizes *values* the hot path observes — engine batch sizes,
    queue depths, candidate counts — with the same constant-memory
    log-bucket :class:`Histogram` behind p50/p90/p99.  The bucket grid
    spans roughly ``[1e-7, 1e2]``; values outside saturate the edge
    buckets, but ``min``/``max`` stay exact and percentiles are clamped
    to them, so small-integer streams (the intended use) lose at most
    the histogram's ~12 % bucket error.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = 0.0
    last: float = 0.0
    total_fp: int = 0
    histogram: Histogram = dataclasses.field(default_factory=Histogram,
                                             repr=False, compare=False)
    _lock: threading.Lock = dataclasses.field(default_factory=threading.Lock,
                                              repr=False, compare=False)

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.total_fp += fixed_point(value)
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self.last = value
            self.histogram.record(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return self.histogram.percentile(q)

    def stats(self) -> Dict[str, float]:
        """Strict-JSON stats dict (never emits ``Infinity``)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "last": self.last,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }

    def merge_state(self) -> Dict[str, Any]:
        """Order-independent state for cross-process merging (no
        ``last`` — see :meth:`Timer.merge_state`)."""
        with self._lock:
            return {
                "count": self.count,
                "total_fp": self.total_fp,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "hist": self.histogram.merge_state(),
            }


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Span:
    """One (possibly still open) node of the trace tree.

    ``start_us``/``dur_us`` are microseconds relative to the registry's
    epoch (reset on :meth:`Registry.reset`) — the Chrome trace-event
    convention.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    tid: int
    start_us: float = 0.0
    dur_us: float = 0.0
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    trace_id: Optional[str] = None

    def set_attr(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (window counts, ...)."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> Dict[str, Any]:
        doc = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tid": self.tid,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "attrs": dict(self.attrs),
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc


class _NullSpan:
    """Inert span handed out while the registry is disabled."""

    __slots__ = ()

    def set_attr(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()

# Hot loops can emit millions of spans; keep a bounded window and count
# the overflow instead of growing without limit.
DEFAULT_MAX_SPANS = 100_000


class Registry:
    """Named collection of timers, counters, and completed spans.

    Thread-safe for concurrent ``span``/``time``/``count`` calls;
    detection servers can share one registry across worker threads.  Each
    thread keeps its own span stack, so parent/child links never cross
    threads.
    """

    def __init__(self, name: str = "obs",
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.name = name
        self.enabled = True
        self.max_spans = max_spans
        self._timers: Dict[str, Timer] = {}
        self._counters: Dict[str, Counter] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._spans: List[Span] = []
        self._dropped_spans = 0
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._span_ids = itertools.count(1)
        self._epoch = time.perf_counter()
        # Optional live-series sink (repro.obs.series.SeriesRecorder):
        # when attached, every timer/counter/distribution recording is
        # mirrored into sliding windows.  One attribute read + None
        # check when absent, so the default path pays nothing.
        self._series: Optional[Any] = None

    # -- accessors ------------------------------------------------------
    def timer(self, name: str) -> Timer:
        # Lock-free hit path: dict reads are atomic under the GIL, and
        # entries are never deleted outside reset().
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.get(name)
                if timer is None:
                    timer = self._timers[name] = Timer(name)
        return timer

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter(name)
        return counter

    def distribution(self, name: str) -> Distribution:
        dist = self._distributions.get(name)
        if dist is None:
            with self._lock:
                dist = self._distributions.get(name)
                if dist is None:
                    dist = self._distributions[name] = Distribution(name)
        return dist

    @property
    def timers(self) -> Dict[str, Timer]:
        with self._lock:
            return dict(self._timers)

    @property
    def counters(self) -> Dict[str, Counter]:
        with self._lock:
            return dict(self._counters)

    @property
    def distributions(self) -> Dict[str, Distribution]:
        with self._lock:
            return dict(self._distributions)

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    @property
    def dropped_spans(self) -> int:
        return self._dropped_spans

    # -- recording ------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a named child span of whatever span this thread is in.

        Yields the :class:`Span` so the block can ``set_attr(...)``
        values it only learns mid-flight.  On exit the duration feeds the
        stage's :class:`Timer` (so percentiles aggregate across calls)
        and the completed span joins the trace buffer.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        ctx = current_context()
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
        elif ctx is not None:
            # Queue-hop re-parenting: a thread-root span opened under a
            # request context hangs off the request's root span, so the
            # trace tree survives thread-pool handoffs.
            parent_id = ctx.parent_span_id
        else:
            parent_id = None
        span = Span(
            name=name,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            tid=threading.get_ident(),
            attrs=dict(attrs) if attrs else {},
            trace_id=ctx.trace_id if ctx is not None else None,
        )
        stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            elapsed = time.perf_counter() - start
            stack.pop()
            span.start_us = (start - self._epoch) * 1e6
            span.dur_us = elapsed * 1e6
            self.timer(name).record(elapsed)
            series = self._series
            if series is not None:
                series.record_timer(name, elapsed)
            with self._lock:
                if len(self._spans) < self.max_spans:
                    self._spans.append(span)
                else:
                    self._dropped_spans += 1

    def record_span(self, name: str, start_s: float, end_s: float, *,
                    trace_id: Optional[str] = None,
                    parent_id: Optional[int] = None,
                    attrs: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """Record an externally-timed interval as a completed span.

        For intervals whose endpoints straddle threads — an engine
        job's queue wait is timed from the submitter's ``put`` to the
        worker's flush — no ``with`` block can wrap them, so the caller
        passes the two ``time.perf_counter()`` readings (and the
        captured request's ``trace_id``/``parent_id``) directly.  The
        interval feeds the stage Timer and series exactly like a
        :meth:`span` block.
        """
        if not self.enabled:
            return None
        elapsed = max(0.0, end_s - start_s)
        span = Span(
            name=name,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            tid=threading.get_ident(),
            start_us=(start_s - self._epoch) * 1e6,
            dur_us=elapsed * 1e6,
            attrs=dict(attrs) if attrs else {},
            trace_id=trace_id,
        )
        self.timer(name).record(elapsed)
        series = self._series
        if series is not None:
            series.record_timer(name, elapsed)
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self._dropped_spans += 1
        return span

    def time(self, name: str) -> "contextlib.AbstractContextManager[Span]":
        """Attribute-less :meth:`span` — kept for the historical call
        sites; timed blocks still join the span tree."""
        return self.span(name)

    def count(self, name: str, amount: float = 1) -> None:
        if self.enabled:
            self.counter(name).add(amount)
            series = self._series
            if series is not None:
                series.record_counter(name, amount)

    def observe(self, name: str, value: float) -> None:
        """Record one sample of a value stream (queue depth, batch size)."""
        if self.enabled:
            self.distribution(name).record(value)
            series = self._series
            if series is not None:
                series.record_value(name, value)

    # -- live series ----------------------------------------------------
    def attach_series(self, series: Any) -> Any:
        """Mirror every recording into a sliding-window series sink
        (:class:`repro.obs.series.SeriesRecorder`).  Returns the sink.
        Pass ``None`` to detach."""
        self._series = series
        return series

    @property
    def series(self) -> Optional[Any]:
        return self._series

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator timing every call to the wrapped function.

        The stage name defaults to the function's qualified name.  When
        the registry is disabled the wrapper is a plain passthrough — no
        lock, no clock, no span bookkeeping.
        """

        def decorate(func: Callable) -> Callable:
            stage = name or f"{func.__module__.split('.')[-1]}.{func.__qualname__}"

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return func(*args, **kwargs)
                with self.span(stage):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # -- inspection -----------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict view of all stats (stable for serialization/tests).

        Strict-JSON safe: never-recorded timers report ``min_s = 0.0``
        rather than leaking ``Infinity``.
        """
        with self._lock:
            return {
                "timers": {n: t.stats() for n, t in self._timers.items()},
                "counters": {n: c.value for n, c in self._counters.items()},
                "distributions": {
                    n: d.stats() for n, d in self._distributions.items()
                },
            }

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Snapshot plus the span buffer — the ``obs`` block that
        :mod:`repro.obs.telemetry` embeds in ``BENCH_*.json``."""
        doc = self.snapshot()
        with self._lock:
            doc["spans"] = [s.as_dict() for s in self._spans]
            doc["dropped_spans"] = self._dropped_spans
        return doc

    def spans_for_trace(self, trace_id: str) -> List[Span]:
        """All buffered spans stamped with ``trace_id`` (any thread)."""
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    def span_tree(self) -> List[Dict[str, Any]]:
        """Nested view of the span buffer (see :func:`repro.obs.trace.span_tree`)."""
        from repro.obs.trace import span_tree

        return span_tree(self.spans)

    def report(self, title: Optional[str] = None) -> str:
        """Human-readable per-stage latency table, sorted by total time."""
        lines = [f"== {title or self.name}: per-stage timings =="]
        timers = sorted(self.timers.values(), key=lambda t: -t.total_s)
        if timers:
            width = max(len(t.name) for t in timers)
            lines.append(
                f"{'stage'.ljust(width)} | {'calls':>6} | {'total ms':>10} | "
                f"{'mean ms':>10} | {'p50 ms':>10} | {'p99 ms':>10} | "
                f"{'max ms':>10}"
            )
            for t in timers:
                lines.append(
                    f"{t.name.ljust(width)} | {t.calls:>6d} | "
                    f"{t.total_s * 1e3:>10.3f} | {t.mean_s * 1e3:>10.3f} | "
                    f"{t.p50_s * 1e3:>10.3f} | {t.p99_s * 1e3:>10.3f} | "
                    f"{t.max_s * 1e3:>10.3f}"
                )
        else:
            lines.append("(no timers recorded)")
        counters = sorted(self.counters.values(), key=lambda c: c.name)
        if counters:
            width = max(len(c.name) for c in counters)
            lines.append("-- counters --")
            for c in counters:
                amount = int(c.value) if float(c.value).is_integer() else c.value
                lines.append(f"{c.name.ljust(width)} | {amount}")
        distributions = sorted(self.distributions.values(),
                               key=lambda d: d.name)
        if distributions:
            width = max(len(d.name) for d in distributions)
            lines.append("-- distributions --")
            lines.append(
                f"{'name'.ljust(width)} | {'count':>6} | {'mean':>8} | "
                f"{'p50':>8} | {'p99':>8} | {'min':>8} | {'max':>8}"
            )
            for d in distributions:
                stats = d.stats()
                lines.append(
                    f"{d.name.ljust(width)} | {d.count:>6d} | "
                    f"{stats['mean']:>8.2f} | {stats['p50']:>8.2f} | "
                    f"{stats['p99']:>8.2f} | {stats['min']:>8.2f} | "
                    f"{stats['max']:>8.2f}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._timers.clear()
            self._counters.clear()
            self._distributions.clear()
            self._spans.clear()
            self._dropped_spans = 0
            self._epoch = time.perf_counter()
        series = self._series
        if series is not None:
            series.reset()


_GLOBAL = Registry("repro")


def get_registry() -> Registry:
    """The process-wide registry the hot path records into."""
    return _GLOBAL


def install_registry(registry: Registry) -> Registry:
    """Replace the process-wide registry; returns the previous one.

    Shard worker bootstrap installs a *fresh* registry after fork: the
    inherited one carries the parent's accumulated metrics (which would
    double-count in merged snapshots) and locks whose state at fork
    time is not guaranteed clean.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


def traced(name: Optional[str] = None) -> Callable:
    """``@traced("stage")`` — time calls into the global registry."""
    return _GLOBAL.traced(name)
