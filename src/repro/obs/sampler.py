"""Tail-based exemplar sampling and a flight-recorder ring buffer.

Keeping every span tree forever is exactly what the bounded span buffer
exists to prevent; keeping *none* leaves an operator staring at a p99
with no example request to explain it.  The middle path is tail-based
sampling: decide which traces to retain **after** seeing how they ended,
and keep only the interesting tails —

* the K slowest requests (a bounded min-heap on duration),
* every shed / escalated / errored request (bounded per-reason deques),

each retained as an :class:`Exemplar` whose span tree is resolved from
the registry's buffer via the request's trace_id.

The :class:`FlightRecorder` is the companion crash artifact: a
constant-memory ring of recent routing/engine events that
:meth:`FlightRecorder.dump` writes as replayable JSON when something
goes wrong — an engine batch raises, or a shed storm starts
(:class:`ShedStormDetector`).  ``repro.serve.engine`` and
``repro.cascade.router`` call into the installed sampler through
:func:`get_sampler`, which returns ``None`` unless one was installed,
so the un-instrumented hot path pays one global read per batch.
"""

from __future__ import annotations

import collections
import dataclasses
import heapq
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Exemplar",
    "ExemplarSampler",
    "FlightRecorder",
    "ShedStormDetector",
    "get_sampler",
    "install_sampler",
]

FLIGHT_SCHEMA = "repro.obs.flight/1"

REASON_SLOW = "slow"
REASON_SHED = "shed"
REASON_ESCALATED = "escalated"
REASON_ERROR = "error"


@dataclasses.dataclass
class Exemplar:
    """One retained request: identity, why it was kept, its span tree."""

    trace_id: str
    reason: str
    value: float = 0.0
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)
    spans: List[Dict[str, Any]] = dataclasses.field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "reason": self.reason,
            "value": self.value,
            "meta": dict(self.meta),
            "spans": list(self.spans),
        }


class ShedStormDetector:
    """Flag when the shed fraction over a sliding window crosses a bar.

    ``update(shed)`` returns True exactly once per storm — on the
    crossing — and re-arms only after the window drops back below the
    threshold, so one storm produces one flight-recorder artifact, not
    one per shed request.
    """

    def __init__(self, window: int = 64, threshold: float = 0.5,
                 min_events: int = 16) -> None:
        self.window = collections.deque(maxlen=max(1, window))
        self.threshold = threshold
        self.min_events = min_events
        self._in_storm = False
        self._lock = threading.Lock()

    def update(self, shed: bool) -> bool:
        with self._lock:
            self.window.append(bool(shed))
            if len(self.window) < self.min_events:
                return False
            fraction = sum(self.window) / len(self.window)
            if fraction >= self.threshold:
                if not self._in_storm:
                    self._in_storm = True
                    return True
            else:
                self._in_storm = False
            return False

    @property
    def shed_fraction(self) -> float:
        with self._lock:
            return sum(self.window) / len(self.window) if self.window else 0.0


class FlightRecorder:
    """Constant-memory ring of recent events, dumpable as JSON."""

    def __init__(self, capacity: int = 4096) -> None:
        self._events = collections.deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self.dumps: List[str] = []

    def record(self, kind: str, **fields: Any) -> None:
        event = {"kind": kind, "t_s": time.time()}
        event.update(fields)
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def dump(self, directory: str, reason: str,
             registry: Any = None,
             exemplars: Iterable[Exemplar] = ()) -> str:
        """Write the ring (plus context) as a replayable JSON artifact."""
        os.makedirs(directory, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        safe_reason = "".join(c if c.isalnum() or c in "-_" else "_"
                              for c in reason)
        path = os.path.join(
            directory, f"flight_{safe_reason}_{stamp}_{os.getpid()}.json")
        doc: Dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "written_at_s": time.time(),
            "events": self.events(),
            "exemplars": [e.as_dict() for e in exemplars],
        }
        if registry is not None:
            doc["obs"] = registry.snapshot()
            doc["dropped_spans"] = registry.dropped_spans
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, allow_nan=False)
        os.replace(tmp, path)
        self.dumps.append(path)
        return path


class ExemplarSampler:
    """Tail-based retention of interesting traces (see module doc).

    Wire it in with :func:`install_sampler`; the engine and cascade
    router then feed it route decisions, per-request durations, and
    errors.  ``artifact_dir`` (or ``REPRO_OBS_DIR``) is where flight
    artifacts land on engine errors and shed storms.
    """

    def __init__(self, *, slow_k: int = 8, per_reason: int = 64,
                 artifact_dir: Optional[str] = None,
                 storm_window: int = 64, storm_threshold: float = 0.5,
                 storm_min_events: int = 16,
                 flight_capacity: int = 4096) -> None:
        self.slow_k = slow_k
        self.per_reason = per_reason
        self.artifact_dir = (artifact_dir
                             or os.environ.get("REPRO_OBS_DIR", "."))
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.storm = ShedStormDetector(window=storm_window,
                                       threshold=storm_threshold,
                                       min_events=storm_min_events)
        # Min-heap of (duration, seq, Exemplar): the root is the fastest
        # of the retained slowest, evicted first.
        self._slow: List[Any] = []
        self._seq = 0
        self._by_reason: Dict[str, collections.deque] = {}
        self._by_trace: Dict[str, Exemplar] = {}
        self._lock = threading.Lock()

    # -- retention ------------------------------------------------------
    def _retain(self, exemplar: Exemplar) -> None:
        dq = self._by_reason.setdefault(
            exemplar.reason, collections.deque(maxlen=self.per_reason))
        if len(dq) == dq.maxlen:
            evicted = dq[0]
            if self._by_trace.get(evicted.trace_id) is evicted:
                del self._by_trace[evicted.trace_id]
        dq.append(exemplar)
        self._by_trace[exemplar.trace_id] = exemplar

    def offer(self, trace_id: Optional[str], reason: str, *,
              value: float = 0.0, meta: Optional[Dict[str, Any]] = None,
              registry: Any = None) -> Optional[Exemplar]:
        """Retain a trace for a reason; resolves spans if a registry is
        passed (or later via :meth:`resolve`)."""
        if not trace_id:
            return None
        exemplar = Exemplar(trace_id=trace_id, reason=reason, value=value,
                            meta=dict(meta) if meta else {})
        if registry is not None:
            exemplar.spans = [s.as_dict()
                              for s in registry.spans_for_trace(trace_id)]
        with self._lock:
            self._retain(exemplar)
        return exemplar

    def observe_request(self, trace_id: Optional[str], duration_s: float,
                        meta: Optional[Dict[str, Any]] = None) -> None:
        """Consider a completed request for the slowest-K pool."""
        if not trace_id:
            return
        exemplar = Exemplar(trace_id=trace_id, reason=REASON_SLOW,
                            value=duration_s, meta=dict(meta) if meta else {})
        with self._lock:
            self._seq += 1
            entry = (duration_s, self._seq, exemplar)
            if len(self._slow) < self.slow_k:
                heapq.heappush(self._slow, entry)
            elif duration_s > self._slow[0][0]:
                _, _, evicted = heapq.heapreplace(self._slow, entry)
                if self._by_trace.get(evicted.trace_id) is evicted:
                    del self._by_trace[evicted.trace_id]
            else:
                return
            self._by_trace.setdefault(trace_id, exemplar)

    def observe_route(self, decisions: Iterable[Any],
                      registry: Any = None) -> None:
        """Feed routing decisions: retain shed/escalated traces, track
        storms, and dump a flight artifact when one starts."""
        storm_started = False
        for decision in decisions:
            route = getattr(decision, "route", None)
            trace_id = getattr(decision, "trace_id", None)
            self.flight.record(
                "route", route=route, reason=getattr(decision, "reason", None),
                margin=getattr(decision, "margin", None), trace_id=trace_id,
                scene_index=getattr(decision, "scene_index", None))
            if route == "shed":
                self.offer(trace_id, REASON_SHED,
                           meta={"reason": getattr(decision, "reason", None)},
                           registry=registry)
            elif route == "escalated":
                self.offer(trace_id, REASON_ESCALATED,
                           meta={"reason": getattr(decision, "reason", None)},
                           registry=registry)
            if self.storm.update(route == "shed"):
                storm_started = True
        if storm_started:
            self.flight.record("shed_storm",
                               shed_fraction=self.storm.shed_fraction)
            self.flight.dump(self.artifact_dir, "shed_storm",
                             registry=registry,
                             exemplars=self.exemplars(REASON_SHED))

    def record_engine_error(self, error: BaseException, *,
                            scenes: int = 0, registry: Any = None,
                            trace_ids: Iterable[Optional[str]] = ()) -> str:
        """Log a failed engine batch and dump the flight ring."""
        kept = []
        for trace_id in trace_ids:
            exemplar = self.offer(trace_id, REASON_ERROR,
                                  meta={"error": repr(error)},
                                  registry=registry)
            if exemplar is not None:
                kept.append(exemplar)
        self.flight.record("engine_error", error=repr(error), scenes=scenes)
        return self.flight.dump(self.artifact_dir, "engine_error",
                                registry=registry, exemplars=kept)

    # -- queries --------------------------------------------------------
    def exemplars(self, reason: Optional[str] = None) -> List[Exemplar]:
        with self._lock:
            if reason == REASON_SLOW:
                return [e for _, _, e in sorted(self._slow, reverse=True)]
            if reason is not None:
                return list(self._by_reason.get(reason, ()))
            out = [e for _, _, e in sorted(self._slow, reverse=True)]
            for dq in self._by_reason.values():
                out.extend(dq)
            return out

    def lookup(self, trace_id: str) -> Optional[Exemplar]:
        with self._lock:
            return self._by_trace.get(trace_id)

    def resolve(self, registry: Any) -> None:
        """(Re-)resolve retained span trees from the registry buffer —
        call after in-flight work finishes so late spans (engine
        execute, cascade routing) join their exemplars."""
        for exemplar in self.exemplars():
            spans = registry.spans_for_trace(exemplar.trace_id)
            if spans:
                exemplar.spans = [s.as_dict() for s in spans]


_SAMPLER: Optional[ExemplarSampler] = None
_SAMPLER_LOCK = threading.Lock()


def get_sampler() -> Optional[ExemplarSampler]:
    """The installed sampler, or None (the default: zero overhead)."""
    return _SAMPLER


def install_sampler(sampler: Optional[ExemplarSampler]) -> \
        Optional[ExemplarSampler]:
    """Install (or, with None, remove) the process-wide sampler.

    Returns the previously installed sampler so callers can restore it:

        previous = install_sampler(ExemplarSampler())
        try: ...
        finally: install_sampler(previous)
    """
    global _SAMPLER
    with _SAMPLER_LOCK:
        previous = _SAMPLER
        _SAMPLER = sampler
    return previous
