"""Request-scoped tracing context carried across queue hops.

A :class:`RequestContext` names one logical request — a ``trace_id``
unique across processes, the mission fingerprint it targets, a tenant
tag, and an optional deadline — and rides a :mod:`contextvars`
ContextVar so any probe deep in the call stack can attribute its work
to the request without threading a handle through every signature.

Two propagation modes compose:

* **Implicit** — :func:`request_context` opens a root span for the
  request and sets the ContextVar; every span the same thread (or the
  same asyncio task) opens while the block is active inherits the
  trace_id and, when its thread-local span stack is empty, re-parents
  under the request's root span.
* **Explicit** — thread-pool hops break ContextVar inheritance, so
  :class:`repro.serve.engine.DetectionEngine` captures
  :func:`current_context` at ``submit()`` time into the queued job and
  hands the contexts to the worker side (and down through
  ``CascadeRouter``), where per-request spans and routing decisions are
  stamped with the submitter's trace.  :func:`use_context` re-installs
  a captured context around a code block for the same purpose.

Everything here is stdlib-only and allocation-light: reading the
current context is a single ``ContextVar.get`` and trace-id minting is
one counter increment, so the idle overhead on the detect hot path is
unmeasurable.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import itertools
import os
import time
from typing import Any, Iterator, Optional

__all__ = [
    "RequestContext",
    "context_from_wire",
    "context_to_wire",
    "current_context",
    "new_trace_id",
    "request_context",
    "use_context",
]

# Process tag: pid plus 4 random bytes so trace ids minted by different
# shard processes (or a recycled pid) never collide when their
# snapshots/exemplars are merged downstream.
_PROCESS_TAG = f"{os.getpid():x}-{os.urandom(4).hex()}"
_TRACE_IDS = itertools.count(1)


def _refresh_process_tag() -> None:
    # A forked child inherits the parent's tag and counter; without a
    # refresh two shard processes would mint colliding trace ids.
    global _PROCESS_TAG, _TRACE_IDS
    _PROCESS_TAG = f"{os.getpid():x}-{os.urandom(4).hex()}"
    _TRACE_IDS = itertools.count(1)


if hasattr(os, "register_at_fork"):  # pragma: no branch — posix only
    os.register_at_fork(after_in_child=_refresh_process_tag)

_CURRENT: contextvars.ContextVar[Optional["RequestContext"]] = \
    contextvars.ContextVar("repro_obs_request_context", default=None)


def new_trace_id() -> str:
    """Mint a trace id unique across threads and processes."""
    return f"{_PROCESS_TAG}-{next(_TRACE_IDS):06x}"


@dataclasses.dataclass(frozen=True)
class RequestContext:
    """Identity and budget of one in-flight request.

    ``deadline_s`` is an absolute ``time.perf_counter()`` timestamp
    (not a duration), so it stays meaningful when the context crosses
    threads inside one process.  ``parent_span_id`` is the request's
    root span: worker-side spans whose thread-local stack is empty
    re-parent under it, so a trace tree survives the queue hop.
    """

    trace_id: str
    tenant: Optional[str] = None
    mission: Optional[str] = None
    deadline_s: Optional[float] = None
    parent_span_id: Optional[int] = None

    def remaining_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the deadline (negative if blown); None if no
        deadline was set."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - (time.perf_counter() if now is None else now)

    def expired(self, now: Optional[float] = None) -> bool:
        remaining = self.remaining_s(now)
        return remaining is not None and remaining <= 0.0


def current_context() -> Optional[RequestContext]:
    """The :class:`RequestContext` active on this thread/task, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_context(ctx: Optional[RequestContext]) -> Iterator[Optional[RequestContext]]:
    """Re-install a captured context around a block (queue-hop helper)."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def request_context(trace_id: Optional[str] = None, *,
                    name: str = "request",
                    tenant: Optional[str] = None,
                    mission: Optional[str] = None,
                    deadline_ms: Optional[float] = None,
                    registry: Any = None,
                    **attrs: Any) -> Iterator[RequestContext]:
    """Enter a request scope: mint a trace, open its root span, set the
    ContextVar.

    Spans opened inside the block carry the trace_id; the yielded
    context can be captured (``DetectionEngine.submit`` does) so work
    completed after the block exits — queue wait, batched execution,
    cascade routing — still lands in the same trace.
    """
    from repro.obs.registry import get_registry

    registry = registry or get_registry()
    tid = trace_id or new_trace_id()
    deadline = (time.perf_counter() + deadline_ms / 1e3
                if deadline_ms is not None else None)
    ctx = RequestContext(trace_id=tid, tenant=tenant, mission=mission,
                         deadline_s=deadline)
    token = _CURRENT.set(ctx)
    try:
        span_attrs = dict(attrs)
        if tenant is not None:
            span_attrs.setdefault("tenant", tenant)
        if mission is not None:
            span_attrs.setdefault("mission", mission)
        with registry.span(name, **span_attrs) as span:
            root_id = getattr(span, "span_id", None)
            if root_id is not None:
                ctx = dataclasses.replace(ctx, parent_span_id=root_id)
            inner = _CURRENT.set(ctx)
            try:
                yield ctx
            finally:
                _CURRENT.reset(inner)
    finally:
        _CURRENT.reset(token)


# ----------------------------------------------------------------------
# Cross-process wire format
# ----------------------------------------------------------------------
def context_to_wire(ctx: Optional[RequestContext]) -> Optional[dict]:
    """Serialize a context for a process hop (shard dispatch).

    ``deadline_s`` is an absolute ``time.perf_counter()`` timestamp,
    which is meaningless in another process (each process has its own
    clock origin), so the wire carries the *remaining* budget instead
    and :func:`context_from_wire` re-anchors it on the receiver's
    clock.  ``parent_span_id`` is a process-local span id and does not
    cross; the shared ``trace_id`` is what joins the two processes'
    spans into one logical trace.
    """
    if ctx is None:
        return None
    return {
        "trace_id": ctx.trace_id,
        "tenant": ctx.tenant,
        "mission": ctx.mission,
        "remaining_ms": (None if ctx.deadline_s is None
                         else ctx.remaining_s() * 1e3),
    }


def context_from_wire(wire: Optional[dict]) -> Optional[RequestContext]:
    """Rebuild a :class:`RequestContext` on the receiving process."""
    if wire is None:
        return None
    remaining_ms = wire.get("remaining_ms")
    deadline = (time.perf_counter() + remaining_ms / 1e3
                if remaining_ms is not None else None)
    return RequestContext(
        trace_id=wire["trace_id"],
        tenant=wire.get("tenant"),
        mission=wire.get("mission"),
        deadline_s=deadline,
    )
