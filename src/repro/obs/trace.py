"""Span-buffer views: Chrome trace-event export and nested span trees.

The registry stores completed spans as a flat list (append order = finish
order).  Two consumers need structure on top:

* :func:`chrome_trace` — the Chrome trace-event JSON format (``ph: "X"``
  complete events, microsecond timestamps).  The output loads directly in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
* :func:`span_tree` — parent/child nesting reconstructed from
  ``parent_id`` links, children in start order.  Benchmarks derive their
  stage lists from this tree so stage names cannot drift from what the
  pipeline actually records.

Both accept either :class:`~repro.obs.registry.Span` objects (live
registry) or plain dicts (spans reloaded from a ``BENCH_*.json``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Union

from repro.obs.registry import Span

SpanLike = Union[Span, Dict[str, Any]]

__all__ = ["chrome_trace", "span_tree", "flatten_tree"]


def _as_dict(span: SpanLike) -> Dict[str, Any]:
    return span.as_dict() if isinstance(span, Span) else span


def chrome_trace(spans: Iterable[SpanLike],
                 process_name: str = "repro") -> Dict[str, Any]:
    """Convert completed spans to a Chrome trace-event document.

    Returns the JSON-object form (``{"traceEvents": [...]}``), which
    Perfetto and ``chrome://tracing`` both accept.  Span attributes land
    in each event's ``args`` so they show in the UI's detail pane.
    """
    pid = os.getpid()
    events: List[Dict[str, Any]] = [{
        "ph": "M",
        "pid": pid,
        "name": "process_name",
        "args": {"name": process_name},
    }]
    tids = set()
    for span in spans:
        record = _as_dict(span)
        tids.add(record["tid"])
        args = dict(record.get("attrs") or {})
        if record.get("trace_id"):
            args["trace_id"] = record["trace_id"]
        events.append({
            "name": record["name"],
            "cat": "repro",
            "ph": "X",
            "ts": record["start_us"],
            "dur": record["dur_us"],
            "pid": pid,
            "tid": record["tid"],
            "args": args,
        })
    for index, tid in enumerate(sorted(tids)):
        events.append({
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": f"thread-{index}"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_tree(spans: Iterable[SpanLike]) -> List[Dict[str, Any]]:
    """Reconstruct nesting from the flat span buffer.

    Returns the root spans (no parent, or parent evicted from the bounded
    buffer) in start order; each node carries ``name``, ``start_us``,
    ``dur_us``, ``attrs``, ``tid``, and ``children`` (also in start
    order).
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    records = [_as_dict(s) for s in spans]
    for record in records:
        node = {
            "name": record["name"],
            "span_id": record["span_id"],
            "start_us": record["start_us"],
            "dur_us": record["dur_us"],
            "tid": record["tid"],
            "attrs": dict(record.get("attrs") or {}),
            "children": [],
        }
        if record.get("trace_id"):
            node["trace_id"] = record["trace_id"]
        nodes[record["span_id"]] = node
    roots: List[Dict[str, Any]] = []
    for record in records:
        node = nodes[record["span_id"]]
        parent = nodes.get(record.get("parent_id"))
        (parent["children"] if parent is not None else roots).append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start_us"])
    roots.sort(key=lambda node: node["start_us"])
    return roots


def flatten_tree(roots: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Depth-first flattening of :func:`span_tree` output (parents before
    children), handy for tabular stage listings."""
    flat: List[Dict[str, Any]] = []

    def visit(node: Dict[str, Any]) -> None:
        flat.append(node)
        for child in node["children"]:
            visit(child)

    for root in roots:
        visit(root)
    return flat
