"""Metric export: mergeable snapshots, Prometheus text, live HTTP.

Three surfaces, all stdlib-only:

* **Mergeable snapshot protocol** — :func:`mergeable_snapshot` freezes
  a registry (and optionally its attached series) into a JSON document
  of pure integer accumulators and sparse histogram buckets;
  :func:`merge_snapshots` combines any number of such documents.  The
  merge is **associative and commutative and bit-exact**: totals are
  fixed-point integers accumulated at record time, bucket counts are
  integers, and min/max are exact observed values, so
  ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` as plain dicts.
  This is the contract the future sharded serving tier aggregates over
  (DESIGN.md): each engine process exports its shard snapshot and any
  reducer in any order produces the same fleet-wide document.
* **Prometheus text exposition** — :func:`prometheus_text` renders a
  snapshot (plus optional live windowed gauges) in the Prometheus 0.0.4
  text format for scraping.
* **HTTP surface** — :class:`MetricsServer` serves ``/metrics``
  (Prometheus), ``/healthz``, ``/slo`` (burn-rate status), and
  ``/snapshot`` (the mergeable document, which is also what
  ``repro obs top`` polls and diffs) from a daemon thread.
"""

from __future__ import annotations

import http.server
import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.registry import FP_SCALE, Histogram, Registry, get_registry
from repro.obs.series import merge_series_states

__all__ = [
    "MERGE_SCHEMA",
    "MetricsServer",
    "mergeable_snapshot",
    "merge_snapshots",
    "prometheus_text",
    "snapshot_delta",
    "timer_state_stats",
]

MERGE_SCHEMA = "repro.obs.merge/1"


# ----------------------------------------------------------------------
# Mergeable snapshot protocol
# ----------------------------------------------------------------------
def mergeable_snapshot(registry: Optional[Registry] = None,
                       series: Any = None) -> Dict[str, Any]:
    """Freeze a registry into the order-independent merge document."""
    registry = registry or get_registry()
    if series is None:
        series = registry.series
    doc: Dict[str, Any] = {
        "schema": MERGE_SCHEMA,
        "timers": {n: t.merge_state() for n, t in registry.timers.items()},
        "counters": {n: c.merge_state() for n, c in registry.counters.items()},
        "distributions": {n: d.merge_state()
                          for n, d in registry.distributions.items()},
        "dropped_spans": registry.dropped_spans,
    }
    if series is not None:
        doc["series"] = series.merge_state()
    return doc


def _check_schema(doc: Dict[str, Any]) -> None:
    schema = doc.get("schema")
    if schema != MERGE_SCHEMA:
        raise ValueError(
            f"not a mergeable snapshot (schema={schema!r}, "
            f"expected {MERGE_SCHEMA!r})")


def _merge_hist_states(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    return Histogram.from_state(a).merge_in(b).merge_state()


def _merge_timer_states(a: Optional[Dict[str, Any]],
                        b: Dict[str, Any]) -> Dict[str, Any]:
    if a is None:
        return b
    mins = [m for m in (a["min_s"], b["min_s"]) if m is not None]
    maxs = [m for m in (a["max_s"], b["max_s"]) if m is not None]
    return {
        "calls": a["calls"] + b["calls"],
        "total_ns": a["total_ns"] + b["total_ns"],
        "min_s": min(mins) if mins else None,
        "max_s": max(maxs) if maxs else None,
        "hist": _merge_hist_states(a["hist"], b["hist"]),
    }


def _merge_dist_states(a: Optional[Dict[str, Any]],
                       b: Dict[str, Any]) -> Dict[str, Any]:
    if a is None:
        return b
    mins = [m for m in (a["min"], b["min"]) if m is not None]
    maxs = [m for m in (a["max"], b["max"]) if m is not None]
    return {
        "count": a["count"] + b["count"],
        "total_fp": a["total_fp"] + b["total_fp"],
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "hist": _merge_hist_states(a["hist"], b["hist"]),
    }


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-shard mergeable snapshots into one aggregate.

    Associative, commutative, bit-exact (see module docstring); the
    result is itself a valid input to further merges, so shard trees of
    any shape reduce to the identical document.
    """
    snapshots = list(snapshots)
    for doc in snapshots:
        _check_schema(doc)
    out: Dict[str, Any] = {
        "schema": MERGE_SCHEMA,
        "timers": {},
        "counters": {},
        "distributions": {},
        "dropped_spans": 0,
    }
    series_states: List[Dict[str, Any]] = []
    for doc in snapshots:
        for name, state in doc["timers"].items():
            out["timers"][name] = _merge_timer_states(
                out["timers"].get(name), state)
        for name, state in doc["counters"].items():
            merged = out["counters"].setdefault(name, {"value_fp": 0})
            merged["value_fp"] += state["value_fp"]
        for name, state in doc["distributions"].items():
            out["distributions"][name] = _merge_dist_states(
                out["distributions"].get(name), state)
        out["dropped_spans"] += doc.get("dropped_spans", 0)
        if doc.get("series") is not None:
            series_states.append(doc["series"])
    if series_states:
        out["series"] = merge_series_states(series_states)
    return out


def timer_state_stats(state: Dict[str, Any]) -> Dict[str, float]:
    """Derive calls/total/mean/p50/p90/p99 from a merged timer state."""
    hist = Histogram.from_state(state["hist"])
    calls = state["calls"]
    total_s = state["total_ns"] / FP_SCALE
    return {
        "calls": calls,
        "total_s": total_s,
        "mean_s": total_s / calls if calls else 0.0,
        "min_s": state["min_s"] if state["min_s"] is not None else 0.0,
        "max_s": state["max_s"] if state["max_s"] is not None else 0.0,
        "p50_s": hist.percentile(50.0),
        "p90_s": hist.percentile(90.0),
        "p99_s": hist.percentile(99.0),
    }


def dist_state_stats(state: Dict[str, Any]) -> Dict[str, float]:
    """Derive count/total/mean/percentiles from a merged distribution."""
    hist = Histogram.from_state(state["hist"])
    count = state["count"]
    total = state["total_fp"] / FP_SCALE
    return {
        "count": count,
        "total": total,
        "mean": total / count if count else 0.0,
        "min": state["min"] if state["min"] is not None else 0.0,
        "max": state["max"] if state["max"] is not None else 0.0,
        "p50": hist.percentile(50.0),
        "p90": hist.percentile(90.0),
        "p99": hist.percentile(99.0),
    }


def _delta_hist(cur: Dict[str, Any], prev: Dict[str, Any]) -> Dict[str, Any]:
    counts = {int(i): c for i, c in cur["buckets"]}
    for index, count in prev["buckets"]:
        counts[int(index)] = counts.get(int(index), 0) - count
    buckets = [[i, max(0, c)] for i, c in sorted(counts.items()) if c > 0]
    delta_count = max(0, cur["count"] - prev["count"])
    # min/max of the delta interval are unknowable from endpoints; keep
    # the current observed envelope so percentile clamping stays sane.
    return {"count": delta_count, "buckets": buckets,
            "min": cur["min"], "max": cur["max"]}


def snapshot_delta(current: Dict[str, Any],
                   previous: Dict[str, Any]) -> Dict[str, Any]:
    """What happened *between* two snapshots of one monotone process.

    ``repro obs top`` polls ``/snapshot`` and renders interval rates and
    percentiles from these deltas.  Only meaningful when both documents
    come from the same uninterrupted process (counters monotone);
    negative deltas (a registry reset in between) clamp to zero.
    """
    _check_schema(current)
    _check_schema(previous)
    out: Dict[str, Any] = {
        "schema": MERGE_SCHEMA,
        "timers": {},
        "counters": {},
        "distributions": {},
        "dropped_spans": max(
            0, current.get("dropped_spans", 0) - previous.get("dropped_spans", 0)),
    }
    for name, cur in current["timers"].items():
        prev = previous["timers"].get(name)
        if prev is None:
            out["timers"][name] = cur
            continue
        out["timers"][name] = {
            "calls": max(0, cur["calls"] - prev["calls"]),
            "total_ns": max(0, cur["total_ns"] - prev["total_ns"]),
            "min_s": cur["min_s"],
            "max_s": cur["max_s"],
            "hist": _delta_hist(cur["hist"], prev["hist"]),
        }
    for name, cur in current["counters"].items():
        prev = previous["counters"].get(name, {"value_fp": 0})
        out["counters"][name] = {
            "value_fp": max(0, cur["value_fp"] - prev["value_fp"])}
    for name, cur in current["distributions"].items():
        prev = previous["distributions"].get(name)
        if prev is None:
            out["distributions"][name] = cur
            continue
        out["distributions"][name] = {
            "count": max(0, cur["count"] - prev["count"]),
            "total_fp": max(0, cur["total_fp"] - prev["total_fp"]),
            "min": cur["min"],
            "max": cur["max"],
            "hist": _delta_hist(cur["hist"], prev["hist"]),
        }
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\")
            .replace("\n", r"\n")
            .replace('"', r'\"'))


def _metric_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    metric = "".join(out)
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return metric


def prometheus_text(registry: Optional[Registry] = None, *,
                    snapshot: Optional[Dict[str, Any]] = None,
                    series: Any = None,
                    windows: Iterable[float] = (10.0, 60.0),
                    namespace: str = "repro") -> str:
    """Render a registry (or a pre-merged snapshot) as Prometheus text.

    Timers and distributions become summaries (quantiles from the
    log-bucket histograms, ~12 % relative error), counters become
    counters, and an attached series contributes windowed rate/p99
    gauges so a scrape sees "now", not just "since boot".
    """
    if snapshot is None:
        snapshot = mergeable_snapshot(registry, series=series)
    if series is None and registry is not None:
        series = registry.series
    lines: List[str] = []

    timer_metric = f"{namespace}_stage_duration_seconds"
    lines.append(f"# HELP {timer_metric} Stage wall-clock duration summary.")
    lines.append(f"# TYPE {timer_metric} summary")
    for name in sorted(snapshot["timers"]):
        stats = timer_state_stats(snapshot["timers"][name])
        label = f'stage="{_escape_label(name)}"'
        for q, key in ((0.5, "p50_s"), (0.9, "p90_s"), (0.99, "p99_s")):
            lines.append(
                f'{timer_metric}{{{label},quantile="{q}"}} {stats[key]:.9g}')
        lines.append(f'{timer_metric}_sum{{{label}}} {stats["total_s"]:.9g}')
        lines.append(f'{timer_metric}_count{{{label}}} {stats["calls"]}')

    counter_metric = f"{namespace}_events_total"
    lines.append(f"# HELP {counter_metric} Accumulated event counters.")
    lines.append(f"# TYPE {counter_metric} counter")
    for name in sorted(snapshot["counters"]):
        value = snapshot["counters"][name]["value_fp"] / FP_SCALE
        lines.append(
            f'{counter_metric}{{name="{_escape_label(name)}"}} {value:.9g}')

    dist_metric = f"{namespace}_value_summary"
    lines.append(f"# HELP {dist_metric} Value-stream summary "
                 f"(batch sizes, queue depths, ...).")
    lines.append(f"# TYPE {dist_metric} summary")
    for name in sorted(snapshot["distributions"]):
        stats = dist_state_stats(snapshot["distributions"][name])
        label = f'name="{_escape_label(name)}"'
        for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            lines.append(
                f'{dist_metric}{{{label},quantile="{q}"}} {stats[key]:.9g}')
        lines.append(f'{dist_metric}_sum{{{label}}} {stats["total"]:.9g}')
        lines.append(f'{dist_metric}_count{{{label}}} {stats["count"]}')

    dropped = f"{namespace}_dropped_spans_total"
    lines.append(f"# HELP {dropped} Spans dropped by the bounded buffer.")
    lines.append(f"# TYPE {dropped} counter")
    lines.append(f"{dropped} {snapshot.get('dropped_spans', 0)}")

    if series is not None:
        live = series.snapshot(windows=windows)
        rate_metric = f"{namespace}_stage_window_rate"
        p99_metric = f"{namespace}_stage_window_p99_seconds"
        lines.append(f"# HELP {rate_metric} Windowed stage call rate "
                     f"(calls per second).")
        lines.append(f"# TYPE {rate_metric} gauge")
        lines.append(f"# HELP {p99_metric} Windowed stage p99 duration.")
        lines.append(f"# TYPE {p99_metric} gauge")
        for window, tables in live["windows"].items():
            wlabel = f'window="{_escape_label(window)}"'
            for name in sorted(tables["timers"]):
                stats = tables["timers"][name]
                label = f'stage="{_escape_label(name)}",{wlabel}'
                lines.append(
                    f'{rate_metric}{{{label}}} {stats["rate_per_s"]:.9g}')
                lines.append(f'{p99_metric}{{{label}}} {stats["p99"]:.9g}')
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class MetricsServer:
    """Serve ``/metrics``, ``/healthz``, ``/slo``, ``/snapshot``.

    A :class:`~http.server.ThreadingHTTPServer` on a daemon thread:
    start it next to a running :class:`~repro.serve.engine
    .DetectionEngine` and scrape while traffic flows.  ``slos`` is an
    optional list of :class:`repro.obs.slo.SLO` evaluated live per
    request to ``/slo``.

    ``port=0`` (the default) binds an ephemeral port — the bind happens
    in the constructor and :attr:`port`/:attr:`url` report the actual
    kernel-chosen value, so N shard processes on one host never collide
    and each can report its real endpoint back to the front-end
    aggregator.

    ``snapshot_fn`` turns the server into an *aggregation endpoint*:
    when provided, ``/snapshot`` serves ``snapshot_fn()`` instead of
    this process's registry and ``/metrics`` renders the same document.
    The shard front-end uses this with
    ``lambda: merge_snapshots(shard_documents)`` so its ``/snapshot``
    is bit-identical to the merge of the individual shard snapshots.
    """

    def __init__(self, registry: Optional[Registry] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 series: Any = None,
                 slos: Optional[List[Any]] = None,
                 snapshot_fn: Optional[Any] = None) -> None:
        self.registry = registry or get_registry()
        self.series = series if series is not None else self.registry.series
        self.slos = slos
        self.snapshot_fn = snapshot_fn
        self._started_s = time.time()
        server = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # keep scrapes out of stderr

            def _send(self, status: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        if server.snapshot_fn is not None:
                            body = prometheus_text(
                                snapshot=server.snapshot_fn()).encode()
                        else:
                            body = prometheus_text(
                                server.registry,
                                series=server.series).encode()
                        self._send(200,
                                   "text/plain; version=0.0.4; charset=utf-8",
                                   body)
                    elif path == "/healthz":
                        doc = {
                            "status": "ok",
                            "uptime_s": time.time() - server._started_s,
                            "dropped_spans": server.registry.dropped_spans,
                        }
                        self._send(200, "application/json",
                                   json.dumps(doc).encode())
                    elif path == "/slo":
                        from repro.obs.slo import default_slos, evaluate_live

                        slos = server.slos or default_slos()
                        statuses = evaluate_live(
                            slos, server.registry, series=server.series)
                        doc = {
                            "ok": all(s.ok for s in statuses),
                            "slos": [s.as_dict() for s in statuses],
                        }
                        self._send(200, "application/json",
                                   json.dumps(doc).encode())
                    elif path == "/snapshot":
                        if server.snapshot_fn is not None:
                            doc = server.snapshot_fn()
                        else:
                            doc = mergeable_snapshot(
                                server.registry, series=server.series)
                        self._send(200, "application/json",
                                   json.dumps(doc).encode())
                    else:
                        self._send(404, "text/plain", b"not found\n")
                except BrokenPipeError:  # client went away mid-write
                    pass

        self._httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-metrics",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
