"""Sliding-window time series over the log-bucket histograms.

The registry's timers answer "how has this stage behaved since process
start"; an operator watching a serving tier needs "how is it behaving
*right now*".  This module keeps, per metric, a ring of per-second
cells — each cell a count/total/min/max plus the same constant-memory
log-bucket :class:`~repro.obs.registry.Histogram` — so windowed rate,
p50, and p99 over the last N seconds are one walk over at most
``buckets`` cells, with total memory fixed at ring size regardless of
traffic.

Cells are keyed by the **absolute wall-clock bucket index**
(``int(time.time() // bucket_s)``), not a process-relative tick, so
cells from different shard processes land on the same grid and the
mergeable snapshot protocol (:mod:`repro.obs.export`) can sum them
cell-by-cell.  All accumulators are integers (fixed-point via
:func:`~repro.obs.registry.fixed_point`), keeping merges bit-exact in
any order; the merge is lossless whenever the shards' activity spans
fit inside the ring horizon (``bucket_s * buckets`` seconds).

Attach a :class:`SeriesRecorder` with
``get_registry().attach_series(SeriesRecorder())`` and every
span/count/observe recording is mirrored here automatically.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs.registry import FP_SCALE, Histogram, fixed_point

__all__ = [
    "SeriesRecorder",
    "WindowedCounter",
    "WindowedSeries",
    "merge_series_states",
]

SERIES_SCHEMA = "repro.obs.series/1"

DEFAULT_BUCKET_S = 1.0
DEFAULT_BUCKETS = 120


class _ValueCell:
    __slots__ = ("index", "count", "total_fp", "min", "max", "hist")

    def __init__(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.total_fp = 0
        self.min = math.inf
        self.max = -math.inf
        self.hist = Histogram()

    def record(self, value: float) -> None:
        self.count += 1
        self.total_fp += fixed_point(value)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.hist.record(value)

    def state(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_fp": self.total_fp,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "hist": self.hist.merge_state(),
        }


class _CountCell:
    __slots__ = ("index", "events", "amount_fp")

    def __init__(self, index: int) -> None:
        self.index = index
        self.events = 0
        self.amount_fp = 0

    def record(self, amount: float) -> None:
        self.events += 1
        self.amount_fp += fixed_point(amount)

    def state(self) -> Dict[str, Any]:
        return {"events": self.events, "amount_fp": self.amount_fp}


class _Ring:
    """Fixed-size ring of cells addressed by absolute bucket index."""

    __slots__ = ("bucket_s", "slots", "make_cell", "_lock")

    def __init__(self, bucket_s: float, buckets: int,
                 make_cell: Callable[[int], Any]) -> None:
        self.bucket_s = bucket_s
        self.slots: List[Any] = [None] * buckets
        self.make_cell = make_cell
        self._lock = threading.Lock()

    def record(self, now: float, *args: Any) -> None:
        index = int(now // self.bucket_s)
        slot = index % len(self.slots)
        with self._lock:
            cell = self.slots[slot]
            if cell is None or cell.index != index:
                # Lazy eviction: a stale cell is overwritten only when
                # its slot is claimed by a new wall-clock bucket.
                cell = self.slots[slot] = self.make_cell(index)
            cell.record(*args)

    def cells_in_window(self, window_s: float, now: float) -> List[Any]:
        now_index = int(now // self.bucket_s)
        span = max(1, int(math.ceil(window_s / self.bucket_s)))
        first = now_index - span + 1
        with self._lock:
            return [c for c in self.slots
                    if c is not None and first <= c.index <= now_index]

    def live_cells(self) -> List[Any]:
        with self._lock:
            return [c for c in self.slots if c is not None]


class WindowedSeries:
    """Sliding-window stats for a value stream (durations or sizes)."""

    def __init__(self, name: str, bucket_s: float = DEFAULT_BUCKET_S,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        self.name = name
        self._ring = _Ring(bucket_s, buckets, _ValueCell)

    def record(self, value: float, now: Optional[float] = None) -> None:
        self._ring.record(time.time() if now is None else now, value)

    def window_stats(self, window_s: float,
                     now: Optional[float] = None) -> Dict[str, float]:
        now = time.time() if now is None else now
        cells = self._ring.cells_in_window(window_s, now)
        count = sum(c.count for c in cells)
        if not count:
            return {"window_s": window_s, "count": 0, "rate_per_s": 0.0,
                    "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        merged = Histogram()
        for c in cells:
            merged.merge_in(c.hist.merge_state())
        total = sum(c.total_fp for c in cells) / FP_SCALE
        return {
            "window_s": window_s,
            "count": count,
            "rate_per_s": count / window_s,
            "mean": total / count,
            "min": min(c.min for c in cells if c.count),
            "max": max(c.max for c in cells if c.count),
            "p50": merged.percentile(50.0),
            "p90": merged.percentile(90.0),
            "p99": merged.percentile(99.0),
        }

    def window_state(self, window_s: float,
                     now: Optional[float] = None) -> Dict[str, Any]:
        """Merged cell state over the window (for SLO burn math: the
        histogram gives the fraction of samples above a threshold)."""
        now = time.time() if now is None else now
        cells = self._ring.cells_in_window(window_s, now)
        hist = Histogram()
        for c in cells:
            hist.merge_in(c.hist.merge_state())
        counted = [c for c in cells if c.count]
        return {
            "count": sum(c.count for c in cells),
            "total_fp": sum(c.total_fp for c in cells),
            "min": min((c.min for c in counted), default=None),
            "max": max((c.max for c in counted), default=None),
            "hist": hist.merge_state(),
        }

    def merge_state(self) -> Dict[str, Any]:
        return {"cells": {str(c.index): c.state()
                          for c in self._ring.live_cells()}}


class WindowedCounter:
    """Sliding-window event/amount rate for a counter stream."""

    def __init__(self, name: str, bucket_s: float = DEFAULT_BUCKET_S,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        self.name = name
        self._ring = _Ring(bucket_s, buckets, _CountCell)

    def record(self, amount: float = 1, now: Optional[float] = None) -> None:
        self._ring.record(time.time() if now is None else now, amount)

    def window_stats(self, window_s: float,
                     now: Optional[float] = None) -> Dict[str, float]:
        now = time.time() if now is None else now
        cells = self._ring.cells_in_window(window_s, now)
        events = sum(c.events for c in cells)
        amount = sum(c.amount_fp for c in cells) / FP_SCALE
        return {
            "window_s": window_s,
            "events": events,
            "amount": amount,
            "rate_per_s": amount / window_s,
        }

    def merge_state(self) -> Dict[str, Any]:
        return {"cells": {str(c.index): c.state()
                          for c in self._ring.live_cells()}}


class SeriesRecorder:
    """Per-metric sliding windows fed by the registry's probe hooks.

    Install with ``registry.attach_series(SeriesRecorder())``; the
    registry then mirrors every span duration (``record_timer``),
    counter increment (``record_counter``), and distribution sample
    (``record_value``) into this recorder's rings.
    """

    def __init__(self, bucket_s: float = DEFAULT_BUCKET_S,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        self.bucket_s = bucket_s
        self.buckets = buckets
        self._timers: Dict[str, WindowedSeries] = {}
        self._counters: Dict[str, WindowedCounter] = {}
        self._values: Dict[str, WindowedSeries] = {}
        self._lock = threading.Lock()

    # -- get-or-create (lock-free hit path, like Registry) --------------
    def _get(self, table: Dict[str, Any], name: str, factory: Callable) -> Any:
        series = table.get(name)
        if series is None:
            with self._lock:
                series = table.get(name)
                if series is None:
                    series = table[name] = factory(
                        name, self.bucket_s, self.buckets)
        return series

    def timer_series(self, name: str) -> WindowedSeries:
        return self._get(self._timers, name, WindowedSeries)

    def counter_series(self, name: str) -> WindowedCounter:
        return self._get(self._counters, name, WindowedCounter)

    def value_series(self, name: str) -> WindowedSeries:
        return self._get(self._values, name, WindowedSeries)

    # -- registry hooks -------------------------------------------------
    def record_timer(self, name: str, seconds: float,
                     now: Optional[float] = None) -> None:
        self.timer_series(name).record(seconds, now=now)

    def record_counter(self, name: str, amount: float = 1,
                       now: Optional[float] = None) -> None:
        self.counter_series(name).record(amount, now=now)

    def record_value(self, name: str, value: float,
                     now: Optional[float] = None) -> None:
        self.value_series(name).record(value, now=now)

    # -- views ----------------------------------------------------------
    def snapshot(self, windows: Iterable[float] = (10.0, 60.0),
                 now: Optional[float] = None) -> Dict[str, Any]:
        """Live windowed view: per-window rate/percentiles per metric."""
        now = time.time() if now is None else now
        out: Dict[str, Any] = {"bucket_s": self.bucket_s, "windows": {}}
        with self._lock:
            timers = dict(self._timers)
            counters = dict(self._counters)
            values = dict(self._values)
        for window_s in windows:
            label = f"{window_s:g}s"
            out["windows"][label] = {
                "timers": {n: s.window_stats(window_s, now)
                           for n, s in timers.items()},
                "counters": {n: s.window_stats(window_s, now)
                             for n, s in counters.items()},
                "values": {n: s.window_stats(window_s, now)
                           for n, s in values.items()},
            }
        return out

    def merge_state(self) -> Dict[str, Any]:
        with self._lock:
            timers = dict(self._timers)
            counters = dict(self._counters)
            values = dict(self._values)
        return {
            "schema": SERIES_SCHEMA,
            "bucket_s": self.bucket_s,
            "timers": {n: s.merge_state() for n, s in timers.items()},
            "counters": {n: s.merge_state() for n, s in counters.items()},
            "values": {n: s.merge_state() for n, s in values.items()},
        }

    def reset(self) -> None:
        with self._lock:
            self._timers.clear()
            self._counters.clear()
            self._values.clear()


def _merge_value_cells(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    if a is None:
        return b
    hist = Histogram.from_state(a["hist"])
    hist.merge_in(b["hist"])
    mins = [m for m in (a["min"], b["min"]) if m is not None]
    maxs = [m for m in (a["max"], b["max"]) if m is not None]
    return {
        "count": a["count"] + b["count"],
        "total_fp": a["total_fp"] + b["total_fp"],
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "hist": hist.merge_state(),
    }


def _merge_count_cells(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    if a is None:
        return b
    return {"events": a["events"] + b["events"],
            "amount_fp": a["amount_fp"] + b["amount_fp"]}


def _merge_tables(tables: List[Dict[str, Any]], merge_cell) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for table in tables:
        for name, series in table.items():
            target = out.setdefault(name, {"cells": {}})["cells"]
            for index, cell in series["cells"].items():
                target[index] = merge_cell(target.get(index), cell)
    return out


def merge_series_states(states: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge :meth:`SeriesRecorder.merge_state` docs cell-by-cell.

    Associative and commutative: cells are keyed by absolute wall-clock
    bucket index and all accumulators are integers, so any merge order
    produces the identical document.  All inputs must share ``bucket_s``.
    """
    states = list(states)
    if not states:
        return {"schema": SERIES_SCHEMA, "bucket_s": DEFAULT_BUCKET_S,
                "timers": {}, "counters": {}, "values": {}}
    bucket_sizes = {s["bucket_s"] for s in states}
    if len(bucket_sizes) > 1:
        raise ValueError(
            f"cannot merge series with different bucket sizes: "
            f"{sorted(bucket_sizes)}")
    return {
        "schema": SERIES_SCHEMA,
        "bucket_s": states[0]["bucket_s"],
        "timers": _merge_tables([s["timers"] for s in states],
                                _merge_value_cells),
        "counters": _merge_tables([s["counters"] for s in states],
                                  _merge_count_cells),
        "values": _merge_tables([s["values"] for s in states],
                                _merge_value_cells),
    }
