"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLO` names an objective over the metrics the hot path
already records; this module evaluates them two ways:

* **Live** (:func:`evaluate_live`) — multi-window burn rates in the
  SRE style: the *burn rate* is how fast the error budget is being
  consumed (1.0 = exactly at objective), and an objective pages only
  when **both** a fast window (catches cliffs quickly) and a slow
  window (filters blips) burn above their thresholds.  Windowed
  fractions come from the sliding-window series layer
  (:mod:`repro.obs.series`), so a burst outside the window ages out.
* **Offline** (:func:`evaluate_telemetry`) — single-window evaluation
  over a ``BENCH_*.json`` telemetry document, used by the
  ``repro obs slo`` CI gate.  Prefer ``ratio`` and
  ``relative_latency`` objectives there: they are machine-speed
  independent, so a baseline authored on one machine gates runs on
  another.

Three objective kinds:

``latency``
    p-th percentile of a stage ≤ ``threshold_s``.  The error budget is
    the tail the objective tolerates (``1 - percentile/100``); the bad
    fraction is read from the log-bucket histogram (samples in buckets
    above the threshold, ~12 % bucket-edge error).
``ratio``
    ``sum(bad counters) / sum(total counters) ≤ max_fraction`` — shed
    rate, escalation-budget adherence, engine rejections.
``relative_latency``
    ``pX(stage) / pY(reference_stage) ≤ max_ratio`` — e.g. cascade
    routing overhead relative to the batched detect pass.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.registry import FP_SCALE, Histogram, Registry, get_registry

__all__ = [
    "SLO",
    "SLOStatus",
    "default_slos",
    "evaluate_live",
    "evaluate_telemetry",
    "format_statuses",
    "load_slos",
]

LATENCY = "latency"
RATIO = "ratio"
RELATIVE_LATENCY = "relative_latency"


@dataclasses.dataclass(frozen=True)
class SLO:
    """One declarative objective (see module docstring for kinds)."""

    name: str
    kind: str
    # latency / relative_latency
    stage: Optional[str] = None
    percentile: float = 99.0
    threshold_s: Optional[float] = None
    reference_stage: Optional[str] = None
    reference_percentile: float = 50.0
    max_ratio: Optional[float] = None
    # ratio
    bad: Sequence[str] = ()
    total: Sequence[str] = ()
    max_fraction: Optional[float] = None
    # burn-rate alerting (live evaluation)
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in (LATENCY, RATIO, RELATIVE_LATENCY):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == LATENCY and (self.stage is None
                                     or self.threshold_s is None):
            raise ValueError(f"SLO {self.name}: latency needs stage "
                             f"and threshold_s")
        if self.kind == RATIO and (not self.total
                                   or self.max_fraction is None):
            raise ValueError(f"SLO {self.name}: ratio needs bad/total "
                             f"counters and max_fraction")
        if self.kind == RELATIVE_LATENCY and (
                self.stage is None or self.reference_stage is None
                or self.max_ratio is None):
            raise ValueError(f"SLO {self.name}: relative_latency needs "
                             f"stage, reference_stage, max_ratio")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SLO":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"SLO {doc.get('name', '?')}: unknown keys {sorted(unknown)}")
        return cls(**doc)


@dataclasses.dataclass
class SLOStatus:
    """Outcome of evaluating one SLO against one window (or one run)."""

    slo: SLO
    ok: bool
    value: float
    limit: float
    burn: float
    windows: Dict[str, float] = dataclasses.field(default_factory=dict)
    alerting: Optional[bool] = None
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        doc = {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "ok": self.ok,
            "value": self.value,
            "limit": self.limit,
            "burn": self.burn,
            "detail": self.detail,
        }
        if self.windows:
            doc["window_burns"] = dict(self.windows)
        if self.alerting is not None:
            doc["alerting"] = self.alerting
        return doc


def default_slos() -> List[SLO]:
    """The serving tier's standing objectives."""
    return [
        SLO(name="detect-p99", kind=LATENCY, stage="detect.total",
            percentile=99.0, threshold_s=0.5),
        SLO(name="engine-queue-wait-p99", kind=LATENCY,
            stage="engine.queue_wait", percentile=99.0, threshold_s=0.25),
        SLO(name="shed-rate", kind=RATIO, bad=["cascade.shed"],
            total=["cascade.fast_path", "cascade.escalated", "cascade.shed"],
            max_fraction=0.05),
        SLO(name="escalation-budget", kind=RATIO, bad=["cascade.escalated"],
            total=["cascade.fast_path", "cascade.escalated", "cascade.shed"],
            max_fraction=0.5),
        SLO(name="engine-rejects", kind=RATIO, bad=["engine.rejected"],
            total=["engine.scenes", "engine.rejected"], max_fraction=0.01),
    ]


def load_slos(path: str) -> List[SLO]:
    """Load objectives from a JSON config: ``{"slos": [{...}, ...]}``."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    entries = doc.get("slos")
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: expected a non-empty 'slos' list")
    return [SLO.from_dict(entry) for entry in entries]


# ----------------------------------------------------------------------
# Shared math
# ----------------------------------------------------------------------
def _hist_bad_fraction(hist_state: Dict[str, Any], threshold_s: float) -> float:
    """Fraction of recorded samples above the threshold (bucket-edge
    approximation: whole buckets strictly above the threshold's)."""
    count = hist_state["count"]
    if not count:
        return 0.0
    cut = Histogram.bucket_index(threshold_s)
    bad = sum(c for i, c in hist_state["buckets"] if i > cut)
    return bad / count


def _latency_status(slo: SLO, hist_state: Optional[Dict[str, Any]],
                    p_value: Optional[float]) -> SLOStatus:
    budget = max(1e-9, 1.0 - slo.percentile / 100.0)
    if hist_state is not None and hist_state["count"]:
        bad = _hist_bad_fraction(hist_state, slo.threshold_s)
        burn = bad / budget
        return SLOStatus(
            slo=slo, ok=burn <= 1.0, value=bad, limit=budget, burn=burn,
            detail=(f"{bad * 100:.2f}% of samples over "
                    f"{slo.threshold_s * 1e3:g} ms (budget "
                    f"{budget * 100:g}%)"))
    if p_value is not None:
        # Stats-only fallback (no histogram shipped): compare the
        # percentile itself; burn is the latency ratio, not budget math.
        burn = p_value / slo.threshold_s if slo.threshold_s else 0.0
        return SLOStatus(
            slo=slo, ok=burn <= 1.0, value=p_value, limit=slo.threshold_s,
            burn=burn,
            detail=(f"p{slo.percentile:g} = {p_value * 1e3:.3f} ms vs "
                    f"{slo.threshold_s * 1e3:g} ms"))
    return SLOStatus(slo=slo, ok=True, value=0.0,
                     limit=slo.threshold_s or 0.0, burn=0.0,
                     detail=f"stage {slo.stage!r} not recorded")


def _ratio_status(slo: SLO, counter_value) -> SLOStatus:
    bad = sum(counter_value(name) for name in slo.bad)
    total = sum(counter_value(name) for name in slo.total)
    fraction = bad / total if total else 0.0
    burn = fraction / slo.max_fraction if slo.max_fraction else 0.0
    return SLOStatus(
        slo=slo, ok=burn <= 1.0, value=fraction, limit=slo.max_fraction,
        burn=burn,
        detail=(f"{bad:g}/{total:g} = {fraction * 100:.2f}% vs "
                f"{slo.max_fraction * 100:g}%"))


def _relative_status(slo: SLO, percentile_of) -> SLOStatus:
    value = percentile_of(slo.stage, slo.percentile)
    reference = percentile_of(slo.reference_stage, slo.reference_percentile)
    if value is None or reference is None or reference <= 0.0:
        missing = slo.stage if value is None else slo.reference_stage
        return SLOStatus(slo=slo, ok=True, value=0.0, limit=slo.max_ratio,
                         burn=0.0,
                         detail=f"stage {missing!r} not recorded")
    ratio = value / reference
    burn = ratio / slo.max_ratio
    return SLOStatus(
        slo=slo, ok=burn <= 1.0, value=ratio, limit=slo.max_ratio, burn=burn,
        detail=(f"p{slo.percentile:g}({slo.stage}) / "
                f"p{slo.reference_percentile:g}({slo.reference_stage}) = "
                f"{ratio:.3f} vs {slo.max_ratio:g}"))


# ----------------------------------------------------------------------
# Offline: BENCH_*.json telemetry documents
# ----------------------------------------------------------------------
def evaluate_telemetry(slos: Iterable[SLO],
                       doc: Dict[str, Any]) -> List[SLOStatus]:
    """Single-window evaluation of a telemetry document (CI gate)."""
    obs = doc.get("obs", {})
    merge = doc.get("merge") or {}
    timers_merge = merge.get("timers", {})
    timers_stats = obs.get("timers", {})
    counters_merge = merge.get("counters", {})
    counters_obs = obs.get("counters", {})

    def counter_value(name: str) -> float:
        if name in counters_merge:
            return counters_merge[name]["value_fp"] / FP_SCALE
        return float(counters_obs.get(name, 0.0))

    def percentile_of(stage: str, q: float) -> Optional[float]:
        state = timers_merge.get(stage)
        if state is not None and state["hist"]["count"]:
            return Histogram.from_state(state["hist"]).percentile(q)
        stats = timers_stats.get(stage)
        if stats is None:
            return None
        key = f"p{q:g}_s"
        return stats.get(key, stats.get("p99_s"))

    statuses = []
    for slo in slos:
        if slo.kind == LATENCY:
            state = timers_merge.get(slo.stage)
            stats = timers_stats.get(slo.stage)
            p_value = None
            if stats is not None:
                p_value = stats.get(f"p{slo.percentile:g}_s")
            statuses.append(_latency_status(
                slo, state["hist"] if state else None, p_value))
        elif slo.kind == RATIO:
            statuses.append(_ratio_status(slo, counter_value))
        else:
            statuses.append(_relative_status(slo, percentile_of))
    return statuses


# ----------------------------------------------------------------------
# Live: multi-window burn rates over the series layer
# ----------------------------------------------------------------------
def evaluate_live(slos: Iterable[SLO], registry: Optional[Registry] = None,
                  series: Any = None,
                  now: Optional[float] = None) -> List[SLOStatus]:
    """Evaluate burn rates over fast/slow sliding windows.

    Each status carries per-window burns; ``alerting`` is True only
    when both windows burn above their thresholds (fast catches the
    cliff, slow confirms it is sustained).  ``ok`` mirrors
    ``not alerting`` so live and offline callers share one predicate.
    """
    registry = registry or get_registry()
    if series is None:
        series = registry.series
    statuses: List[SLOStatus] = []
    for slo in slos:
        window_burns: Dict[str, float] = {}
        per_window: List[SLOStatus] = []
        for window_s in (slo.fast_window_s, slo.slow_window_s):
            if slo.kind == LATENCY:
                hist_state = None
                if series is not None:
                    hist_state = series.timer_series(slo.stage).window_state(
                        window_s, now=now)["hist"]
                status = _latency_status(slo, hist_state, None)
            elif slo.kind == RATIO:
                def counter_value(name: str, _w=window_s) -> float:
                    if series is None:
                        return 0.0
                    stats = series.counter_series(name).window_stats(
                        _w, now=now)
                    return stats["amount"]
                status = _ratio_status(slo, counter_value)
            else:
                def percentile_of(stage: str, q: float,
                                  _w=window_s) -> Optional[float]:
                    if series is None:
                        return None
                    state = series.timer_series(stage).window_state(
                        _w, now=now)
                    if not state["count"]:
                        return None
                    return Histogram.from_state(state["hist"]).percentile(q)
                status = _relative_status(slo, percentile_of)
            window_burns[f"{window_s:g}s"] = status.burn
            per_window.append(status)
        fast, slow = per_window
        alerting = (fast.burn >= slo.fast_burn and slow.burn >= slo.slow_burn)
        statuses.append(SLOStatus(
            slo=slo, ok=not alerting, value=fast.value, limit=fast.limit,
            burn=fast.burn, windows=window_burns, alerting=alerting,
            detail=fast.detail))
    return statuses


def format_statuses(statuses: Iterable[SLOStatus],
                    title: str = "SLO status") -> str:
    lines = [f"== {title} =="]
    statuses = list(statuses)
    if not statuses:
        return "\n".join(lines + ["(no objectives)"])
    width = max(len(s.slo.name) for s in statuses)
    for status in statuses:
        flag = "OK  " if status.ok else "FAIL"
        extra = ""
        if status.windows:
            burns = ", ".join(f"{w}={b:.2f}x"
                              for w, b in status.windows.items())
            extra = f" [burn {burns}]"
        lines.append(f"{flag} {status.slo.name.ljust(width)} "
                     f"burn={status.burn:6.2f}x  {status.detail}{extra}")
    return "\n".join(lines)
