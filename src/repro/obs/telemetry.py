"""Run manifests, ``BENCH_*.json`` telemetry files, and regression gates.

Every benchmark run produces one schema-versioned JSON document:

.. code-block:: text

    {
      "schema_version": 1,
      "bench": "e10_pipeline_latency",
      "manifest": {git sha, branch, dirty, python, platform, numpy, seed,
                   argv, timestamp_utc, hostname, pid},
      "obs": {"timers": {stage: {calls, total_s, mean_s, min_s, max_s,
                                 last_s, p50_s, p90_s, p99_s}},
              "counters": {...},
              "spans": [...], "dropped_spans": n},
      "rows": [...],          # the experiment's primary table
      "tables": {label: [...]}  # any secondary tables
    }

That file is the durable perf trajectory: ``repro obs report`` renders
it, ``repro obs trace`` converts its spans for Perfetto, and
``repro obs compare A.json B.json --max-regress 15%`` gates CI on
hot-path regressions between two of them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.registry import Registry, get_registry

SCHEMA_VERSION = 1

__all__ = [
    "SCHEMA_VERSION",
    "run_manifest",
    "build_telemetry",
    "write_telemetry",
    "load_telemetry",
    "CompareRow",
    "Comparison",
    "compare_telemetry",
]


def _git(args: List[str], cwd: Optional[str] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def run_manifest(seed: Optional[int] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Everything needed to reproduce / attribute one benchmark run."""
    cwd = os.path.dirname(os.path.abspath(__file__))
    manifest: Dict[str, Any] = {
        "git_sha": _git(["rev-parse", "HEAD"], cwd=cwd),
        "git_branch": _git(["rev-parse", "--abbrev-ref", "HEAD"], cwd=cwd),
        "git_dirty": bool(_git(["status", "--porcelain"], cwd=cwd)),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
    }
    try:
        import numpy

        manifest["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover — numpy is a hard dep elsewhere
        manifest["numpy"] = None
    if extra:
        manifest.update(extra)
    return manifest


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays (common in benchmark rows) to plain
    JSON types; reject nothing — unknown objects become their repr."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return _jsonify(value.item())  # numpy scalar
    if hasattr(value, "tolist"):
        return _jsonify(value.tolist())  # numpy array
    return repr(value)


def build_telemetry(
    bench: str,
    registry: Optional[Registry] = None,
    rows: Optional[Sequence[Dict[str, Any]]] = None,
    tables: Optional[Dict[str, Sequence[Dict[str, Any]]]] = None,
    seed: Optional[int] = None,
    manifest_extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    from repro.obs.export import mergeable_snapshot

    registry = registry or get_registry()
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "manifest": run_manifest(seed=seed, extra=manifest_extra),
        "obs": _jsonify(registry.telemetry_snapshot()),
        # The shard-mergeable view (integer accumulators + sparse
        # histogram buckets): `repro obs slo` reads its histograms for
        # budget math, and shard telemetry aggregates through
        # repro.obs.export.merge_snapshots.
        "merge": _jsonify(mergeable_snapshot(registry)),
        "rows": _jsonify(list(rows or [])),
        "tables": _jsonify({k: list(v) for k, v in (tables or {}).items()}),
    }


def write_telemetry(path: str, doc: Dict[str, Any]) -> str:
    """Atomic write (temp + ``os.replace``) of a telemetry document.

    Strict JSON (``allow_nan=False``): an ``Infinity`` anywhere in the
    document is a bug we want to fail loudly on, not ship.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, allow_nan=False)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_telemetry(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: telemetry schema_version {version!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    return doc


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
#: metric -> how to read it from a timer-stats dict
_METRICS = ("p50_s", "mean_s", "total_s", "max_s", "share")


@dataclasses.dataclass
class CompareRow:
    stage: str
    baseline: float
    current: float
    change_pct: float      # +x% means current is x% slower / larger
    regressed: bool


@dataclasses.dataclass
class Comparison:
    metric: str
    max_regress: float
    rows: List[CompareRow]
    skipped: List[str]     # stages new in the current run (informational)
    # Stages the baseline recorded but the current run did not: a
    # renamed or deleted span would otherwise silently escape the gate,
    # so these fail the comparison outright.
    missing: List[str] = dataclasses.field(default_factory=list)

    @property
    def regressions(self) -> List[CompareRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def summary(self) -> str:
        lines = [
            f"== obs compare (metric={self.metric}, "
            f"max-regress={self.max_regress * 100:.0f}%) =="
        ]
        if self.rows:
            width = max(len(row.stage) for row in self.rows)
            lines.append(
                f"{'stage'.ljust(width)} | {'baseline':>12} | "
                f"{'current':>12} | {'change':>8} |"
            )
            for row in sorted(self.rows, key=lambda r: -r.change_pct):
                verdict = "REGRESSED" if row.regressed else "ok"
                lines.append(
                    f"{row.stage.ljust(width)} | {row.baseline:>12.6f} | "
                    f"{row.current:>12.6f} | {row.change_pct:>+7.1f}% | {verdict}"
                )
        else:
            lines.append("(no comparable stages)")
        if self.skipped:
            lines.append(f"skipped (not in both runs): {', '.join(self.skipped)}")
        if self.missing:
            lines.append(
                f"MISSING from current run: {', '.join(self.missing)} — "
                f"baseline stages that were not recorded (renamed or "
                f"deleted span?); regenerate the baseline if intentional")
        if self.ok:
            status = "OK"
        else:
            parts = []
            if self.regressions:
                parts.append(f"{len(self.regressions)} stage(s) regressed")
            if self.missing:
                parts.append(f"{len(self.missing)} baseline stage(s) missing")
            status = ", ".join(parts)
        lines.append(f"result: {status}")
        return "\n".join(lines)


def _timer_stats(doc: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    return doc.get("obs", {}).get("timers", {})


def _metric_value(stats: Dict[str, float], metric: str,
                  normalizer: float) -> Optional[float]:
    if metric == "share":
        total = stats.get("total_s", 0.0)
        return total / normalizer if normalizer > 0 else None
    return stats.get(metric)


def compare_telemetry(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    max_regress: float = 0.15,
    metric: str = "p50_s",
    stages: Optional[Sequence[str]] = None,
) -> Comparison:
    """Gate ``current`` against ``baseline``: any stage whose ``metric``
    grew by more than ``max_regress`` (fractional, e.g. ``0.15``) counts
    as a regression.

    ``metric="share"`` compares each stage's fraction of the dominant
    stage total (machine-speed independent — use it to compare runs
    from different hardware); the absolute metrics (``p50_s``,
    ``mean_s``, ``total_s``, ``max_s``) are for same-machine
    trajectories.  When a ``stages`` allowlist is given, the share
    normalizer is the dominant total *among those stages*, so adding
    unrelated instrumentation elsewhere cannot shift a scoped gate.

    A stage the baseline recorded but the current run did not lands in
    ``missing`` and fails the comparison — a renamed or deleted span
    must not silently escape the gate.  Stages only the current run
    recorded stay informational (``skipped``): new instrumentation is
    not a regression.
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    base_timers = _timer_stats(baseline)
    cur_timers = _timer_stats(current)
    names = stages or sorted(set(base_timers) | set(cur_timers))

    def normalizer(timers: Dict[str, Dict[str, float]]) -> float:
        pool = ({n: timers[n] for n in stages if n in timers}
                if stages else timers)
        return max((s.get("total_s", 0.0) for s in pool.values()),
                   default=0.0)

    base_norm, cur_norm = normalizer(base_timers), normalizer(cur_timers)
    rows: List[CompareRow] = []
    skipped: List[str] = []
    missing: List[str] = []
    for name in names:
        base_stats, cur_stats = base_timers.get(name), cur_timers.get(name)
        if base_stats is not None and cur_stats is None:
            missing.append(name)
            continue
        if base_stats is None:
            skipped.append(name)
            continue
        base_value = _metric_value(base_stats, metric, base_norm)
        cur_value = _metric_value(cur_stats, metric, cur_norm)
        if not base_value or base_value <= 0.0 or cur_value is None:
            skipped.append(name)
            continue
        change = (cur_value - base_value) / base_value
        rows.append(CompareRow(
            stage=name,
            baseline=base_value,
            current=cur_value,
            change_pct=change * 100.0,
            regressed=change > max_regress,
        ))
    return Comparison(metric=metric, max_regress=max_regress,
                      rows=rows, skipped=skipped, missing=missing)
