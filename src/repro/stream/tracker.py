"""Streaming detector: temporal smoothing + hysteresis over frames.

Single-frame detections flicker: sensor noise makes a borderline window
cross the threshold one frame and miss the next.  The streaming detector
keeps an exponential moving average of the combined score per grid cell
and applies hysteresis — a track turns *on* above ``on_threshold`` and
only turns *off* below the lower ``off_threshold``.  Tracks carry stable
ids across frames.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.scenes import Scene
from repro.detect.pipeline import ModelLike, predict_windows, score_predictions
from repro.kg.matcher import GraphMatcher

if TYPE_CHECKING:
    from repro.serve.session import MissionSession


@dataclasses.dataclass(frozen=True)
class TrackerConfig:
    smoothing: float = 0.6        # EMA weight on the previous score
    on_threshold: float = 0.4
    off_threshold: float = 0.25
    max_missed_frames: int = 3    # drop a track after this many off frames

    def __post_init__(self) -> None:
        if not 0.0 <= self.smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        if not 0.0 <= self.off_threshold <= self.on_threshold <= 1.0:
            raise ValueError("need 0 <= off_threshold <= on_threshold <= 1")


@dataclasses.dataclass
class Track:
    """A task-relevant object persisted across frames."""

    track_id: int
    cell: Tuple[int, int]
    first_frame: int
    last_frame: int
    score: float
    active: bool = True
    missed: int = 0


class StreamingDetector:
    """Stateful per-cell detector over a frame stream."""

    def __init__(self, model: ModelLike, matcher: Optional[GraphMatcher],
                 config: TrackerConfig = TrackerConfig(),
                 batch_size: int = 64) -> None:
        self.model = model
        self.matcher = matcher
        self.config = config
        self.batch_size = batch_size
        self._ema: Dict[Tuple[int, int], float] = {}
        self._tracks: Dict[Tuple[int, int], Track] = {}
        self._history: List[Track] = []
        self._next_track_id = 0
        self._frame = -1

    # ------------------------------------------------------------------
    @classmethod
    def from_session(cls, session: "MissionSession",
                     config: TrackerConfig = TrackerConfig(),
                     batch_size: int = 64) -> "StreamingDetector":
        """Build a tracker on a prepared mission session's model + matcher."""
        detector = session.detector
        return cls(detector.model, detector.matcher, config=config,
                   batch_size=batch_size)

    # ------------------------------------------------------------------
    @staticmethod
    def _cells_and_windows(scene: Scene) -> Tuple[List[Tuple[int, int]], np.ndarray]:
        cells = []
        windows = []
        for row, col, _bbox, window in scene.iter_cells():
            cells.append((row, col))
            windows.append(window)
        if windows:
            return cells, np.stack(windows)
        # Zero-cell scene (degenerate grid): a well-formed zero-row batch
        # rides the same empty-batch path predict_windows already guards,
        # instead of crashing in np.stack on an empty list.
        channels = scene.image.shape[0] if scene.image.ndim == 3 else 3
        return cells, np.zeros(
            (0, channels, scene.cell_size, scene.cell_size),
            dtype=scene.image.dtype if scene.image.size else np.float32)

    def _cell_scores(self, scene: Scene) -> Dict[Tuple[int, int], float]:
        cells, windows = self._cells_and_windows(scene)
        predictions = predict_windows(self.model, windows,
                                      batch_size=self.batch_size)
        # Same scoring rule as TaskDetector — one shared implementation.
        _, _, combined = score_predictions(predictions, self.matcher)
        return dict(zip(cells, combined))

    # ------------------------------------------------------------------
    def update(self, scene: Scene) -> List[Track]:
        """Process one frame; returns the currently active tracks."""
        return self._advance(self._cell_scores(scene))

    def update_many(self, scenes: Sequence[Scene]) -> List[List[Track]]:
        """Process a chunk of frames with one fused model forward.

        The windows of every frame in the chunk are scored in a single
        batched forward (the replay/offline-analysis fast path); the
        temporal EMA + hysteresis state then advances frame by frame in
        order, exactly as repeated :meth:`update` calls would.  Returns
        each frame's active-track snapshot.
        """
        scenes = list(scenes)
        if not scenes:
            return []
        per_frame_cells: List[List[Tuple[int, int]]] = []
        parts: List[np.ndarray] = []
        for scene in scenes:
            cells, windows = self._cells_and_windows(scene)
            per_frame_cells.append(cells)
            parts.append(windows)
        # Zero-cell frames contribute zero-row parts; dropping them keeps
        # the concatenate well-formed even when frame shapes differ only
        # through degenerate grids (an all-empty chunk scores nothing).
        nonempty = [p for p in parts if p.shape[0]]
        all_windows = (np.concatenate(nonempty, axis=0) if nonempty
                       else parts[0])
        predictions = predict_windows(self.model, all_windows,
                                      batch_size=self.batch_size)
        _, _, combined = score_predictions(predictions, self.matcher)
        snapshots: List[List[Track]] = []
        start = 0
        for cells in per_frame_cells:
            stop = start + len(cells)
            raw = dict(zip(cells, combined[start:stop]))
            # Deep-copy the snapshot: tracks are mutable and advance in
            # place on later frames, so sharing the Track objects would
            # silently rewrite frame 0's scores to frame k's.
            snapshots.append([dataclasses.replace(t)
                              for t in self._advance(raw)])
            start = stop
        return snapshots

    def _advance(self, raw: Dict[Tuple[int, int], float]) -> List[Track]:
        """Advance one frame of EMA + hysteresis from raw cell scores.

        Cells absent from ``raw`` (shrinking grids, degenerate frames,
        gated windows) are *unobserved*: their EMA decays toward zero —
        an unobserved cell is evidence of nothing, not of persistence —
        their tracks count the frame as missed, and stale smoothed
        scores never give birth to new tracks.
        """
        self._frame += 1
        cfg = self.config
        for cell, score in raw.items():
            previous = self._ema.get(cell, score)
            self._ema[cell] = cfg.smoothing * previous + (1 - cfg.smoothing) * float(score)
        for cell in self._ema:
            if cell not in raw:
                # EMA update with an implicit zero observation.
                self._ema[cell] *= cfg.smoothing

        for cell, smoothed in self._ema.items():
            observed = cell in raw
            track = self._tracks.get(cell)
            if track is None or not track.active:
                if observed and smoothed >= cfg.on_threshold:
                    track = Track(track_id=self._next_track_id, cell=cell,
                                  first_frame=self._frame,
                                  last_frame=self._frame, score=smoothed)
                    self._next_track_id += 1
                    self._tracks[cell] = track
                    self._history.append(track)
                continue
            # active track: hysteresis
            track.score = smoothed
            if observed and smoothed >= cfg.off_threshold:
                track.last_frame = self._frame
                track.missed = 0
            else:
                track.missed += 1
                if track.missed > cfg.max_missed_frames:
                    track.active = False
        return self.active_tracks()

    def active_tracks(self) -> List[Track]:
        return [t for t in self._tracks.values() if t.active]

    @property
    def all_tracks(self) -> List[Track]:
        return list(self._history)

    def reset(self) -> None:
        self._ema.clear()
        self._tracks.clear()
        self._history.clear()
        self._next_track_id = 0
        self._frame = -1
