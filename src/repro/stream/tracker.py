"""Streaming detector: temporal smoothing + hysteresis over frames.

Single-frame detections flicker: sensor noise makes a borderline window
cross the threshold one frame and miss the next.  The streaming detector
keeps an exponential moving average of the combined score per grid cell
and applies hysteresis — a track turns *on* above ``on_threshold`` and
only turns *off* below the lower ``off_threshold``.  Tracks carry stable
ids across frames.

Incremental detection (``TrackerConfig.delta_gate``) makes per-frame
cost scale with *scene change* instead of scene size: each cell's pixels
are fingerprinted (crc32 + byte length + pixel sum) and, when the
fingerprint matches the previous scoring of that cell, the cached raw
score is reused without a model forward or a matcher pass.  Identical
pixels through a deterministic model + matcher produce identical scores,
so gated EMA/hysteresis state is *bit-equal* to full recompute on the
quantized configuration (whose exact kernels are batch-invariant) and
ulp-equal on the float one.  Two staleness escapes are closed
explicitly: cached matcher results are keyed on the knowledge graph's
``version`` (a KG edit invalidates every cached cell), and
``refresh_every`` forces a periodic full re-score.  The optional
``motion_threshold`` adds *tracker-prior carryover*: a cell whose pixels
moved, but by less than the threshold, keeps its cached score as long as
it holds an active track — approximate by design, with drift bounded by
``refresh_every``.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.scenes import Scene
from repro.detect.pipeline import ModelLike, score_windows
from repro.kg.matcher import GraphMatcher
from repro.obs import get_registry

if TYPE_CHECKING:
    from repro.serve.session import MissionSession


@dataclasses.dataclass(frozen=True)
class TrackerConfig:
    smoothing: float = 0.6        # EMA weight on the previous score
    on_threshold: float = 0.4
    off_threshold: float = 0.25
    max_missed_frames: int = 3    # drop a track after this many off frames
    delta_gate: bool = False      # reuse cached scores for unchanged cells
    motion_threshold: float = 0.0  # carryover: mean-abs delta counted as static
    refresh_every: int = 0        # force a full re-score every N frames (0=off)

    def __post_init__(self) -> None:
        if not 0.0 <= self.smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        if not 0.0 <= self.off_threshold <= self.on_threshold <= 1.0:
            raise ValueError("need 0 <= off_threshold <= on_threshold <= 1")
        if self.motion_threshold < 0.0:
            raise ValueError("motion_threshold must be >= 0")
        if self.refresh_every < 0:
            raise ValueError("refresh_every must be >= 0")


@dataclasses.dataclass
class Track:
    """A task-relevant object persisted across frames."""

    track_id: int
    cell: Tuple[int, int]
    first_frame: int
    last_frame: int
    score: float
    active: bool = True
    missed: int = 0


@dataclasses.dataclass
class GateStats:
    """One detector's running view of delta-gate effectiveness."""

    frames: int = 0       # gated frames processed
    skipped: int = 0      # cells reused from cache (incl. carried)
    recomputed: int = 0   # cells sent through the model forward
    carried: int = 0      # reuses granted by tracker-prior carryover

    @property
    def hit_rate(self) -> float:
        total = self.skipped + self.recomputed
        return self.skipped / total if total else 0.0


def _window_fingerprint(window: np.ndarray) -> Tuple[int, int, float]:
    """Cheap order-sensitive fingerprint of one cell's pixels.

    crc32 over the raw bytes, the byte length, and the float pixel sum.
    Two windows with equal fingerprints are treated as identical; a
    simultaneous crc32 *and* sum collision on same-length buffers is the
    only way a changed cell could slip through, and ``refresh_every``
    bounds even that astronomically unlikely case.
    """
    buffer = np.ascontiguousarray(window)
    return zlib.crc32(buffer.tobytes()), buffer.nbytes, float(buffer.sum())


@dataclasses.dataclass
class _CellCache:
    """Last computed raw score for one cell (the delta-gate reuse unit).

    ``score`` keeps the numpy scalar exactly as the scoring pass
    produced it — converting to a python float would change the dtype
    the EMA arithmetic sees and break bit-equality with full recompute.
    ``window`` (reference pixels for the carryover delta) is retained
    only when ``motion_threshold`` is active.
    """

    fingerprint: Tuple[int, int, float]
    score: Any
    kg_version: int
    window: Optional[np.ndarray] = None


class StreamingDetector:
    """Stateful per-cell detector over a frame stream."""

    def __init__(self, model: ModelLike, matcher: Optional[GraphMatcher],
                 config: TrackerConfig = TrackerConfig(),
                 batch_size: int = 64) -> None:
        self.model = model
        self.matcher = matcher
        self.config = config
        self.batch_size = batch_size
        self._ema: Dict[Tuple[int, int], float] = {}
        self._tracks: Dict[Tuple[int, int], Track] = {}
        self._history: List[Track] = []
        self._next_track_id = 0
        self._frame = -1
        self._score_cache: Dict[Tuple[int, int], _CellCache] = {}
        self.gate_stats = GateStats()

    # ------------------------------------------------------------------
    @classmethod
    def from_session(cls, session: "MissionSession",
                     config: TrackerConfig = TrackerConfig(),
                     batch_size: int = 64) -> "StreamingDetector":
        """Build a tracker on a prepared mission session's model + matcher."""
        detector = session.detector
        return cls(detector.model, detector.matcher, config=config,
                   batch_size=batch_size)

    # ------------------------------------------------------------------
    @staticmethod
    def _cells_and_windows(scene: Scene) -> Tuple[List[Tuple[int, int]], np.ndarray]:
        cells = []
        windows = []
        for row, col, _bbox, window in scene.iter_cells():
            cells.append((row, col))
            windows.append(window)
        if windows:
            return cells, np.stack(windows)
        # Zero-cell scene (degenerate grid): a well-formed zero-row batch
        # rides the same empty-batch path predict_windows already guards,
        # instead of crashing in np.stack on an empty list.
        channels = scene.image.shape[0] if scene.image.ndim == 3 else 3
        return cells, np.zeros(
            (0, channels, scene.cell_size, scene.cell_size),
            dtype=scene.image.dtype if scene.image.size else np.float32)

    def _cell_scores(self, scene: Scene) -> Dict[Tuple[int, int], float]:
        cells, windows = self._cells_and_windows(scene)
        # Same scoring rule as TaskDetector — one shared implementation.
        combined = score_windows(self.model, windows, self.matcher,
                                 batch_size=self.batch_size)
        return dict(zip(cells, combined))

    def _matcher_version(self) -> int:
        """KG edit counter the cached matcher results are keyed on."""
        return self.matcher.kg.version if self.matcher is not None else -1

    def _gated_scores(self, scene: Scene) -> Dict[Tuple[int, int], float]:
        """Raw cell scores with frame-delta gating (see module docstring).

        Returns the same ``{cell: score}`` map ``_cell_scores`` would,
        in the same cell order (track birth order depends on it), but
        only sends changed cells through the model; unchanged cells
        reuse the cached score of their last scoring pass — so gated
        cells still count as *observed* in :meth:`_advance`, which is
        the correctness contract: reuse replaces the forward, never the
        observation.
        """
        cfg = self.config
        registry = get_registry()
        cells, windows = self._cells_and_windows(scene)
        frame = self._frame + 1  # the index _advance will stamp
        refresh = cfg.refresh_every > 0 and frame % cfg.refresh_every == 0
        kg_version = self._matcher_version()
        scores: List[Any] = [None] * len(cells)
        compute: List[int] = []
        carried = 0
        with registry.time("stream.gate"):
            fingerprints = [_window_fingerprint(w) for w in windows]
            for index, cell in enumerate(cells):
                entry = self._score_cache.get(cell)
                if (refresh or entry is None
                        or entry.kg_version != kg_version):
                    compute.append(index)
                    continue
                if entry.fingerprint == fingerprints[index]:
                    scores[index] = entry.score
                    continue
                track = self._tracks.get(cell)
                if (cfg.motion_threshold > 0.0 and entry.window is not None
                        and track is not None and track.active
                        and float(np.abs(windows[index] - entry.window).mean())
                        <= cfg.motion_threshold):
                    # Tracker-prior carryover: sub-threshold motion on a
                    # confirmed track keeps the cached score alive.  The
                    # reference pixels stay at the last *computed* frame,
                    # so drift is bounded by refresh_every, not unbounded
                    # by a random walk of tiny deltas.
                    scores[index] = entry.score
                    carried += 1
                    continue
                compute.append(index)
        if compute:
            fresh = score_windows(self.model, windows[compute], self.matcher,
                                  batch_size=self.batch_size)
            keep_pixels = cfg.motion_threshold > 0.0
            for slot, index in enumerate(compute):
                scores[index] = fresh[slot]
                self._score_cache[cells[index]] = _CellCache(
                    fingerprint=fingerprints[index], score=fresh[slot],
                    kg_version=kg_version,
                    window=np.array(windows[index]) if keep_pixels else None)
        reused = len(cells) - len(compute)
        stats = self.gate_stats
        stats.frames += 1
        stats.skipped += reused
        stats.recomputed += len(compute)
        stats.carried += carried
        registry.count("stream.cells.skipped", reused)
        registry.count("stream.cells.recomputed", len(compute))
        if cells:
            registry.observe("stream.delta_gate.hit_rate",
                             reused / len(cells))
        return dict(zip(cells, scores))

    # ------------------------------------------------------------------
    def update(self, scene: Scene) -> List[Track]:
        """Process one frame; returns the currently active tracks."""
        with get_registry().span("stream.update"):
            if self.config.delta_gate:
                raw = self._gated_scores(scene)
            else:
                raw = self._cell_scores(scene)
            return self._advance(raw)

    def update_many(self, scenes: Sequence[Scene]) -> List[List[Track]]:
        """Process a chunk of frames with one fused model forward.

        The windows of every frame in the chunk are scored in a single
        batched forward (the replay/offline-analysis fast path); the
        temporal EMA + hysteresis state then advances frame by frame in
        order, exactly as repeated :meth:`update` calls would.  Returns
        each frame's active-track snapshot.

        With the delta gate enabled the chunk cannot be fused — whether
        a window is re-scored depends on the cache state the previous
        frame left behind — so the chunk falls back to sequential
        :meth:`update` calls; the gate itself already removes most
        forwards.
        """
        scenes = list(scenes)
        if not scenes:
            return []
        if self.config.delta_gate:
            return [[dataclasses.replace(t) for t in self.update(scene)]
                    for scene in scenes]
        per_frame_cells: List[List[Tuple[int, int]]] = []
        parts: List[np.ndarray] = []
        for scene in scenes:
            cells, windows = self._cells_and_windows(scene)
            per_frame_cells.append(cells)
            parts.append(windows)
        # Zero-cell frames contribute zero-row parts; dropping them keeps
        # the concatenate well-formed even when frame shapes differ only
        # through degenerate grids (an all-empty chunk scores nothing).
        nonempty = [p for p in parts if p.shape[0]]
        all_windows = (np.concatenate(nonempty, axis=0) if nonempty
                       else parts[0])
        combined = score_windows(self.model, all_windows, self.matcher,
                                 batch_size=self.batch_size)
        snapshots: List[List[Track]] = []
        start = 0
        for cells in per_frame_cells:
            stop = start + len(cells)
            raw = dict(zip(cells, combined[start:stop]))
            # Deep-copy the snapshot: tracks are mutable and advance in
            # place on later frames, so sharing the Track objects would
            # silently rewrite frame 0's scores to frame k's.
            snapshots.append([dataclasses.replace(t)
                              for t in self._advance(raw)])
            start = stop
        return snapshots

    def _advance(self, raw: Dict[Tuple[int, int], float]) -> List[Track]:
        """Advance one frame of EMA + hysteresis from raw cell scores.

        Cells absent from ``raw`` (shrinking grids, degenerate frames,
        gated windows) are *unobserved*: their EMA decays toward zero —
        an unobserved cell is evidence of nothing, not of persistence —
        their tracks count the frame as missed, and stale smoothed
        scores never give birth to new tracks.
        """
        self._frame += 1
        cfg = self.config
        for cell, score in raw.items():
            previous = self._ema.get(cell, score)
            self._ema[cell] = cfg.smoothing * previous + (1 - cfg.smoothing) * float(score)
        for cell in self._ema:
            if cell not in raw:
                # EMA update with an implicit zero observation.
                self._ema[cell] *= cfg.smoothing

        for cell, smoothed in self._ema.items():
            observed = cell in raw
            track = self._tracks.get(cell)
            if track is None or not track.active:
                if observed and smoothed >= cfg.on_threshold:
                    track = Track(track_id=self._next_track_id, cell=cell,
                                  first_frame=self._frame,
                                  last_frame=self._frame, score=smoothed)
                    self._next_track_id += 1
                    self._tracks[cell] = track
                    self._history.append(track)
                continue
            # active track: hysteresis
            track.score = smoothed
            if observed and smoothed >= cfg.off_threshold:
                track.last_frame = self._frame
                track.missed = 0
            else:
                track.missed += 1
                if track.missed > cfg.max_missed_frames:
                    track.active = False
        return self.active_tracks()

    def active_tracks(self) -> List[Track]:
        return [t for t in self._tracks.values() if t.active]

    @property
    def all_tracks(self) -> List[Track]:
        return list(self._history)

    def reset(self) -> None:
        self._ema.clear()
        self._tracks.clear()
        self._history.clear()
        self._next_track_id = 0
        self._frame = -1
        self._score_cache.clear()
        self.gate_stats = GateStats()
