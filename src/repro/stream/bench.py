"""Multi-camera streaming benchmark core.

Shared by ``benchmarks/bench_e14_stream.py`` and the ``repro stream``
CLI family: materialize N camera sequences at a configurable motion
density, drive a full-recompute pass and a delta-gated pass over the
same frames, and report frames/sec, gate hit rates, track bit-identity
against the full-recompute oracle, and MOTA-style quality deltas from
:mod:`repro.stream.metrics`.

The identity check is the benchmark's correctness gate: with exact
gating (``motion_threshold == 0``) on the quantized configuration the
gated pass must reproduce the full-recompute tracks *bit for bit* —
faster-but-different is a failed run, not a tradeoff.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.data.scenes import SceneConfig
from repro.data.tasks import TaskDefinition
from repro.stream.metrics import evaluate_stream, metrics_delta
from repro.stream.sequence import FrameState, SceneSequence, SequenceConfig
from repro.stream.tracker import StreamingDetector, Track, TrackerConfig

#: Float GEMM tiling varies with batch shape; gated passes over a float
#: model agree with full recompute to ulps, not bitwise.
SCORE_ATOL = 1e-5

#: Per-camera seed stride (any constant works; primes read well).
CAMERA_SEED_STRIDE = 7907


def materialize_cameras(
    num_cameras: int,
    num_frames: int,
    scene: SceneConfig,
    *,
    motion_rate: float = 0.05,
    birth_rate: float = 0.02,
    death_rate: float = 0.01,
    seed: int = 0,
) -> List[List[FrameState]]:
    """N independent camera feeds, pre-rendered so timing excludes rendering."""
    cameras: List[List[FrameState]] = []
    for camera in range(num_cameras):
        sequence = SceneSequence(
            SequenceConfig(scene=scene, birth_rate=birth_rate,
                           death_rate=death_rate, motion_rate=motion_rate),
            seed=seed + CAMERA_SEED_STRIDE * camera)
        cameras.append(list(sequence.frames(num_frames)))
    return cameras


class _ScriptedFrames:
    """Pre-materialized frames behind the ``SceneSequence.frames`` API."""

    def __init__(self, states: Sequence[FrameState]) -> None:
        self._states = list(states)

    def frames(self, count: int) -> Iterator[FrameState]:
        yield from self._states[:count]


def run_pass(
    model: Any,
    matcher: Any,
    config: TrackerConfig,
    cameras: Sequence[Sequence[FrameState]],
    batch_size: int = 64,
) -> Tuple[List[List[List[Track]]], float, List[StreamingDetector]]:
    """One timed sweep: every camera's frames through its own detector.

    Returns ``(per-camera per-frame track snapshots, elapsed seconds,
    detectors)`` — the detectors expose ``gate_stats`` afterwards.
    """
    detectors = [StreamingDetector(model, matcher, config=config,
                                   batch_size=batch_size)
                 for _ in cameras]
    snapshots: List[List[List[Track]]] = []
    start = perf_counter()
    for detector, states in zip(detectors, cameras):
        camera_snaps: List[List[Track]] = []
        for state in states:
            camera_snaps.append([dataclasses.replace(t)
                                 for t in detector.update(state.scene)])
        snapshots.append(camera_snaps)
    elapsed = perf_counter() - start
    return snapshots, elapsed, detectors


def compare_snapshots(
    reference: Sequence[Sequence[Sequence[Track]]],
    candidate: Sequence[Sequence[Sequence[Track]]],
    exact_scores: bool = True,
    atol: float = SCORE_ATOL,
) -> Optional[str]:
    """First mismatch between two per-camera snapshot sets, or ``None``.

    Structural fields (ids, cells, lifecycle frames, missed counts) must
    always match exactly; scores bitwise under ``exact_scores`` (the
    quantized guarantee) and within ``atol`` otherwise.
    """
    fields = ("track_id", "cell", "first_frame", "last_frame", "active",
              "missed")
    if len(reference) != len(candidate):
        return f"camera count {len(reference)} != {len(candidate)}"
    for cam, (ref_cam, cand_cam) in enumerate(zip(reference, candidate)):
        if len(ref_cam) != len(cand_cam):
            return f"camera {cam}: frame count differs"
        for frame, (ref, cand) in enumerate(zip(ref_cam, cand_cam)):
            ref_sorted = sorted(ref, key=lambda t: t.track_id)
            cand_sorted = sorted(cand, key=lambda t: t.track_id)
            if len(ref_sorted) != len(cand_sorted):
                return (f"camera {cam} frame {frame}: "
                        f"{len(ref_sorted)} vs {len(cand_sorted)} tracks")
            for r, c in zip(ref_sorted, cand_sorted):
                for field in fields:
                    if getattr(r, field) != getattr(c, field):
                        return (f"camera {cam} frame {frame} track "
                                f"{r.track_id}: {field} "
                                f"{getattr(r, field)!r} != "
                                f"{getattr(c, field)!r}")
                if exact_scores:
                    ok = r.score == c.score
                else:
                    ok = abs(float(r.score) - float(c.score)) <= atol
                if not ok:
                    return (f"camera {cam} frame {frame} track "
                            f"{r.track_id}: score {r.score!r} != "
                            f"{c.score!r}")
    return None


def run_stream_bench(
    model: Any,
    matcher: Any,
    task: TaskDefinition,
    *,
    num_cameras: int = 2,
    num_frames: int = 20,
    grid: int = 6,
    cell_size: int = 32,
    motion_rate: float = 0.05,
    object_density: float = 0.4,
    distractor_density: float = 0.15,
    noise_std: float = 0.02,
    birth_rate: float = 0.02,
    death_rate: float = 0.01,
    tracker: TrackerConfig = TrackerConfig(),
    gate: Optional[TrackerConfig] = None,
    seed: int = 0,
    exact_scores: bool = True,
    batch_size: int = 64,
) -> Dict[str, Any]:
    """Full-recompute vs delta-gated sweep over one motion density.

    ``tracker`` carries the EMA/hysteresis knobs; the full pass runs it
    with ``delta_gate=False`` and the gated pass with ``delta_gate=True``
    (or ``gate`` verbatim when provided, e.g. to benchmark carryover).
    Returns one row of results; ``identical``/``mismatch`` report the
    oracle comparison under ``exact_scores``.
    """
    scene = SceneConfig(grid=grid, cell_size=cell_size,
                        object_density=object_density,
                        distractor_density=distractor_density,
                        clutter_density=0.0, noise_std=noise_std)
    cameras = materialize_cameras(
        num_cameras, num_frames, scene, motion_rate=motion_rate,
        birth_rate=birth_rate, death_rate=death_rate, seed=seed)

    full_config = dataclasses.replace(tracker, delta_gate=False)
    gated_config = (gate if gate is not None
                    else dataclasses.replace(tracker, delta_gate=True))

    full_snaps, full_s, _ = run_pass(model, matcher, full_config, cameras,
                                     batch_size=batch_size)
    gated_snaps, gated_s, gated_detectors = run_pass(
        model, matcher, gated_config, cameras, batch_size=batch_size)

    exact_gate = gated_config.motion_threshold == 0.0
    mismatch = compare_snapshots(full_snaps, gated_snaps,
                                 exact_scores=exact_scores and exact_gate)

    skipped = sum(d.gate_stats.skipped for d in gated_detectors)
    recomputed = sum(d.gate_stats.recomputed for d in gated_detectors)
    carried = sum(d.gate_stats.carried for d in gated_detectors)
    total_cells = skipped + recomputed

    quality: Dict[str, float] = {}
    full_metrics = None
    gated_metrics = None
    for states in cameras:
        full_m = evaluate_stream(
            StreamingDetector(model, matcher, config=full_config,
                              batch_size=batch_size),
            _ScriptedFrames(states), task, num_frames=len(states))
        gated_m = evaluate_stream(
            StreamingDetector(model, matcher, config=gated_config,
                              batch_size=batch_size),
            _ScriptedFrames(states), task, num_frames=len(states))
        full_metrics = full_m if full_metrics is None else full_metrics
        gated_metrics = gated_m if gated_metrics is None else gated_metrics
        for key, delta in metrics_delta(full_m, gated_m).items():
            quality[key] = max(quality.get(key, 0.0), delta)

    frames_total = num_cameras * num_frames
    return {
        "motion_rate": motion_rate,
        "cameras": num_cameras,
        "frames": num_frames,
        "grid": grid,
        "full_fps": frames_total / full_s if full_s else float("inf"),
        "gated_fps": frames_total / gated_s if gated_s else float("inf"),
        "speedup": full_s / gated_s if gated_s else float("inf"),
        "hit_rate": skipped / total_cells if total_cells else 0.0,
        "carried": carried,
        "skipped": skipped,
        "recomputed": recomputed,
        "identical": mismatch is None if exact_gate else None,
        "mismatch": mismatch,
        "exact_gate": exact_gate,
        "frame_accuracy": (full_metrics.frame_accuracy
                           if full_metrics else 0.0),
        "gated_frame_accuracy": (gated_metrics.frame_accuracy
                                 if gated_metrics else 0.0),
        "max_quality_delta": max(quality.values()) if quality else 0.0,
        "quality_deltas": quality,
    }
