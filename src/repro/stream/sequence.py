"""Temporal scene sequences.

A :class:`SceneSequence` evolves a population of objects over a grid:
each frame, surviving objects are re-rendered in place with appearance
jitter (sensor noise, sub-pixel shift, brightness), objects die with a
small probability, and new objects are born into free cells.  Ground
truth per frame is the same :class:`~repro.data.ObjectInstance` record
the static pipeline uses, so all detection metrics carry over.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.ontology import (
    AttributeProfile,
    category_of_profile,
    profile_for_category,
    sample_profile,
)
from repro.data.rendering import render_background, render_object
from repro.data.scenes import ObjectInstance, Scene, SceneConfig


@dataclasses.dataclass(frozen=True)
class SequenceConfig:
    """Temporal dynamics on top of a spatial :class:`SceneConfig`.

    ``motion_rate`` is the fraction of live objects re-rendered (with
    fresh appearance jitter) each frame.  At the default ``1.0`` every
    frame re-renders everything — full sensor jitter, the historical
    behavior.  Below ``1.0`` the sequence switches to incremental
    rendering: the background is frozen and unchanged cells repeat
    *bit-identical* pixels across frames — the surveillance-style
    workload the streaming delta gate exploits.
    """

    scene: SceneConfig = SceneConfig()
    birth_rate: float = 0.06      # per free cell, per frame
    death_rate: float = 0.04      # per live object, per frame
    distractor_fraction: float = 0.25  # of births
    motion_rate: float = 1.0      # per live object, per frame

    def __post_init__(self) -> None:
        for name in ("birth_rate", "death_rate", "distractor_fraction",
                     "motion_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclasses.dataclass
class _LiveObject:
    profile: AttributeProfile
    cell: Tuple[int, int]
    born_frame: int
    object_id: int


@dataclasses.dataclass
class FrameState:
    """One rendered frame plus its ground truth."""

    index: int
    scene: Scene
    object_ids: List[int]          # aligned with scene.objects
    births: List[int]              # object ids that appeared this frame
    deaths: List[int]              # object ids that vanished this frame


class SceneSequence:
    """Iterator over frames of an evolving scene."""

    def __init__(self, config: SequenceConfig = SequenceConfig(),
                 seed: int = 0) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._live: Dict[Tuple[int, int], _LiveObject] = {}
        self._next_id = 0
        self._frame = 0
        # incremental-rendering state (motion_rate < 1.0 only)
        self._background: Optional[np.ndarray] = None
        self._windows: Dict[Tuple[int, int], np.ndarray] = {}
        self._populate_initial()

    # ------------------------------------------------------------------
    def _all_cells(self) -> List[Tuple[int, int]]:
        grid = self.config.scene.grid
        return [(r, c) for r in range(grid) for c in range(grid)]

    def _spawn(self, cell: Tuple[int, int]) -> _LiveObject:
        rng = self._rng
        if rng.random() < self.config.distractor_fraction:
            profile = sample_profile(rng)
        else:
            from repro.data.ontology import category_names

            names = category_names()
            profile = profile_for_category(
                names[int(rng.integers(len(names)))], rng)
        obj = _LiveObject(profile=profile, cell=cell,
                          born_frame=self._frame, object_id=self._next_id)
        self._next_id += 1
        return obj

    def _populate_initial(self) -> None:
        density = self.config.scene.object_density + self.config.scene.distractor_density
        for cell in self._all_cells():
            if self._rng.random() < density:
                self._live[cell] = self._spawn(cell)

    # ------------------------------------------------------------------
    def step(self) -> FrameState:
        """Advance one frame: deaths, births, render."""
        rng = self._rng
        cfg = self.config
        deaths: List[int] = []
        for cell in list(self._live):
            if rng.random() < cfg.death_rate:
                deaths.append(self._live.pop(cell).object_id)
                # the vacated cell falls back to the frozen background;
                # a later birth must render fresh pixels, not the old
                # occupant's cached ones
                self._windows.pop(cell, None)
        births: List[int] = []
        for cell in self._all_cells():
            if cell not in self._live and rng.random() < cfg.birth_rate:
                obj = self._spawn(cell)
                self._live[cell] = obj
                births.append(obj.object_id)

        scene = self._render()
        state = FrameState(
            index=self._frame,
            scene=scene,
            object_ids=[self._live[obj.cell].object_id for obj in scene.objects],
            births=births,
            deaths=deaths,
        )
        self._frame += 1
        return state

    def _render(self) -> Scene:
        if self.config.motion_rate >= 1.0:
            return self._render_full()
        return self._render_incremental()

    def _render_incremental(self) -> Scene:
        """Re-render only moving objects; static cells repeat exact pixels.

        The background is rendered once and frozen.  Each live object's
        composited window is cached; it is re-rendered (fresh jitter)
        only when newly born or when the per-frame motion roll fires
        with probability ``motion_rate``.  Everything else — empty
        cells, static objects — is bit-identical frame over frame, so a
        pixel-fingerprint delta gate genuinely hits.
        """
        scfg = self.config.scene
        cell = scfg.cell_size
        if self._background is None:
            self._background = render_background(
                self._rng, size=scfg.image_size, noise_std=scfg.noise_std)
        image = self._background.copy()
        objects: List[ObjectInstance] = []
        for (row, col), live in sorted(self._live.items()):
            x0, y0 = col * cell, row * cell
            window = self._windows.get((row, col))
            if window is None or self._rng.random() < self.config.motion_rate:
                background = self._background[:, y0:y0 + cell, x0:x0 + cell]
                window = render_object(
                    live.profile, rng=self._rng, size=cell,
                    background=background, noise_std=scfg.noise_std)
                self._windows[(row, col)] = window
            image[:, y0:y0 + cell, x0:x0 + cell] = window
            objects.append(ObjectInstance(
                profile=live.profile,
                bbox=(x0, y0, x0 + cell, y0 + cell),
                category=category_of_profile(live.profile),
                cell=(row, col)))
        return Scene(image=image, objects=objects, grid=scfg.grid,
                     cell_size=scfg.cell_size)

    def _render_full(self) -> Scene:
        scfg = self.config.scene
        size = scfg.image_size
        image = render_background(self._rng, size=size, noise_std=scfg.noise_std)
        objects: List[ObjectInstance] = []
        for (row, col), live in sorted(self._live.items()):
            x0, y0 = col * scfg.cell_size, row * scfg.cell_size
            bbox = (x0, y0, x0 + scfg.cell_size, y0 + scfg.cell_size)
            background = image[:, y0:y0 + scfg.cell_size, x0:x0 + scfg.cell_size]
            window = render_object(
                live.profile, rng=self._rng, size=scfg.cell_size,
                background=background, noise_std=scfg.noise_std,
            )
            image[:, y0:y0 + scfg.cell_size, x0:x0 + scfg.cell_size] = window
            objects.append(ObjectInstance(
                profile=live.profile, bbox=bbox,
                category=category_of_profile(live.profile), cell=(row, col),
            ))
        return Scene(image=image, objects=objects, grid=scfg.grid,
                     cell_size=scfg.cell_size)

    def frames(self, count: int) -> Iterator[FrameState]:
        for _ in range(count):
            yield self.step()
