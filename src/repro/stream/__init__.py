"""Streaming detection: the paper's real-time sensing deployment.

iTask's accelerator exists to process continuous sensor streams.  This
package provides the temporal substrate: scene *sequences* in which
objects persist across frames (with appearance jitter, births and
deaths), a streaming detector with per-cell score smoothing and
hysteresis (suppressing single-frame flicker), and streaming metrics —
per-frame accuracy, detection latency in frames, and flicker rate.

Incremental detection (``TrackerConfig.delta_gate``) adds frame-delta
gating and tracker-prior carryover so per-frame cost scales with scene
*change*; :mod:`repro.stream.bench` benchmarks it against the
full-recompute oracle across multi-camera feeds.
"""

from repro.stream.sequence import FrameState, SceneSequence, SequenceConfig
from repro.stream.tracker import (
    GateStats,
    StreamingDetector,
    Track,
    TrackerConfig,
)
from repro.stream.metrics import StreamingMetrics, evaluate_stream, metrics_delta
from repro.stream.bench import compare_snapshots, run_stream_bench

__all__ = [
    "FrameState",
    "SceneSequence",
    "SequenceConfig",
    "GateStats",
    "StreamingDetector",
    "Track",
    "TrackerConfig",
    "StreamingMetrics",
    "evaluate_stream",
    "metrics_delta",
    "compare_snapshots",
    "run_stream_bench",
]
