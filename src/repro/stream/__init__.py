"""Streaming detection: the paper's real-time sensing deployment.

iTask's accelerator exists to process continuous sensor streams.  This
package provides the temporal substrate: scene *sequences* in which
objects persist across frames (with appearance jitter, births and
deaths), a streaming detector with per-cell score smoothing and
hysteresis (suppressing single-frame flicker), and streaming metrics —
per-frame accuracy, detection latency in frames, and flicker rate.
"""

from repro.stream.sequence import FrameState, SceneSequence, SequenceConfig
from repro.stream.tracker import StreamingDetector, Track, TrackerConfig
from repro.stream.metrics import StreamingMetrics, evaluate_stream

__all__ = [
    "FrameState",
    "SceneSequence",
    "SequenceConfig",
    "StreamingDetector",
    "Track",
    "TrackerConfig",
    "StreamingMetrics",
    "evaluate_stream",
]
