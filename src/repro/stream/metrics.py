"""Streaming detection metrics.

Three quantities matter for a real-time task detector:

* **frame accuracy** — per-frame cell-decision accuracy (same metric as
  the static pipeline, averaged over the stream);
* **detection latency** — frames between a relevant object's birth and
  the first frame an active track covers its cell;
* **flicker rate** — decision sign changes per cell per frame, measuring
  temporal stability (what the tracker's hysteresis suppresses).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.tasks import TaskDefinition
from repro.stream.sequence import FrameState, SceneSequence
from repro.stream.tracker import StreamingDetector


@dataclasses.dataclass
class StreamingMetrics:
    frame_accuracy: float
    mean_detection_latency: float   # frames; NaN if nothing detected
    detected_fraction: float        # relevant objects detected while alive
                                    # (detections at/after a recorded death
                                    # are excluded)
    flicker_rate: float             # decision flips / (cells × frames)
    frames: int

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def evaluate_stream(
    detector: StreamingDetector,
    sequence: SceneSequence,
    task: TaskDefinition,
    num_frames: int = 40,
) -> StreamingMetrics:
    """Drive ``detector`` over ``num_frames`` of ``sequence``."""
    correct = 0
    total = 0
    flips = 0
    previous_decisions: Dict[Tuple[int, int], bool] = {}
    birth_frame: Dict[int, int] = {}
    detect_frame: Dict[int, int] = {}
    dead: Set[int] = set()
    relevant_ids: Set[int] = set()

    for state in sequence.frames(num_frames):
        scene = state.scene
        tracks = detector.update(scene)
        fired = {t.cell for t in tracks}

        relevant_cells = {}
        for obj, obj_id in zip(scene.objects, state.object_ids):
            if task.matches(obj.profile):
                relevant_cells[obj.cell] = obj_id
                relevant_ids.add(obj_id)
                birth_frame.setdefault(obj_id, state.index)
        for obj_id in state.deaths:
            dead.add(obj_id)

        for row in range(scene.grid):
            for col in range(scene.grid):
                cell = (row, col)
                decision = cell in fired
                truth = cell in relevant_cells
                correct += int(decision == truth)
                total += 1
                if cell in previous_decisions and previous_decisions[cell] != decision:
                    flips += 1
                previous_decisions[cell] = decision

        for cell, obj_id in relevant_cells.items():
            # "Detected before death": a track covering the cell only
            # counts while the object is still alive.  Sequences that
            # announce a death on (or before) the frame the track first
            # fires — truncation semantics, lagging hysteresis — must
            # not credit the dead object.
            if cell in fired and obj_id not in dead and obj_id not in detect_frame:
                detect_frame[obj_id] = state.index

    latencies = [detect_frame[i] - birth_frame[i]
                 for i in detect_frame if i in birth_frame]
    detected = len(detect_frame)
    return StreamingMetrics(
        frame_accuracy=correct / max(total, 1),
        mean_detection_latency=(float(np.mean(latencies)) if latencies
                                else float("nan")),
        detected_fraction=detected / max(len(relevant_ids), 1),
        flicker_rate=flips / max(total, 1),
        frames=num_frames,
    )


def metrics_delta(reference: StreamingMetrics,
                  candidate: StreamingMetrics) -> Dict[str, float]:
    """Per-metric absolute deltas, NaN-aware.

    ``mean_detection_latency`` is NaN when no relevant object was ever
    detected; two NaNs are the same outcome (delta 0), not a regression.
    This is the quality-comparison the E14 benchmark gates on: exact
    delta gating must report all-zero deltas against full recompute.
    """
    deltas: Dict[str, float] = {}
    ref_dict = reference.as_dict()
    cand_dict = candidate.as_dict()
    for key, ref_value in ref_dict.items():
        cand_value = cand_dict[key]
        both_nan = (isinstance(ref_value, float) and math.isnan(ref_value)
                    and isinstance(cand_value, float)
                    and math.isnan(cand_value))
        deltas[key] = (0.0 if both_nan
                       else abs(float(cand_value) - float(ref_value)))
    return deltas
