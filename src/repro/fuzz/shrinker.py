"""Greedy scenario minimization.

Given a failing :class:`~repro.fuzz.scenario.ScenarioSpec` and a
``still_fails`` predicate, :func:`shrink_spec` repeatedly tries ordered
simplifying transformations — fewer scenes/frames, smaller grids, noise
and ablation knobs back to their defaults, smaller model — keeping each
candidate that still fails.  The loop restarts from the first transform
after every success and stops at a fixpoint (no candidate fails) or when
the predicate-call budget runs out, so it always terminates and is fully
deterministic: candidates are a pure function of the current spec.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List

from repro.fuzz.scenario import ModelSpec, ScenarioSpec

#: Upper bound on ``still_fails`` evaluations per shrink; each
#: evaluation replays the full scenario, so this is the cost knob.
DEFAULT_MAX_CHECKS = 80


def _try(spec: ScenarioSpec, **changes) -> Iterator[ScenarioSpec]:
    """Yield the changed spec when the change is valid and is a change."""
    try:
        candidate = dataclasses.replace(spec, **changes)
    except ValueError:
        return
    if candidate != spec:
        yield candidate


def candidate_shrinks(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Ordered simplification candidates for ``spec``.

    Ordering is big-win-first: workload size (scenes, frames, grids)
    before knob resets, model last — the shrink loop restarts from the
    top after each success, so early entries dominate.
    """
    candidates: List[ScenarioSpec] = []

    def add(**changes) -> None:
        candidates.extend(_try(spec, **changes))

    # -- workload size -------------------------------------------------
    add(num_scenes=1)
    if spec.num_frames > 1:
        for frames in {max(1, spec.num_frames // 2), spec.num_frames - 1}:
            schedule = (spec.grid_schedule[:frames]
                        if spec.grid_schedule else ())
            add(num_frames=frames, grid_schedule=schedule)
    if spec.grid > 0:
        add(grid=spec.grid // 2)
        add(grid=spec.grid - 1)
    if spec.grid_schedule:
        add(grid_schedule=())          # back to a uniform stream
        add(grid_schedule=tuple(min(g, 1) for g in spec.grid_schedule))

    # -- knob resets ---------------------------------------------------
    add(kg_omission=0.0, kg_hallucination=0.0, kg_weight_jitter=0.0)
    add(noise_std=0.0)
    add(distractor_density=0.0, clutter_density=0.0)
    add(early_deaths=False)
    add(birth_rate=0.0, death_rate=0.0)
    add(engine_workers=1, engine_max_batch=1)
    add(smoothing=0.0)
    add(occlusion_rate=0.0, occlusion_strength=0.6)
    add(cascade_margin=0.15, cascade_fraction=1.0, cascade_pinned=False)

    # -- model ---------------------------------------------------------
    defaults = ModelSpec()
    if spec.model != defaults:
        add(model=defaults)
    if spec.model.depth > 1:
        add(model=dataclasses.replace(spec.model, depth=1))
    return candidates


def shrink_spec(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> ScenarioSpec:
    """Smallest spec reachable by greedy simplification that still fails.

    ``spec`` itself is assumed failing and is returned unchanged when no
    simplification preserves the failure.
    """
    checks = 0
    current = spec
    progressed = True
    while progressed and checks < max_checks:
        progressed = False
        for candidate in candidate_shrinks(current):
            if checks >= max_checks:
                break
            checks += 1
            if still_fails(candidate):
                current = candidate
                progressed = True
                break   # restart from the cheapest transforms
    return current
