"""The committed seed corpus and replayable case files.

A *case file* is the fuzzer's unit of exchange: a JSON document holding
a :class:`~repro.fuzz.scenario.ScenarioSpec` plus the divergences (if
any) observed when it was recorded.  The committed seed corpus under
``tests/fuzz_corpus/`` pins one scenario per historical bug — each one
reproduces its bug when the fix is reverted — plus broad-coverage
scenarios the CI smoke step replays on every PR.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.fuzz.scenario import CASE_SCHEMA, ScenarioSpec

PathLike = Union[str, os.PathLike]

#: Environment override for where campaigns drop divergence artifacts.
ARTIFACTS_ENV = "REPRO_FUZZ_DIR"


def default_corpus_dir() -> Path:
    """The committed seed corpus (repo checkout) or a cwd fallback."""
    repo_corpus = Path(__file__).resolve().parents[3] / "tests" / "fuzz_corpus"
    if repo_corpus.is_dir():
        return repo_corpus
    return Path.cwd() / "tests" / "fuzz_corpus"


def default_artifacts_dir() -> Path:
    return Path(os.environ.get(ARTIFACTS_ENV, ".fuzz_artifacts"))


# ----------------------------------------------------------------------
# case files
# ----------------------------------------------------------------------
def load_case(path: PathLike) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        case = json.load(handle)
    schema = case.get("schema")
    if schema != CASE_SCHEMA:
        raise ValueError(
            f"{path}: case schema {schema!r} != supported {CASE_SCHEMA}")
    if "spec" not in case:
        raise ValueError(f"{path}: case file has no 'spec'")
    return case


def spec_from_case(case: Dict[str, Any]) -> ScenarioSpec:
    return ScenarioSpec.from_json_dict(case["spec"])


def save_case(directory: PathLike, result, name: Optional[str] = None,
              note: Optional[str] = None) -> Path:
    """Write a :class:`~repro.fuzz.runner.CaseResult` as a case file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = _slug(name) if name else f"case_seed{result.spec.seed}"
    payload = result.as_dict()
    if note:
        payload["note"] = note
    path = directory / f"{stem}.json"
    counter = 1
    while path.exists():
        path = directory / f"{stem}_{counter}.json"
        counter += 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_") or "case"


# ----------------------------------------------------------------------
# corpus iteration
# ----------------------------------------------------------------------
def iter_corpus(
    directory: Optional[PathLike] = None,
) -> Iterator[Tuple[Path, ScenarioSpec]]:
    """Yield ``(path, spec)`` for every case file in the corpus, sorted."""
    directory = Path(directory) if directory is not None else default_corpus_dir()
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, spec_from_case(load_case(path))


def corpus_paths(directory: Optional[PathLike] = None) -> List[Path]:
    return [path for path, _spec in iter_corpus(directory)]
