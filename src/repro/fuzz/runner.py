"""Scenario execution: materialize a spec, drive every oracle, record cases.

The runner owns the expensive part of fuzzing — building the model pair,
the knowledge-graph matcher, and the workloads a :class:`ScenarioSpec`
describes — and exposes three entry points:

* :func:`run_scenario` — one spec through every oracle, returning a
  :class:`CaseResult` (crashes inside an oracle become ``crash``
  divergences rather than aborting the campaign);
* :func:`run_campaign` — a seeded sweep of generated scenarios, shrink
  loop on failure, replayable JSON case files for every divergence;
* :func:`replay_case` — re-run a recorded case file deterministically.

Model/matcher construction is deterministic in the spec (seeded rngs
only), so caching pairs across scenarios — most scenarios share the
default architecture — changes throughput, never results.
"""

from __future__ import annotations

import dataclasses
import threading
import traceback
from collections import OrderedDict
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

import numpy as np

from repro.data import attribute_head_spec
from repro.data.datasets import num_classes
from repro.data.scenes import Scene
from repro.data.tasks import TaskDefinition, get_task
from repro.detect.pipeline import Detection, TaskDetector
from repro.fuzz.operators import generate_scenario
from repro.fuzz.oracles import ORACLES, Divergence
from repro.fuzz.scenario import CASE_SCHEMA, ModelSpec, ScenarioSpec
from repro.kg.llm import LLMNoiseConfig, SimulatedLLM
from repro.kg.matcher import GraphMatcher
from repro.nn import VisionTransformer, ViTConfig
from repro.quant.vit import QuantizedVisionTransformer, quantize_vit
from repro.stream.metrics import evaluate_stream
from repro.stream.sequence import FrameState
from repro.stream.tracker import StreamingDetector, TrackerConfig


# ----------------------------------------------------------------------
# deterministic model / matcher construction (cached)
# ----------------------------------------------------------------------
def build_model_pair(
    model_spec: ModelSpec,
) -> Tuple[VisionTransformer, QuantizedVisionTransformer]:
    """The float/quantized pair under test, derived only from the spec."""
    config = ViTConfig(
        image_size=model_spec.window,
        patch_size=model_spec.patch_size,
        dim=model_spec.dim,
        depth=model_spec.depth,
        num_heads=model_spec.num_heads,
        mlp_ratio=model_spec.mlp_ratio,
        num_classes=num_classes(),
        attribute_heads=tuple(attribute_head_spec()),
        with_task_head=model_spec.with_task_head,
    )
    model = VisionTransformer(
        config, rng=np.random.default_rng(model_spec.seed * 7333 + 5))
    model.eval()
    rng = np.random.default_rng(model_spec.seed * 9973 + 29)
    calibration = rng.uniform(
        0.0, 1.0,
        (16, 3, model_spec.window, model_spec.window)).astype(np.float32)
    return model, quantize_vit(model, calibration)


class ModelCache:
    """Small LRU over :func:`build_model_pair` keyed by the model spec."""

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[ModelSpec, Tuple]" = OrderedDict()

    def get(self, model_spec: ModelSpec):
        pair = self._entries.get(model_spec)
        if pair is None:
            pair = build_model_pair(model_spec)
            self._entries[model_spec] = pair
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(model_spec)
        return pair


def build_matcher(spec: ScenarioSpec) -> Optional[GraphMatcher]:
    """The task's KG matcher under the spec's extraction-noise model."""
    if not spec.use_kg:
        return None
    noise = LLMNoiseConfig(
        omission_rate=spec.kg_omission,
        hallucination_rate=spec.kg_hallucination,
        weight_jitter=spec.kg_weight_jitter,
        seed=spec.kg_seed,
    )
    kg = SimulatedLLM(noise).generate_for_task(get_task(spec.task))
    return GraphMatcher(kg)


# ----------------------------------------------------------------------
# execution context
# ----------------------------------------------------------------------
class _EngineSession:
    """Minimal ``MissionSession`` stand-in: just the batch entry point.

    ``DetectionEngine`` only calls ``session.detect_batch``; wrapping the
    detector directly spares the fuzzer a full pipeline ``prepare()``
    per scenario.
    """

    def __init__(self, detector: TaskDetector) -> None:
        self._detector = detector

    def detect_batch(self, scenes: Sequence[Scene],
                     stride: Optional[int] = None) -> List[List[Detection]]:
        return self._detector.detect_batch(scenes, stride=stride)


class _CascadeEngineSession:
    """Engine adapter over a cascade router that logs route decisions."""

    def __init__(self, router) -> None:
        self.router = router
        self.decisions: List = []
        self._lock = threading.Lock()

    def detect_batch(self, scenes: Sequence[Scene],
                     stride: Optional[int] = None) -> List[List[Detection]]:
        results, decisions = self.router.detect_batch(scenes, stride=stride)
        with self._lock:
            self.decisions.extend(decisions)
        return results


@dataclasses.dataclass
class ExecutionContext:
    """Everything the oracles need, materialized once per scenario.

    ``stream_cls`` and ``evaluate_fn`` are injection points: the
    regression tests swap in *legacy* (pre-fix) implementations to prove
    each corpus scenario trips its reverted bug.
    """

    spec: ScenarioSpec
    task: TaskDefinition
    scenes: List[Scene]
    frames: List[FrameState]
    float_model: VisionTransformer
    quantized_model: QuantizedVisionTransformer
    matcher: Optional[GraphMatcher]
    stream_cls: type = StreamingDetector
    evaluate_fn: Callable = staticmethod(evaluate_stream)

    def model_for(self, kind: str):
        if kind == "float":
            return self.float_model
        if kind == "quantized":
            return self.quantized_model
        raise ValueError(f"unknown model kind {kind!r}")

    def make_detector(self, kind: str, vectorized: bool = True) -> TaskDetector:
        return TaskDetector(
            self.model_for(kind), matcher=self.matcher,
            score_threshold=self.spec.score_threshold,
            vectorized=vectorized)

    def make_stream(self, kind: str, gated: Optional[bool] = None,
                    motion_threshold: Optional[float] = None,
                    refresh_every: Optional[int] = None) -> StreamingDetector:
        """A streaming detector for ``kind``; gating keywords override
        the spec's own ``delta_gate``/``motion_threshold``/``refresh_every``
        (the incremental_stream oracle forces both gated and ungated
        variants regardless of what the spec enables)."""
        spec = self.spec
        config = TrackerConfig(
            smoothing=spec.smoothing,
            on_threshold=spec.on_threshold,
            off_threshold=spec.off_threshold,
            max_missed_frames=spec.max_missed_frames,
            delta_gate=spec.delta_gate if gated is None else gated,
            motion_threshold=(spec.motion_threshold
                              if motion_threshold is None
                              else motion_threshold),
            refresh_every=(spec.refresh_every if refresh_every is None
                           else refresh_every))
        return self.stream_cls(self.model_for(kind), self.matcher,
                               config=config)

    def run_engine(self, detector: TaskDetector,
                   scenes: Sequence[Scene]) -> List[List[Detection]]:
        """Scenes through a real micro-batching engine over ``detector``."""
        from repro.serve.engine import DetectionEngine, EngineConfig

        config = EngineConfig(max_batch=self.spec.engine_max_batch,
                              workers=self.spec.engine_workers)
        with DetectionEngine(_EngineSession(detector), config=config) as engine:
            return engine.detect_many(scenes)

    def run_sharded_engine(self, detector: TaskDetector,
                           scenes: Sequence[Scene],
                           num_shards: int = 2) -> List[List[Detection]]:
        """Scenes through a real multi-process :class:`ShardRouter`.

        Every shard serves the same detector (the factory closes over
        it; the ``fork`` start method copies it into each worker), and
        scenes alternate between ``num_shards`` synthetic mission keys
        chosen to land on distinct shards — so the run genuinely
        crosses the process boundary on every shard, not just one.
        Results are gathered in submission order.
        """
        from repro.serve.engine import EngineConfig
        from repro.serve.shard import (
            ShardConfig, ShardRouter, shard_for_mission,
        )

        def mission_for_shard(target: int) -> str:
            index = 0
            while True:
                name = f"fuzz-mission-{index}"
                if shard_for_mission(name, num_shards) == target:
                    return name
                index += 1

        missions = [mission_for_shard(i) for i in range(num_shards)]
        config = ShardConfig(
            num_shards=num_shards,
            engine=EngineConfig(max_batch=self.spec.engine_max_batch,
                                workers=self.spec.engine_workers),
            start_method="fork",
        )
        with ShardRouter(lambda mission: _EngineSession(detector),
                         config) as router:
            futures = [
                router.submit(scene, missions[index % num_shards])
                for index, scene in enumerate(scenes)
            ]
            return [future.result() for future in futures]

    # -- pipeline / cascade construction --------------------------------
    def llm_noise(self) -> "LLMNoiseConfig":
        return LLMNoiseConfig(
            omission_rate=self.spec.kg_omission,
            hallucination_rate=self.spec.kg_hallucination,
            weight_jitter=self.spec.kg_weight_jitter,
            seed=self.spec.kg_seed,
        )

    def task_spec(self):
        from repro.core.taskspec import TaskSpec

        return TaskSpec.from_definition(self.task)

    def make_pipeline(self):
        """A real ``ITaskPipeline`` serving the spec's quantized model.

        Built exactly like :func:`build_matcher` builds the direct
        matcher — same task text, same (fresh) noisy LLM — so the
        pipeline path and the direct detector path must agree bit for
        bit on the quantized configuration.
        """
        from repro.core.configurations import QuantizedConfiguration
        from repro.core.pipeline import ITaskPipeline

        configuration = QuantizedConfiguration(
            name="fuzz-quantized", kind="quantized",
            quantized=self.quantized_model)
        return ITaskPipeline(
            configuration,
            llm=SimulatedLLM(self.llm_noise()),
            score_threshold=self.spec.score_threshold,
            use_kg=self.spec.use_kg,
        )

    def specialist_configuration(self):
        """The float model packaged as this mission's specialist."""
        from repro.core.configurations import TaskSpecificConfiguration

        return TaskSpecificConfiguration(
            name=f"fuzz-specialist-{self.spec.task}", kind="task_specific",
            student=self.float_model, task_name=self.spec.task)

    def replacement_graph(self, reference) -> "KnowledgeGraph":
        """A different-content graph whose ``version`` EQUALS the reference's.

        The graph-replacement session-invalidation check needs the
        adversarial case a version-only mission fingerprint cannot see:
        the registered graph is swapped for one with *identical edit
        count* but different content.  Content comes from the next
        task's noise-free graph (dissimilar enough to flip specialist
        selection); the version is matched by truncating to at most
        ``reference.version`` constraints and then re-adding an existing
        constraint — a merge that changes nothing but bumps the counter.
        """
        from repro.data.tasks import TASK_LIBRARY
        from repro.kg.schema import KnowledgeGraph

        names = sorted(TASK_LIBRARY)
        other = names[(names.index(self.spec.task) + 1) % len(names)]
        payload = SimulatedLLM().generate_for_task(get_task(other)).to_dict()
        payload["constraints"] = payload["constraints"][:reference.version]
        replacement = KnowledgeGraph.from_dict(payload)
        while (replacement.version < reference.version
               and replacement.constraints):
            replacement.add_constraint(replacement.constraints[0])
        return replacement

    def run_cascade_engine(self, router, scenes: Sequence[Scene]):
        """Scenes through the engine over a cascade router.

        Returns ``(results, routes)``: per-scene detections in
        submission order plus the multiset of routes the engine's
        workers recorded (batch composition — hence decision *order* —
        depends on worker interleaving; the routes themselves do not).
        """
        from repro.serve.engine import DetectionEngine, EngineConfig

        session = _CascadeEngineSession(router)
        config = EngineConfig(max_batch=self.spec.engine_max_batch,
                              workers=self.spec.engine_workers)
        with DetectionEngine(session, config=config) as engine:
            results = engine.detect_many(scenes)
        return results, [decision.route for decision in session.decisions]


def build_context(spec: ScenarioSpec,
                  cache: Optional[ModelCache] = None) -> ExecutionContext:
    float_model, quantized_model = (
        cache.get(spec.model) if cache is not None
        else build_model_pair(spec.model))
    return ExecutionContext(
        spec=spec,
        task=get_task(spec.task),
        scenes=spec.build_scenes(),
        frames=spec.build_frames(),
        float_model=float_model,
        quantized_model=quantized_model,
        matcher=build_matcher(spec),
    )


# ----------------------------------------------------------------------
# scenario execution
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CaseResult:
    """Outcome of one scenario across all oracles."""

    spec: ScenarioSpec
    divergences: List[Divergence]
    oracles_run: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": CASE_SCHEMA,
            "spec": self.spec.to_json_dict(),
            "oracles": list(self.oracles_run),
            "divergences": [d.as_dict() for d in self.divergences],
        }


def run_scenario(
    spec: ScenarioSpec,
    context: Optional[ExecutionContext] = None,
    oracle_names: Optional[Iterable[str]] = None,
    cache: Optional[ModelCache] = None,
) -> CaseResult:
    """One spec through the selected oracles (default: all of them).

    An exception inside workload construction or an oracle is itself a
    finding — the kind of crash the zero-cell batch bug produced — so it
    is recorded as a ``crash`` divergence instead of propagating.
    """
    selected = [(name, fn) for name, fn in ORACLES
                if oracle_names is None or name in set(oracle_names)]
    names = tuple(name for name, _ in selected)
    try:
        ctx = context if context is not None else build_context(spec, cache)
    except Exception as error:  # noqa: BLE001 — any crash is a finding
        return CaseResult(spec, [Divergence(
            "build", f"crash: {type(error).__name__}: {error}",
            {"traceback": traceback.format_exc()})], names)
    divergences: List[Divergence] = []
    for name, oracle in selected:
        try:
            divergences.extend(oracle(spec, ctx))
        except Exception as error:  # noqa: BLE001
            divergences.append(Divergence(
                name, f"crash: {type(error).__name__}: {error}",
                {"traceback": traceback.format_exc()}))
    return CaseResult(spec, divergences, names)


def failing_oracles(result: CaseResult) -> Tuple[str, ...]:
    return tuple(sorted({d.oracle for d in result.divergences}))


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CampaignReport:
    """Summary of one ``repro fuzz run`` sweep."""

    seed: int
    budget: int
    executed: int
    failures: List[CaseResult]
    case_paths: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures


def run_campaign(
    seed: int,
    budget: int,
    artifacts_dir: Optional[str] = None,
    shrink: bool = True,
    log: Callable[[str], None] = lambda message: None,
) -> CampaignReport:
    """Generate and execute ``budget`` scenarios from ``seed`` upward.

    Every failing scenario is (optionally) shrunk to a minimal spec that
    still fails the same oracles, then written to ``artifacts_dir`` as a
    replayable JSON case file.
    """
    from repro.fuzz.corpus import save_case
    from repro.fuzz.shrinker import shrink_spec

    cache = ModelCache()
    failures: List[CaseResult] = []
    case_paths: List[str] = []
    for offset in range(budget):
        scenario_seed = seed + offset
        spec = generate_scenario(scenario_seed)
        result = run_scenario(spec, cache=cache)
        if result.ok:
            if (offset + 1) % 50 == 0:
                log(f"[fuzz] {offset + 1}/{budget} scenarios, "
                    f"{len(failures)} divergent")
            continue
        oracles = failing_oracles(result)
        log(f"[fuzz] seed {scenario_seed}: divergence in {', '.join(oracles)}")
        if shrink:
            def still_fails(candidate: ScenarioSpec) -> bool:
                candidate_result = run_scenario(candidate, cache=cache)
                return bool(set(failing_oracles(candidate_result)) & set(oracles))

            shrunk = shrink_spec(spec, still_fails)
            if shrunk != spec:
                log(f"[fuzz] seed {scenario_seed}: shrunk "
                    f"{_spec_size(spec)} -> {_spec_size(shrunk)}")
                result = run_scenario(shrunk, cache=cache)
                if result.ok:  # flaky shrink target: keep the original
                    result = run_scenario(spec, cache=cache)
        failures.append(result)
        if artifacts_dir is not None:
            path = save_case(artifacts_dir, result,
                             name=f"case_seed{scenario_seed}")
            case_paths.append(str(path))
            log(f"[fuzz] wrote {path}")
    return CampaignReport(seed=seed, budget=budget, executed=budget,
                          failures=failures, case_paths=case_paths)


def _spec_size(spec: ScenarioSpec) -> int:
    """Rough workload size used only for shrink-progress logging."""
    grids = spec.frame_grids
    return (spec.num_scenes * max(spec.grid, 1) ** 2
            + sum(max(g, 1) ** 2 for g in grids))


def replay_case(case: Dict[str, Any],
                cache: Optional[ModelCache] = None) -> CaseResult:
    """Re-run a recorded case file's spec through its recorded oracles."""
    spec = ScenarioSpec.from_json_dict(case["spec"])
    oracle_names = case.get("oracles")
    return run_scenario(spec, oracle_names=oracle_names, cache=cache)
