"""Compositional scenario operators (in the torchfuzz operator mold).

Each operator is one orthogonal transformation of a
:class:`~repro.fuzz.scenario.ScenarioSpec` — pick a mission, crank the
clutter, degrade the knowledge graph, schedule degenerate grids, flip an
ablation switch.  :func:`generate_scenario` composes a seeded random
subset of them on top of the default spec, so scenario diversity comes
from operator *composition* rather than one monolithic sampler, and a
new scenario dimension is a new operator, not a rewrite.

Determinism contract: ``generate_scenario(seed)`` depends only on
``seed`` (all randomness flows through one ``np.random.default_rng``),
so the same seed always yields the same spec — the property the corpus
and ``repro fuzz replay`` rely on.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.data.tasks import TASK_LIBRARY
from repro.fuzz.scenario import ModelSpec, ScenarioSpec


class ScenarioOperator:
    """Base operator: one attribute-space transformation of a spec."""

    name = "base"

    def can_apply(self, spec: ScenarioSpec) -> bool:
        """Whether this operator is meaningful for ``spec``."""
        return True

    def apply(self, spec: ScenarioSpec,
              rng: np.random.Generator) -> ScenarioSpec:
        raise NotImplementedError

    def _stamp(self, spec: ScenarioSpec, **changes) -> ScenarioSpec:
        """Apply field changes and record this operator's provenance."""
        return dataclasses.replace(spec, ops=spec.ops + (self.name,),
                                   **changes)


class TaskOperator(ScenarioOperator):
    """Pick the mission whose predicate the scenario detects."""

    name = "task"

    def apply(self, spec, rng):
        names = sorted(TASK_LIBRARY)
        return self._stamp(spec, task=names[int(rng.integers(len(names)))])


class GridOperator(ScenarioOperator):
    """Grid size, weighted toward small grids and the degenerate 0/1."""

    name = "grid"

    def apply(self, spec, rng):
        grid = int(rng.choice([0, 1, 2, 3, 4],
                              p=[0.15, 0.2, 0.3, 0.2, 0.15]))
        return self._stamp(spec, grid=grid)


class BudgetOperator(ScenarioOperator):
    """How much workload the scenario carries (scenes, frames)."""

    name = "budget"

    def apply(self, spec, rng):
        num_frames = int(rng.integers(2, 7))
        schedule = spec.grid_schedule
        if schedule:
            schedule = tuple(
                schedule[i % len(schedule)] for i in range(num_frames))
        return self._stamp(spec, num_scenes=int(rng.integers(1, 5)),
                           num_frames=num_frames, grid_schedule=schedule)


class SceneMixOperator(ScenarioOperator):
    """Cell occupancy mix: objects vs distractors vs clutter vs empty."""

    name = "scene_mix"

    def apply(self, spec, rng):
        fractions = rng.dirichlet(np.ones(4))
        # floor at 4 decimals so the three occupied fractions can never
        # round their sum above 1 (SceneConfig validates the total)
        object_d, distractor_d, clutter_d = (
            np.floor(fractions[:3] * 1e4) / 1e4)
        return self._stamp(
            spec,
            object_density=float(object_d),
            distractor_density=float(distractor_d),
            clutter_density=float(clutter_d))


class ClutterOperator(ScenarioOperator):
    """Occlusion/clutter stress: most non-object cells become clutter."""

    name = "clutter"

    def apply(self, spec, rng):
        headroom = 1.0 - spec.object_density - spec.distractor_density
        # floor, not round: the total must stay <= 1 after quantizing
        clutter = float(np.floor(
            rng.uniform(0.5, 1.0) * headroom * 1e4) / 1e4)
        return self._stamp(spec, clutter_density=max(clutter, 0.0))


class NoiseOperator(ScenarioOperator):
    """Sensor-noise level, from clean to heavily degraded."""

    name = "noise"

    def apply(self, spec, rng):
        return self._stamp(
            spec, noise_std=float(rng.choice([0.0, 0.02, 0.08, 0.2])))


class KGNoiseOperator(ScenarioOperator):
    """Degrade the simulated LLM's graph extraction."""

    name = "kg_noise"

    def can_apply(self, spec):
        return spec.use_kg

    def apply(self, spec, rng):
        return self._stamp(
            spec,
            kg_omission=round(float(rng.uniform(0.0, 0.5)), 4),
            kg_hallucination=round(float(rng.uniform(0.0, 0.5)), 4),
            kg_weight_jitter=round(float(rng.uniform(0.0, 0.5)), 4),
            kg_seed=int(rng.integers(0, 8)))


class AblationOperator(ScenarioOperator):
    """The paper's ablation switches: KG off, task head baked in."""

    name = "ablation"

    def apply(self, spec, rng):
        use_kg = bool(rng.random() < 0.5)
        with_task_head = bool(rng.random() < 0.5)
        return self._stamp(
            spec, use_kg=use_kg,
            model=dataclasses.replace(spec.model,
                                      with_task_head=with_task_head))


class ModelOperator(ScenarioOperator):
    """Architecture of the float/quantized pair under test."""

    name = "model"

    def apply(self, spec, rng):
        dim = int(rng.choice([16, 32]))
        heads = int(rng.choice([2, 4]))
        if dim % heads != 0:
            heads = 2
        model = dataclasses.replace(
            spec.model, dim=dim, num_heads=heads,
            depth=int(rng.integers(1, 3)), seed=int(rng.integers(0, 2)))
        return self._stamp(spec, model=model)


class ThresholdOperator(ScenarioOperator):
    """Detection score threshold, from keep-everything to near-nothing."""

    name = "threshold"

    def apply(self, spec, rng):
        return self._stamp(spec, score_threshold=float(
            rng.choice([0.0, 0.2, 0.35, 0.6, 0.9])))


class TrackerOperator(ScenarioOperator):
    """Temporal smoothing and hysteresis knobs (valid by construction)."""

    name = "tracker"

    def apply(self, spec, rng):
        on = round(float(rng.uniform(0.05, 0.8)), 4)
        off = round(float(rng.uniform(0.0, on)), 4)
        return self._stamp(
            spec, smoothing=round(float(rng.uniform(0.0, 0.9)), 4),
            on_threshold=on, off_threshold=off,
            max_missed_frames=int(rng.integers(0, 5)))


class StreamDynamicsOperator(ScenarioOperator):
    """Birth/death rates, including the extremes."""

    name = "stream_dynamics"

    def apply(self, spec, rng):
        return self._stamp(
            spec, birth_rate=float(rng.choice([0.0, 0.06, 0.3, 1.0])),
            death_rate=float(rng.choice([0.0, 0.04, 0.3, 1.0])))


class GridScheduleOperator(ScenarioOperator):
    """Per-frame grid sizes: shrinking, growing, and empty frames.

    This is the scenario family that leaves grid cells *unobserved*
    between frames — the ground that stale-EMA track aging and the
    zero-cell batch path failed on.
    """

    name = "grid_schedule"

    def apply(self, spec, rng):
        schedule = tuple(
            int(g) for g in rng.choice(
                [0, 1, 2, 3], size=spec.num_frames,
                p=[0.25, 0.25, 0.3, 0.2]))
        return self._stamp(spec, grid_schedule=schedule)


class EarlyDeathOperator(ScenarioOperator):
    """Deaths announced on the last visible frame (truncation semantics)."""

    name = "early_deaths"

    def apply(self, spec, rng):
        return self._stamp(spec, early_deaths=True)


class EngineOperator(ScenarioOperator):
    """Micro-batching engine shape (batch size, worker count)."""

    name = "engine"

    def apply(self, spec, rng):
        return self._stamp(spec,
                           engine_max_batch=int(rng.integers(1, 6)),
                           engine_workers=int(rng.integers(1, 3)))


class OcclusionOperator(ScenarioOperator):
    """Partially mask object cells (pixels only; truth intact).

    Occlusion pushes window scores toward the decision threshold — the
    regime where the cascade's margin signal and the tolerant float
    comparison both earn their keep.
    """

    name = "occlusion"

    def apply(self, spec, rng):
        return self._stamp(
            spec,
            occlusion_rate=round(float(rng.uniform(0.2, 0.9)), 4),
            occlusion_strength=float(rng.choice([0.3, 0.6, 0.9])))


class CascadeOperator(ScenarioOperator):
    """Cascade ablation switches: margin, budget, fingerprint pinning.

    Exercises every routing regime the ``cascade_routing`` oracle
    checks: margin-only escalation (tight and loose thresholds), a
    binding escalation budget that forces shedding, and the pinned
    fast-path bypass.
    """

    name = "cascade"

    def apply(self, spec, rng):
        return self._stamp(
            spec,
            cascade_margin=float(rng.choice([0.0, 0.05, 0.15, 0.4, 1.0])),
            cascade_fraction=float(rng.choice([0.0, 0.25, 0.5, 1.0])),
            cascade_pinned=bool(rng.random() < 0.3))


class DeltaGateOperator(ScenarioOperator):
    """Turn on incremental detection (frame-delta gating).

    Sampled alongside a periodic full refresh and, occasionally, the
    approximate tracker-prior carryover — the regime where the
    ``incremental_stream`` oracle's exact-vs-gated comparison and its
    ``refresh_every=1`` degeneracy check both bite.
    """

    name = "delta_gate"

    def apply(self, spec, rng):
        return self._stamp(
            spec, delta_gate=True,
            refresh_every=int(rng.choice([0, 1, 2, 4, 8])),
            motion_threshold=float(rng.choice(
                [0.0, 0.0, 0.0, 0.01, 0.05])))


class MotionDensityOperator(ScenarioOperator):
    """Freeze most of the scene: incremental rendering below 100% motion.

    ``motion_rate=0.0`` is the fully-static extreme (every cell repeats
    bit-identical pixels after birth); small rates model surveillance
    feeds where the delta gate should hit on most cells.
    """

    name = "motion_density"

    def apply(self, spec, rng):
        return self._stamp(
            spec, motion_rate=float(rng.choice([0.0, 0.1, 0.25, 0.5])))


class MultiCameraOperator(ScenarioOperator):
    """Replay the scenario over several independent camera feeds."""

    name = "multi_camera"

    def apply(self, spec, rng):
        return self._stamp(spec, num_cameras=int(rng.integers(2, 5)))


#: Always applied, in order: every scenario needs a mission, a budget,
#: and a grid before the optional stressors compose on top.
BASE_OPERATORS: List[ScenarioOperator] = [
    TaskOperator(), BudgetOperator(), GridOperator(),
]

#: Optional stressors, each applied independently with probability
#: :data:`OPTIONAL_RATE` in rng-shuffled order.
OPTIONAL_OPERATORS: List[ScenarioOperator] = [
    SceneMixOperator(), ClutterOperator(), NoiseOperator(),
    KGNoiseOperator(), AblationOperator(), ModelOperator(),
    ThresholdOperator(), TrackerOperator(), StreamDynamicsOperator(),
    GridScheduleOperator(), EarlyDeathOperator(), EngineOperator(),
    OcclusionOperator(), CascadeOperator(), DeltaGateOperator(),
    MotionDensityOperator(), MultiCameraOperator(),
]

OPTIONAL_RATE = 0.4


def all_operators() -> List[ScenarioOperator]:
    return list(BASE_OPERATORS) + list(OPTIONAL_OPERATORS)


def generate_scenario(seed: int) -> ScenarioSpec:
    """Compose one deterministic scenario from ``seed``.

    The same seed always returns the same spec: all randomness flows
    through a single generator seeded here, operator order is fixed for
    the base set and rng-shuffled (hence reproducible) for the optional
    set.
    """
    rng = np.random.default_rng(seed)
    spec = ScenarioSpec(seed=int(seed))
    for operator in BASE_OPERATORS:
        spec = operator.apply(spec, rng)
    order = rng.permutation(len(OPTIONAL_OPERATORS))
    for index in order:
        operator = OPTIONAL_OPERATORS[int(index)]
        roll = rng.random()
        if roll < OPTIONAL_RATE and operator.can_apply(spec):
            spec = operator.apply(spec, rng)
    return spec
