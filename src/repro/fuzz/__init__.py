"""Differential scenario fuzzer (``repro fuzz``).

Compositional operators generate seeded, reproducible mission/scene
scenarios; differential oracles run each one across the float,
quantized, batched, engine, and streaming implementations of the same
detection math and record any disagreement as a replayable JSON case;
a shrink loop minimizes failures and a committed seed corpus pins one
scenario per historical bug.
"""

from repro.fuzz.corpus import (
    default_artifacts_dir,
    default_corpus_dir,
    iter_corpus,
    load_case,
    save_case,
    spec_from_case,
)
from repro.fuzz.operators import all_operators, generate_scenario
from repro.fuzz.oracles import ORACLES, Divergence
from repro.fuzz.runner import (
    CampaignReport,
    CaseResult,
    ExecutionContext,
    ModelCache,
    build_context,
    replay_case,
    run_campaign,
    run_scenario,
)
from repro.fuzz.scenario import ModelSpec, ScenarioSpec, ScriptedSequence
from repro.fuzz.shrinker import candidate_shrinks, shrink_spec

__all__ = [
    "ORACLES",
    "CampaignReport",
    "CaseResult",
    "Divergence",
    "ExecutionContext",
    "ModelCache",
    "ModelSpec",
    "ScenarioSpec",
    "ScriptedSequence",
    "all_operators",
    "build_context",
    "candidate_shrinks",
    "default_artifacts_dir",
    "default_corpus_dir",
    "generate_scenario",
    "iter_corpus",
    "load_case",
    "replay_case",
    "run_campaign",
    "run_scenario",
    "save_case",
    "shrink_spec",
    "spec_from_case",
]
