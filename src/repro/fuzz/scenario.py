"""Scenario specifications: the unit the fuzzer generates, runs, shrinks.

A :class:`ScenarioSpec` is a fully-serializable description of one
differential test case: which mission, what model architecture, how the
scenes look (grid size — including degenerate empty and one-cell grids —
densities, clutter, sensor noise), how the knowledge-graph extraction is
perturbed, how the frame stream evolves (births/deaths, per-frame grid
schedule, early death announcements), and the tracker/engine knobs.

Everything is derived deterministically from integers and floats held in
the spec, so the same spec always replays the same scenario — the
property the ``repro fuzz replay`` CLI and the committed seed corpus
stand on.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.data.scenes import Scene, SceneConfig, SceneGenerator
from repro.stream.sequence import FrameState, SceneSequence, SequenceConfig

CASE_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """Architecture of the model pair (float + quantized) under test."""

    dim: int = 32
    depth: int = 1
    num_heads: int = 2
    mlp_ratio: float = 2.0
    window: int = 16          # cell size == model input size
    patch_size: int = 8
    with_task_head: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if self.window % self.patch_size != 0:
            raise ValueError("window must be divisible by patch_size")


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One composed fuzz scenario (see module docstring)."""

    seed: int = 0
    task: str = "roadside_hazards"
    model: ModelSpec = ModelSpec()

    # -- static differential workload -----------------------------------
    num_scenes: int = 2
    grid: int = 2
    object_density: float = 0.45
    distractor_density: float = 0.2
    clutter_density: float = 0.15
    noise_std: float = 0.02
    score_threshold: float = 0.35

    # -- knowledge-graph path --------------------------------------------
    use_kg: bool = True
    kg_omission: float = 0.0
    kg_hallucination: float = 0.0
    kg_weight_jitter: float = 0.0
    kg_seed: int = 0

    # -- streaming workload ------------------------------------------------
    num_frames: int = 4
    grid_schedule: Tuple[int, ...] = ()   # per-frame grids; () = uniform grid
    birth_rate: float = 0.06
    death_rate: float = 0.04
    early_deaths: bool = False  # announce deaths on the last visible frame
    smoothing: float = 0.6
    on_threshold: float = 0.4
    off_threshold: float = 0.25
    max_missed_frames: int = 3

    # -- incremental streaming ---------------------------------------------
    # ``delta_gate`` turns on frame-delta gating in the streaming
    # detector; ``motion_rate`` < 1 switches the sequence to incremental
    # rendering (static cells repeat bit-identical pixels);
    # ``motion_threshold``/``refresh_every`` are the tracker-prior
    # carryover knobs; ``num_cameras`` > 1 replays the scenario over
    # independent per-camera sequences.
    delta_gate: bool = False
    motion_rate: float = 1.0
    motion_threshold: float = 0.0
    refresh_every: int = 0
    num_cameras: int = 1

    # -- engine knobs ------------------------------------------------------
    engine_max_batch: int = 4
    engine_workers: int = 1

    # -- occlusion nuisance ------------------------------------------------
    # Each object cell is partially masked with probability
    # ``occlusion_rate`` (a band dimmed by ``occlusion_strength``);
    # ground truth is untouched — occlusion perturbs pixels only.
    occlusion_rate: float = 0.0
    occlusion_strength: float = 0.6

    # -- cascade routing knobs ---------------------------------------------
    cascade_margin: float = 0.15      # escalate below this margin
    cascade_fraction: float = 1.0     # escalation budget (>=1 unlimited)
    cascade_pinned: bool = False      # pin the mission to its specialist

    # provenance: operator names that composed this spec
    ops: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.num_scenes < 1 or self.num_frames < 1:
            raise ValueError("num_scenes and num_frames must be >= 1")
        if self.grid < 0 or any(g < 0 for g in self.grid_schedule):
            raise ValueError("grid sizes must be >= 0")
        if self.grid_schedule and len(self.grid_schedule) != self.num_frames:
            raise ValueError("grid_schedule length must equal num_frames")
        total = (self.object_density + self.distractor_density
                 + self.clutter_density)
        if total > 1.0 + 1e-9:
            raise ValueError(f"cell densities sum to {total} > 1")
        if not 0.0 <= self.off_threshold <= self.on_threshold <= 1.0:
            raise ValueError("need 0 <= off_threshold <= on_threshold <= 1")
        if not 0.0 <= self.smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        if not 0.0 <= self.occlusion_rate <= 1.0:
            raise ValueError("occlusion_rate must be in [0, 1]")
        if not 0.0 <= self.occlusion_strength <= 1.0:
            raise ValueError("occlusion_strength must be in [0, 1]")
        if self.cascade_margin < 0.0:
            raise ValueError("cascade_margin must be >= 0")
        if self.cascade_fraction < 0.0:
            raise ValueError("cascade_fraction must be >= 0")
        if not 0.0 <= self.motion_rate <= 1.0:
            raise ValueError("motion_rate must be in [0, 1]")
        if self.motion_threshold < 0.0:
            raise ValueError("motion_threshold must be >= 0")
        if self.refresh_every < 0:
            raise ValueError("refresh_every must be >= 0")
        if self.num_cameras < 1:
            raise ValueError("num_cameras must be >= 1")

    # ------------------------------------------------------------------
    @property
    def frame_grids(self) -> Tuple[int, ...]:
        """Per-frame grid sizes (the uniform default or the schedule)."""
        if self.grid_schedule:
            return self.grid_schedule
        return (self.grid,) * self.num_frames

    def scene_config(self, grid: int) -> SceneConfig:
        return SceneConfig(
            grid=grid, cell_size=self.model.window,
            object_density=self.object_density,
            distractor_density=self.distractor_density,
            clutter_density=self.clutter_density,
            noise_std=self.noise_std,
        )

    # -- workload materialization ----------------------------------------
    def build_scenes(self) -> List[Scene]:
        """The static differential workload: ``num_scenes`` seeded scenes."""
        generator = SceneGenerator(self.scene_config(self.grid),
                                   seed=self.seed * 7919 + 11)
        scenes = generator.generate_batch(self.num_scenes)
        if self.occlusion_rate > 0.0:
            rng = np.random.default_rng(self.seed * 104729 + 41)
            for scene in scenes:
                apply_occlusion(scene, rng, self.occlusion_rate,
                                self.occlusion_strength)
        return scenes

    def build_frames(self) -> List[FrameState]:
        """The streaming workload: ``num_frames`` ground-truthed frames.

        A uniform grid uses the temporal :class:`SceneSequence` (objects
        persist, birth/death dynamics apply).  A varying
        ``grid_schedule`` renders each frame independently — cells of a
        shrunken frame go *unobserved*, the scenario class that trips
        stale-track aging — with every previous frame's objects reported
        dead (nothing persists across independent frames).
        """
        return self.build_camera_frames(0)

    def build_camera_frames(self, camera: int = 0) -> List[FrameState]:
        """One camera's frames; camera 0 is :meth:`build_frames` exactly.

        Cameras are independent feeds of the same scenario: identical
        dynamics, disjoint seed streams.  Keeping camera 0 on the
        original seed derivation preserves every committed corpus
        case's replay bit-for-bit.
        """
        if not 0 <= camera < self.num_cameras:
            raise ValueError(f"camera must be in [0, {self.num_cameras})")
        offset = 7907 * camera
        grids = self.frame_grids
        if len(set(grids)) == 1:
            sequence = SceneSequence(
                SequenceConfig(scene=self.scene_config(grids[0]),
                               birth_rate=self.birth_rate,
                               death_rate=self.death_rate,
                               motion_rate=self.motion_rate),
                seed=self.seed * 6151 + 13 + offset)
            states = list(sequence.frames(self.num_frames))
        else:
            states = []
            next_id = 0
            previous_ids: List[int] = []
            for index, grid in enumerate(grids):
                scene = SceneGenerator(
                    self.scene_config(grid),
                    seed=self.seed * 6151 + 17 * index + 13 + offset,
                ).generate()
                ids = list(range(next_id, next_id + len(scene.objects)))
                next_id += len(scene.objects)
                states.append(FrameState(
                    index=index, scene=scene, object_ids=ids,
                    births=list(ids), deaths=previous_ids))
                previous_ids = ids
        if self.early_deaths:
            states = shift_deaths_early(states)
        if self.occlusion_rate > 0.0:
            rng = np.random.default_rng(self.seed * 104729 + 57 + offset)
            for state in states:
                apply_occlusion(state.scene, rng, self.occlusion_rate,
                                self.occlusion_strength)
        return states

    # -- serialization -----------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["grid_schedule"] = list(self.grid_schedule)
        payload["ops"] = list(self.ops)
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        data = dict(payload)
        model = data.pop("model", {})
        data["model"] = ModelSpec(**model)
        data["grid_schedule"] = tuple(data.get("grid_schedule", ()))
        data["ops"] = tuple(data.get("ops", ()))
        return cls(**data)


def apply_occlusion(scene: Scene, rng: np.random.Generator,
                    rate: float, strength: float) -> None:
    """Partially mask object cells in place (pixels only, truth intact).

    Each object's cell is occluded with probability ``rate``: a
    horizontal band one third of the cell tall, at an rng-chosen offset,
    is dimmed by ``strength``.  The rng is consumed once per object
    (plus once per occluded cell for the offset), so a fixed generator
    makes the masking deterministic per scene regardless of outcome.
    """
    if rate <= 0.0 or strength <= 0.0:
        return
    size = scene.cell_size
    band = max(1, size // 3)
    for obj in scene.objects:
        if rng.random() >= rate:
            continue
        row, col = obj.cell
        y0 = row * size + int(rng.integers(0, size - band + 1))
        x0 = col * size
        scene.image[:, y0:y0 + band, x0:x0 + size] *= (1.0 - strength)


def shift_deaths_early(states: Sequence[FrameState]) -> List[FrameState]:
    """Announce each death one frame early (truncation semantics).

    A producer that reports an object's death on its *last visible*
    frame — instead of the frame it is first absent — is a legitimate
    upstream convention; ``evaluate_stream`` must not credit a detection
    that first lands on or after the announcement.
    """
    states = list(states)
    shifted: List[FrameState] = []
    for k, state in enumerate(states):
        deaths = list(states[k + 1].deaths) if k + 1 < len(states) else []
        if k == 0:
            # Frame 0's own deaths have nowhere earlier to go.
            deaths = list(state.deaths) + deaths
        shifted.append(FrameState(
            index=state.index, scene=state.scene,
            object_ids=list(state.object_ids),
            births=list(state.births), deaths=deaths))
    return shifted


class ScriptedSequence:
    """A pre-materialized frame list behind the ``SceneSequence`` API.

    ``evaluate_stream`` only needs ``.frames(count)``; scripting the
    states lets the fuzzer (and regression tests) drive metrics with
    adversarial birth/death timing that the organic generator would
    never produce.
    """

    def __init__(self, states: Sequence[FrameState]) -> None:
        self._states = list(states)

    def frames(self, count: int) -> Iterator[FrameState]:
        yield from self._states[:count]

    def __len__(self) -> int:
        return len(self._states)
