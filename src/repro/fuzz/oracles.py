"""Differential agreement oracles.

Each oracle runs one scenario through two or more independent
implementations of the same detection math and asserts agreement:

* ``static_paths`` — per-scene ``detect`` vs fused ``detect_batch`` vs
  the micro-batching ``DetectionEngine``, for the float and the
  quantized configuration, plus vectorized vs reference-loop extraction
  and NMS.  The quantized path must agree **bit for bit** (the exact
  BLAS kernels are batch-invariant by construction); the float path
  must agree on the kept boxes with scores equal to within a few ulps —
  box-set differences are excused only when the disagreeing score sits
  within ``_SCORE_ATOL`` of the decision threshold.
* ``stream_fused`` — ``StreamingDetector.update`` frame by frame vs one
  fused ``update_many`` chunk, bit-exact on the quantized model and
  tolerance-checked on the float model.
* ``stream_invariants`` — temporal safety properties of the tracker
  under arbitrary (including degenerate and shrinking) grid schedules:
  no immortal tracks on unobserved cells, missed counters bounded,
  scores in range, ids unique.
* ``stream_metrics`` — ``evaluate_stream`` vs an independent clean-room
  reimplementation of the documented metric semantics, driven by the
  same deterministic detector outputs.
* ``incremental_stream`` — delta-gated streaming vs full recompute on
  every camera of the scenario, bit-exact on the quantized model, plus
  the ``refresh_every=1`` degeneracy check for tracker-prior carryover.

Every disagreement is reported as a :class:`Divergence` — a JSON-able
record the runner attaches to the replayable case file.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.data.tasks import TaskDefinition
from repro.detect.pipeline import Detection, TaskDetector
from repro.fuzz.scenario import ScenarioSpec, ScriptedSequence
from repro.stream.sequence import FrameState
from repro.stream.tracker import Track

if TYPE_CHECKING:
    from repro.fuzz.runner import ExecutionContext

#: Float GEMM tiling varies with batch shape, so scores across fused vs
#: per-scene float forwards agree to a few ulps, not bitwise.
_SCORE_ATOL = 1e-5


@dataclasses.dataclass
class Divergence:
    """One oracle disagreement, serializable into a replay case."""

    oracle: str
    message: str
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "message": self.message,
                "details": self.details}


# ----------------------------------------------------------------------
# detection-list comparison
# ----------------------------------------------------------------------
def _det_key(det: Detection) -> Tuple[int, int, int, int]:
    return tuple(int(v) for v in det.bbox)


def compare_detections(
    oracle: str,
    label: str,
    reference: Sequence[Sequence[Detection]],
    candidate: Sequence[Sequence[Detection]],
    exact: bool,
    threshold: float,
) -> List[Divergence]:
    """Compare two per-scene detection lists.

    ``exact`` requires identical order, boxes, and bit-equal scores (the
    quantized guarantee).  The tolerant mode compares box *sets* with
    scores within :data:`_SCORE_ATOL`; a box present on one side only is
    excused only when its combined score sits within the tolerance of
    the decision threshold (a legitimate ulp-level threshold flip).
    """
    divergences: List[Divergence] = []
    if len(reference) != len(candidate):
        return [Divergence(oracle, f"{label}: scene count "
                           f"{len(reference)} != {len(candidate)}")]
    for index, (ref, cand) in enumerate(zip(reference, candidate)):
        if exact:
            same = (len(ref) == len(cand) and all(
                _det_key(r) == _det_key(c)
                and r.score == c.score
                and r.objectness == c.objectness
                and r.task_score == c.task_score
                and r.class_id == c.class_id
                for r, c in zip(ref, cand)))
            if not same:
                divergences.append(Divergence(
                    oracle, f"{label}: scene {index} not bit-identical",
                    {"scene": index,
                     "reference": [_describe(d) for d in ref],
                     "candidate": [_describe(d) for d in cand]}))
            continue
        ref_by_box = {_det_key(d): d for d in ref}
        cand_by_box = {_det_key(d): d for d in cand}
        for box in set(ref_by_box) ^ set(cand_by_box):
            only = ref_by_box.get(box) or cand_by_box[box]
            if abs(only.score - threshold) <= _SCORE_ATOL:
                continue  # ulp-level threshold flip: not a real divergence
            side = "reference" if box in ref_by_box else "candidate"
            divergences.append(Divergence(
                oracle, f"{label}: scene {index} box {box} only on {side}",
                {"scene": index, "box": list(box), "side": side,
                 "score": float(only.score), "threshold": threshold}))
        for box in set(ref_by_box) & set(cand_by_box):
            r, c = ref_by_box[box], cand_by_box[box]
            if abs(r.score - c.score) > _SCORE_ATOL:
                divergences.append(Divergence(
                    oracle, f"{label}: scene {index} box {box} score "
                    f"{r.score!r} vs {c.score!r}",
                    {"scene": index, "box": list(box),
                     "reference_score": float(r.score),
                     "candidate_score": float(c.score)}))
    return divergences


def _describe(det: Detection) -> Dict[str, Any]:
    return {"bbox": list(det.bbox), "score": float(det.score),
            "objectness": float(det.objectness),
            "task_score": float(det.task_score),
            "class_id": int(det.class_id)}


# ----------------------------------------------------------------------
# track comparison
# ----------------------------------------------------------------------
_TRACK_FIELDS = ("track_id", "cell", "first_frame", "last_frame",
                 "active", "missed")


def _track_tuple(track: Track) -> Tuple:
    return tuple(getattr(track, f) for f in _TRACK_FIELDS)


def compare_track_snapshots(
    oracle: str,
    label: str,
    reference: Sequence[Sequence[Track]],
    candidate: Sequence[Sequence[Track]],
    exact_scores: bool,
) -> List[Divergence]:
    """Frame-by-frame track equality (cells, ids, lifecycle, scores)."""
    divergences: List[Divergence] = []
    if len(reference) != len(candidate):
        return [Divergence(oracle, f"{label}: frame count "
                           f"{len(reference)} != {len(candidate)}")]
    for frame, (ref, cand) in enumerate(zip(reference, candidate)):
        ref_sorted = sorted(ref, key=lambda t: t.track_id)
        cand_sorted = sorted(cand, key=lambda t: t.track_id)
        structural_ok = ([_track_tuple(t) for t in ref_sorted]
                         == [_track_tuple(t) for t in cand_sorted])
        if not structural_ok:
            divergences.append(Divergence(
                oracle, f"{label}: frame {frame} track structure differs",
                {"frame": frame,
                 "reference": [_track_dict(t) for t in ref_sorted],
                 "candidate": [_track_dict(t) for t in cand_sorted]}))
            continue
        for r, c in zip(ref_sorted, cand_sorted):
            if exact_scores:
                agree = r.score == c.score
            else:
                agree = abs(float(r.score) - float(c.score)) <= _SCORE_ATOL
            if not agree:
                divergences.append(Divergence(
                    oracle, f"{label}: frame {frame} track {r.track_id} "
                    f"score {r.score!r} vs {c.score!r}",
                    {"frame": frame, "track_id": r.track_id,
                     "reference_score": float(r.score),
                     "candidate_score": float(c.score)}))
    return divergences


def _track_dict(track: Track) -> Dict[str, Any]:
    data = {f: getattr(track, f) for f in _TRACK_FIELDS}
    data["cell"] = list(data["cell"])
    data["score"] = float(track.score)
    return data


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------
def oracle_static_paths(spec: ScenarioSpec,
                        ctx: "ExecutionContext") -> List[Divergence]:
    """detect == detect_batch == engine, and vectorized == reference."""
    divergences: List[Divergence] = []
    scenes = ctx.scenes
    threshold = spec.score_threshold
    float_sequential = None
    for kind in ("float", "quantized"):
        detector = ctx.make_detector(kind)
        sequential = [detector.detect(scene) for scene in scenes]
        if kind == "float":
            float_sequential = sequential
        exact = kind == "quantized"
        fused = detector.detect_batch(scenes)
        divergences += compare_detections(
            "static_paths", f"{kind}:batch_vs_sequential",
            sequential, fused, exact=exact, threshold=threshold)
        engine_results = ctx.run_engine(detector, scenes)
        divergences += compare_detections(
            "static_paths", f"{kind}:engine_vs_sequential",
            sequential, engine_results, exact=exact, threshold=threshold)
    reference_detector = ctx.make_detector("float", vectorized=False)
    reference = [reference_detector.detect(scene) for scene in scenes]
    divergences += compare_detections(
        "static_paths", "float:vectorized_vs_reference",
        float_sequential, reference, exact=False, threshold=threshold)
    return divergences


def oracle_stream_fused(spec: ScenarioSpec,
                        ctx: "ExecutionContext") -> List[Divergence]:
    """Frame-by-frame ``update`` == one fused ``update_many`` chunk."""
    divergences: List[Divergence] = []
    frames = [state.scene for state in ctx.frames]
    for kind in ("quantized", "float"):
        sequential_detector = ctx.make_stream(kind)
        snapshots = []
        for scene in frames:
            snapshots.append([dataclasses.replace(t)
                              for t in sequential_detector.update(scene)])
        fused_detector = ctx.make_stream(kind)
        fused = fused_detector.update_many(frames)
        divergences += compare_track_snapshots(
            "stream_fused", f"{kind}:update_many_vs_update",
            snapshots, fused, exact_scores=(kind == "quantized"))
    return divergences


def oracle_stream_invariants(spec: ScenarioSpec,
                             ctx: "ExecutionContext") -> List[Divergence]:
    """Temporal safety properties under arbitrary grid schedules."""
    divergences: List[Divergence] = []
    detector = ctx.make_stream("quantized")
    grids = spec.frame_grids
    last_observed: Dict[Tuple[int, int], int] = {}
    for frame_index, state in enumerate(ctx.frames):
        grid = grids[frame_index]
        for row in range(grid):
            for col in range(grid):
                last_observed[(row, col)] = frame_index
        tracks = detector.update(state.scene)
        ids = [t.track_id for t in tracks]
        if len(set(ids)) != len(ids):
            divergences.append(Divergence(
                "stream_invariants",
                f"frame {frame_index}: duplicate active track ids",
                {"frame": frame_index, "ids": ids}))
        for track in tracks:
            if track.missed > spec.max_missed_frames:
                divergences.append(Divergence(
                    "stream_invariants",
                    f"frame {frame_index}: track {track.track_id} active "
                    f"with missed={track.missed} > "
                    f"max_missed_frames={spec.max_missed_frames}",
                    {"frame": frame_index, "track": _track_dict(track)}))
            if not (track.first_frame <= track.last_frame <= frame_index):
                divergences.append(Divergence(
                    "stream_invariants",
                    f"frame {frame_index}: track {track.track_id} has "
                    f"inconsistent lifecycle frames",
                    {"frame": frame_index, "track": _track_dict(track)}))
            if not (0.0 <= float(track.score) <= 1.0 + 1e-9):
                divergences.append(Divergence(
                    "stream_invariants",
                    f"frame {frame_index}: track {track.track_id} score "
                    f"{track.score!r} out of [0, 1]",
                    {"frame": frame_index, "track": _track_dict(track)}))
            observed_at = last_observed.get(track.cell)
            # A track whose cell was never observed within the missed
            # budget must be dead: unobserved frames count as missed.
            # (Pre-fix, stale EMA kept refreshing last_frame/missed and
            # such tracks survived forever.)
            if (observed_at is None
                    or frame_index - observed_at > spec.max_missed_frames):
                divergences.append(Divergence(
                    "stream_invariants",
                    f"frame {frame_index}: track {track.track_id} on cell "
                    f"{track.cell} survives though the cell was last "
                    f"observed at frame {observed_at}",
                    {"frame": frame_index, "track": _track_dict(track),
                     "last_observed": observed_at}))
    return divergences


def reference_stream_metrics(detector, states: Sequence[FrameState],
                             task: TaskDefinition) -> Dict[str, float]:
    """Clean-room implementation of the documented streaming metrics.

    Independent of :func:`repro.stream.metrics.evaluate_stream`: drives
    its own detector pass and recomputes frame accuracy, detection
    latency (first track on a *live* relevant object's cell, strictly
    before its recorded death), detected fraction, and flicker rate from
    first principles.
    """
    correct = 0
    total = 0
    flips = 0
    previous: Dict[Tuple[int, int], bool] = {}
    birth_frame: Dict[int, int] = {}
    detect_frame: Dict[int, int] = {}
    dead: set = set()
    relevant_ids: set = set()
    for state in states:
        fired = {t.cell for t in detector.update(state.scene)}
        dead.update(state.deaths)
        alive_relevant: Dict[Tuple[int, int], int] = {}
        for obj, obj_id in zip(state.scene.objects, state.object_ids):
            if task.matches(obj.profile):
                relevant_ids.add(obj_id)
                birth_frame.setdefault(obj_id, state.index)
                alive_relevant[obj.cell] = obj_id
        grid = state.scene.grid
        for row in range(grid):
            for col in range(grid):
                cell = (row, col)
                decision = cell in fired
                truth = cell in alive_relevant
                correct += int(decision == truth)
                total += 1
                if cell in previous and previous[cell] != decision:
                    flips += 1
                previous[cell] = decision
        for cell, obj_id in alive_relevant.items():
            if (cell in fired and obj_id not in dead
                    and obj_id not in detect_frame):
                detect_frame[obj_id] = state.index
    latencies = [detect_frame[i] - birth_frame[i] for i in detect_frame]
    return {
        "frame_accuracy": correct / max(total, 1),
        "mean_detection_latency": (float(np.mean(latencies)) if latencies
                                   else float("nan")),
        "detected_fraction": len(detect_frame) / max(len(relevant_ids), 1),
        "flicker_rate": flips / max(total, 1),
    }


def oracle_stream_metrics(spec: ScenarioSpec,
                          ctx: "ExecutionContext") -> List[Divergence]:
    """``evaluate_stream`` vs the clean-room metric reimplementation.

    Both passes drive identical fresh detectors over identical frames,
    so every per-frame track set is bit-identical and any metric
    disagreement is a semantics bug, not noise.
    """
    task = ctx.task
    states = ctx.frames
    metrics = ctx.evaluate_fn(ctx.make_stream("float"),
                              ScriptedSequence(states), task,
                              num_frames=len(states))
    reference = reference_stream_metrics(ctx.make_stream("float"),
                                         states, task)
    divergences: List[Divergence] = []
    for name, expected in reference.items():
        actual = getattr(metrics, name)
        agree = (math.isnan(expected) and math.isnan(actual)) or \
            (not math.isnan(expected) and not math.isnan(actual)
             and abs(actual - expected) <= 1e-12)
        if not agree:
            divergences.append(Divergence(
                "stream_metrics",
                f"{name}: evaluate_stream={actual!r} reference={expected!r}",
                {"metric": name, "evaluate_stream": float(actual),
                 "reference": float(expected)}))
    return divergences


def _update_snapshots(detector, frames) -> List[List[Track]]:
    """Per-frame deep-copied active-track snapshots from ``update``."""
    return [[dataclasses.replace(t) for t in detector.update(scene)]
            for scene in frames]


def oracle_incremental_stream(spec: ScenarioSpec,
                              ctx: "ExecutionContext") -> List[Divergence]:
    """Delta-gated streaming == full recompute, on every camera.

    The delta gate's contract is that reusing a cached score for an
    unchanged cell is *unobservable* in the track state: per camera and
    per model kind, a gated detector (exact gating, the spec's
    ``refresh_every``) must produce track snapshots bit-equal (quantized)
    or ulp-equal (float) to an ungated detector over the same frames —
    regardless of whether the spec itself enables the gate.  When the
    spec uses tracker-prior carryover (``motion_threshold > 0``), the
    approximate path is additionally pinned at its degenerate point:
    ``refresh_every=1`` forces a full re-score every frame, so carryover
    must then reproduce full recompute exactly.
    """
    divergences: List[Divergence] = []
    for camera in range(spec.num_cameras):
        states = ctx.frames if camera == 0 else spec.build_camera_frames(camera)
        frames = [state.scene for state in states]
        for kind in ("quantized", "float"):
            full = _update_snapshots(ctx.make_stream(kind, gated=False),
                                     frames)
            gated = _update_snapshots(
                ctx.make_stream(kind, gated=True, motion_threshold=0.0),
                frames)
            divergences += compare_track_snapshots(
                "incremental_stream", f"camera{camera}:{kind}:gated_vs_full",
                full, gated, exact_scores=(kind == "quantized"))
            if kind == "quantized" and spec.motion_threshold > 0.0:
                degenerate = _update_snapshots(
                    ctx.make_stream(kind, gated=True,
                                    motion_threshold=spec.motion_threshold,
                                    refresh_every=1),
                    frames)
                divergences += compare_track_snapshots(
                    "incremental_stream",
                    f"camera{camera}:{kind}:carryover_refresh1_vs_full",
                    full, degenerate, exact_scores=True)
    return divergences


def oracle_pipeline_session(spec: ScenarioSpec,
                            ctx: "ExecutionContext") -> List[Divergence]:
    """The full ``ITaskPipeline.prepare()`` + session-cache path.

    Three checks:

    * the pipeline's quantized serving path (LLM extraction, matcher
      construction, session cache, fused batch detect) is bit-identical
      to the directly-constructed quantized detector the other oracles
      use — a fresh noisy LLM's *first* graph is deterministic, so this
      holds under extraction noise too;
    * a second request for the same mission (a session-cache hit) is
      bit-identical to the first;
    * (noise-free scenarios) replacing a registered specialist's graph
      through ``selector.register_specialist`` must behave as if the
      pipeline had been built with the replacement graph — the
      session-invalidation check that caught the stale mission
      fingerprint (graph replaced, version coincides, old session
      served).
    """
    divergences: List[Divergence] = []
    pipeline = ctx.make_pipeline()
    task_spec = ctx.task_spec()
    threshold = spec.score_threshold

    reference = [ctx.make_detector("quantized").detect(scene)
                 for scene in ctx.scenes]
    first = pipeline.detect_batch(task_spec, ctx.scenes)
    divergences += compare_detections(
        "pipeline_session", "quantized:pipeline_vs_direct",
        reference, first, exact=True, threshold=threshold)
    second = pipeline.detect_batch(task_spec, ctx.scenes)
    divergences += compare_detections(
        "pipeline_session", "quantized:cached_session_stability",
        first, second, exact=True, threshold=threshold)

    noise_free = (spec.kg_omission == 0.0 and spec.kg_hallucination == 0.0
                  and spec.kg_weight_jitter == 0.0)
    if noise_free:
        # Serve through a pipeline whose specialist graph is replaced
        # mid-flight, vs a fresh pipeline built with the replacement
        # graph from the start.  Any disagreement is a stale session.
        served = ctx.make_pipeline()
        mission_kg = served.build_kg(task_spec)
        replacement_kg = ctx.replacement_graph(mission_kg)
        served.register_specialist(
            spec.task, ctx.specialist_configuration(), mission_kg)
        served.detect_batch(task_spec, ctx.scenes)  # warm the session
        served.selector.register_specialist(spec.task, replacement_kg)
        after_replacement = served.detect_batch(task_spec, ctx.scenes)

        fresh = ctx.make_pipeline()
        fresh.register_specialist(
            spec.task, ctx.specialist_configuration(), replacement_kg)
        expected = fresh.detect_batch(task_spec, ctx.scenes)
        divergences += compare_detections(
            "pipeline_session", "graph_replacement_invalidation",
            expected, after_replacement, exact=True, threshold=threshold)
    return divergences


def oracle_cascade_routing(spec: ScenarioSpec,
                           ctx: "ExecutionContext") -> List[Divergence]:
    """Cascade output == whichever single config the scene routed to.

    * With a non-binding budget, routing decisions are identical across
      per-scene ``detect``, fused ``detect_batch``, and the
      micro-batching engine (routing is a pure per-scene function of the
      batch-invariant quantized outputs).
    * Every scene's cascade output equals the routed-to configuration's
      own output: bit for bit on the fast/shed (quantized) path,
      tolerance-checked on the escalated (float) path.
    * Under the spec's (possibly binding) budget, escalations never
      exceed the budget's window bound, shed scenes still return the
      quantized result bit for bit, and a fraction-zero budget escalates
      nothing.
    """
    from repro.cascade.router import (
        ESCALATED, FAST_PATH, SHED, CascadeConfig, CascadeRouter,
    )

    divergences: List[Divergence] = []
    scenes = ctx.scenes
    threshold = spec.score_threshold

    def make_router(fraction: float) -> CascadeRouter:
        return CascadeRouter(
            ctx.make_detector("quantized"),
            ctx.make_detector("float"),
            config=CascadeConfig(margin_threshold=spec.cascade_margin,
                                 max_escalation_fraction=fraction),
            pinned=spec.cascade_pinned)

    # -- path determinism (non-binding budget) -------------------------
    batch_results, batch_decisions = make_router(1.0).detect_batch(scenes)
    per_scene = [make_router(1.0).detect(scene) for scene in scenes]
    for index, (detections, decision) in enumerate(per_scene):
        if decision.route != batch_decisions[index].route:
            divergences.append(Divergence(
                "cascade_routing",
                f"scene {index}: detect route {decision.route!r} != "
                f"detect_batch route {batch_decisions[index].route!r}",
                {"scene": index, "detect": decision.route,
                 "detect_batch": batch_decisions[index].route,
                 "margin": decision.margin}))
    engine_results, engine_routes = ctx.run_cascade_engine(
        make_router(1.0), scenes)
    if sorted(engine_routes) != sorted(d.route for d in batch_decisions):
        divergences.append(Divergence(
            "cascade_routing",
            "engine route multiset differs from detect_batch",
            {"engine": sorted(engine_routes),
             "detect_batch": sorted(d.route for d in batch_decisions)}))

    # -- routed-output equivalence -------------------------------------
    quantized = [ctx.make_detector("quantized").detect(scene)
                 for scene in scenes]
    specialist = [ctx.make_detector("float").detect(scene)
                  for scene in scenes]
    for label, results in (("detect_batch", batch_results),
                           ("engine", engine_results)):
        for index, decision in enumerate(batch_decisions):
            escalated = decision.route == ESCALATED
            expected = specialist[index] if escalated else quantized[index]
            divergences += compare_detections(
                "cascade_routing",
                f"{label}:scene{index}:{decision.route}",
                [expected], [results[index]],
                exact=not escalated, threshold=threshold)

    # -- budget behavior -----------------------------------------------
    budget_results, budget_decisions = (
        make_router(spec.cascade_fraction).detect_batch(scenes))
    escalated_count = sum(d.route == ESCALATED for d in budget_decisions)
    if spec.cascade_fraction < 1.0:
        router = make_router(spec.cascade_fraction)
        bound = math.ceil(spec.cascade_fraction
                          * router.config.escalation_window)
        if escalated_count > max(bound, 0):
            divergences.append(Divergence(
                "cascade_routing",
                f"budget violated: {escalated_count} escalations > "
                f"bound {bound}",
                {"escalated": escalated_count, "bound": bound,
                 "fraction": spec.cascade_fraction}))
    if spec.cascade_fraction == 0.0 and escalated_count:
        divergences.append(Divergence(
            "cascade_routing",
            f"fraction-zero budget still escalated {escalated_count}",
            {"escalated": escalated_count}))
    for index, decision in enumerate(budget_decisions):
        if decision.route in (FAST_PATH, SHED):
            divergences += compare_detections(
                "cascade_routing",
                f"budgeted:scene{index}:{decision.route}",
                [quantized[index]], [budget_results[index]],
                exact=True, threshold=threshold)
    return divergences


def oracle_sharded_engine(spec: ScenarioSpec,
                          ctx: "ExecutionContext") -> List[Divergence]:
    """Sharded results == single-process results, bit for bit.

    Routes the scenario's scenes through a real 2-process
    :class:`~repro.serve.shard.ShardRouter` (forked workers, pickled
    scenes, wire-format contexts) and compares against sequential
    per-scene detection on the same quantized detector.  The quantized
    configuration is exactly batch-invariant, so any divergence is a
    transport or routing bug — scene corruption in pickling, result
    misassociation across the pipe, reroute double-serving — not model
    noise.  Float models are excluded on purpose: their scores are only
    ulp-equal across batch compositions, which is tolerance territory,
    while this oracle's whole point is exactness.

    Skipped on platforms without the ``fork`` start method (closure
    factories require it).
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return []
    detector = ctx.make_detector("quantized")
    reference = [detector.detect(scene) for scene in ctx.scenes]
    sharded = ctx.run_sharded_engine(detector, ctx.scenes)
    return compare_detections(
        "sharded_engine", "fork-2-shards", reference, sharded,
        exact=True, threshold=spec.score_threshold)


#: Ordered oracle registry: (name, callable).
ORACLES = (
    ("static_paths", oracle_static_paths),
    ("stream_fused", oracle_stream_fused),
    ("stream_invariants", oracle_stream_invariants),
    ("stream_metrics", oracle_stream_metrics),
    ("incremental_stream", oracle_incremental_stream),
    ("pipeline_session", oracle_pipeline_session),
    ("cascade_routing", oracle_cascade_routing),
    ("sharded_engine", oracle_sharded_engine),
)
