"""Margin-threshold calibration and its persisted artifacts.

The router escalates scenes whose confidence margin falls below a
threshold; this module picks that threshold from data.  On a held-out
calibration set it measures, per scene, the fast (quantized) and
specialist cell accuracies plus the fast pass's margin, then sweeps
every distinct margin as a candidate threshold: escalating exactly the
scenes below the candidate yields the cascade's accuracy and cost at
that operating point.  The chosen threshold is the *cheapest* candidate
(fewest escalations) that recovers at least ``target_recovery`` of the
specialist's accuracy advantage within ``max_relative_cost`` of the
all-specialist cost; when no candidate meets both, the best-recovery
point under the cost cap is returned with ``meets_targets=False``.

Calibrations persist next to the model artifacts:
:class:`CalibrationStore` writes integrity-hashed JSON under
``<registry.root>/calibrations/`` — the same atomic-write, verify-on-
load, quarantine-on-corruption discipline as the checkpoint registry,
without colliding with its ``<root>/*.json`` checkpoint metadata.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.registry import CorruptArtifactError, ModelRegistry
from repro.nn.serialization import atomic_write_bytes

if TYPE_CHECKING:
    from repro.data.scenes import Scene
    from repro.data.tasks import TaskDefinition
    from repro.detect.pipeline import Detection, TaskDetector

CALIBRATION_FORMAT_VERSION = 1


def scene_cell_accuracy(scene: "Scene", detections: Sequence["Detection"],
                        task: "TaskDefinition",
                        object_cells_only: bool = True) -> float:
    """One scene's cell-decision accuracy (see ``detect.task_accuracy``).

    Same decision rule as the aggregate metric, computed per scene so
    the calibration sweep can re-mix fast/specialist outcomes per
    routing choice without re-running either detector.
    """
    relevant_cells = {
        obj.cell for obj in scene.objects if task.matches(obj.profile)
    }
    object_cells = {obj.cell for obj in scene.objects}
    fired_cells = set()
    for detection in detections:
        col = detection.bbox[0] // scene.cell_size
        row = detection.bbox[1] // scene.cell_size
        fired_cells.add((row, col))
    correct = 0
    total = 0
    for row in range(scene.grid):
        for col in range(scene.grid):
            cell = (row, col)
            if object_cells_only and cell not in object_cells:
                continue
            fired = cell in fired_cells
            correct += int((cell in relevant_cells) == fired)
            total += 1
    return correct / total if total else 1.0


@dataclasses.dataclass(frozen=True)
class CalibrationPoint:
    """One candidate operating point from the threshold sweep."""

    margin_threshold: float
    escalation_fraction: float
    accuracy: float
    recovery: float
    relative_cost: float


@dataclasses.dataclass(frozen=True)
class CascadeCalibration:
    """A calibrated cascade operating point, ready to persist.

    ``recovery`` is the fraction of the specialist's accuracy advantage
    over the fast path the cascade keeps; ``relative_cost`` is cascade
    cost over all-specialist cost under the supplied per-scene costs.
    """

    task: str
    margin_threshold: float
    escalation_fraction: float
    fast_accuracy: float
    specialist_accuracy: float
    cascade_accuracy: float
    recovery: float
    relative_cost: float
    fast_cost: float
    specialist_cost: float
    target_recovery: float
    max_relative_cost: float
    num_scenes: int
    meets_targets: bool
    frontier: Tuple[CalibrationPoint, ...] = ()

    def to_dict(self) -> Dict:
        payload = dataclasses.asdict(self)
        payload["frontier"] = [dataclasses.asdict(p) for p in self.frontier]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "CascadeCalibration":
        frontier = tuple(CalibrationPoint(**p)
                         for p in payload.get("frontier", ()))
        fields = {f.name for f in dataclasses.fields(cls)} - {"frontier"}
        return cls(frontier=frontier,
                   **{k: v for k, v in payload.items() if k in fields})


def _sweep_point(margins: Sequence[float], fast_acc: Sequence[float],
                 spec_acc: Sequence[float], threshold: float,
                 fast_cost: float, specialist_cost: float) -> CalibrationPoint:
    n = len(margins)
    escalate = [m < threshold for m in margins]
    num_esc = sum(escalate)
    accuracy = sum(s if e else f
                   for e, f, s in zip(escalate, fast_acc, spec_acc)) / n
    fast_mean = sum(fast_acc) / n
    spec_mean = sum(spec_acc) / n
    delta = spec_mean - fast_mean
    recovery = 1.0 if delta <= 0 else (accuracy - fast_mean) / delta
    relative_cost = ((n * fast_cost + num_esc * specialist_cost)
                     / (n * specialist_cost))
    return CalibrationPoint(
        margin_threshold=float(threshold),
        escalation_fraction=num_esc / n,
        accuracy=accuracy,
        recovery=recovery,
        relative_cost=relative_cost,
    )


def calibrate_margin_threshold(
    fast: "TaskDetector",
    specialist: "TaskDetector",
    scenes: Sequence["Scene"],
    task: "TaskDefinition",
    *,
    fast_cost: float = 1.0,
    specialist_cost: float = 4.5,
    target_recovery: float = 0.8,
    max_relative_cost: float = 0.4,
) -> CascadeCalibration:
    """Sweep margin thresholds on a calibration set, pick the cheapest
    point meeting the recovery/cost targets.

    Both detectors run once over the whole set (batch-first); the sweep
    itself is pure bookkeeping over the measured per-scene margins and
    accuracies, so candidate thresholds cost nothing extra.
    """
    scenes = list(scenes)
    if not scenes:
        raise ValueError("calibration requires at least one scene")
    fast_results, signal_list = fast.detect_batch_with_signals(scenes)
    spec_results = specialist.detect_batch(scenes)
    margins = [s.margin for s in signal_list]
    fast_acc = [scene_cell_accuracy(scene, dets, task)
                for scene, dets in zip(scenes, fast_results)]
    spec_acc = [scene_cell_accuracy(scene, dets, task)
                for scene, dets in zip(scenes, spec_results)]

    # Candidate thresholds: 0.0 (never escalate) plus just-above each
    # distinct finite margin (escalate that scene and every lower one).
    eps = 1e-9
    candidates = [0.0] + sorted(
        {m + eps for m in margins if math.isfinite(m)})
    frontier = [
        _sweep_point(margins, fast_acc, spec_acc, threshold,
                     fast_cost, specialist_cost)
        for threshold in candidates
    ]

    affordable = [p for p in frontier if p.relative_cost <= max_relative_cost]
    meeting = [p for p in affordable if p.recovery >= target_recovery]
    if meeting:
        # Cheapest point that clears both bars.
        chosen = min(meeting, key=lambda p: (p.relative_cost,
                                             p.margin_threshold))
        meets = True
    elif affordable:
        # Best recovery we can buy under the cost cap.
        chosen = max(affordable, key=lambda p: (p.recovery,
                                                -p.relative_cost))
        meets = False
    else:
        chosen = frontier[0]
        meets = False

    n = len(scenes)
    return CascadeCalibration(
        task=task.name,
        margin_threshold=chosen.margin_threshold,
        escalation_fraction=chosen.escalation_fraction,
        fast_accuracy=sum(fast_acc) / n,
        specialist_accuracy=sum(spec_acc) / n,
        cascade_accuracy=chosen.accuracy,
        recovery=chosen.recovery,
        relative_cost=chosen.relative_cost,
        fast_cost=fast_cost,
        specialist_cost=specialist_cost,
        target_recovery=target_recovery,
        max_relative_cost=max_relative_cost,
        num_scenes=n,
        meets_targets=meets,
        frontier=tuple(frontier),
    )


class CalibrationStore:
    """Integrity-hashed calibration JSONs under the artifact registry.

    Files live in ``<registry.root>/calibrations/`` — a subdirectory, so
    the checkpoint registry's ``names()``/``statuses()`` root scan never
    mistakes them for orphaned checkpoint metadata.  Writes are atomic;
    loads verify the embedded sha256 and quarantine damaged files into
    ``<registry.root>/quarantine/calibrations/`` exactly like corrupt
    checkpoints.
    """

    def __init__(self, registry: ModelRegistry) -> None:
        self.registry = registry
        self.root = os.path.join(registry.root, "calibrations")

    def _path(self, name: str) -> str:
        import urllib.parse

        return os.path.join(self.root,
                            urllib.parse.quote(name, safe="") + ".json")

    @staticmethod
    def _digest(payload: Dict) -> str:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def save(self, name: str, calibration: CascadeCalibration) -> str:
        os.makedirs(self.root, exist_ok=True)
        body = calibration.to_dict()
        document = {
            "format": CALIBRATION_FORMAT_VERSION,
            "name": name,
            "calibration": body,
            "integrity": {"sha256": self._digest(body)},
        }
        path = self._path(name)
        atomic_write_bytes(
            (json.dumps(document, indent=2, sort_keys=True)
             + "\n").encode("utf-8"), path)
        return path

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def load(self, name: str) -> CascadeCalibration:
        path = self._path(name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            raise KeyError(f"no calibration named {name!r}") from None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            raise CorruptArtifactError(
                name, ["calibration file is not valid JSON"],
                paths=[path]) from None
        body = document.get("calibration")
        recorded = (document.get("integrity") or {}).get("sha256")
        if (document.get("format") != CALIBRATION_FORMAT_VERSION
                or body is None or recorded != self._digest(body)):
            self._quarantine(path)
            raise CorruptArtifactError(
                name, ["calibration failed its integrity check"],
                paths=[path])
        return CascadeCalibration.from_dict(body)

    def names(self) -> List[str]:
        import urllib.parse

        if not os.path.isdir(self.root):
            return []
        return sorted(
            urllib.parse.unquote(entry[:-len(".json")])
            for entry in os.listdir(self.root)
            if entry.endswith(".json")
        )

    def _quarantine(self, path: str) -> None:
        hold = os.path.join(self.registry.root, "quarantine", "calibrations")
        os.makedirs(hold, exist_ok=True)
        destination = os.path.join(hold, os.path.basename(path))
        if os.path.exists(destination):
            os.replace(path, destination + ".dup")
        else:
            os.replace(path, destination)
