"""Adaptive dual-configuration cascade (quantized first, escalate on doubt).

Operationalizes the paper's central tradeoff: the quantized generalist
runs on every scene, and only low-margin (or fingerprint-pinned) scenes
escalate to the task-specific distilled specialist — under a
deterministic escalation budget and a load-shedding check against the
serving engine's queue.  See ``repro.cascade.router`` for the policy,
``repro.cascade.calibrate`` for threshold calibration and its persisted
artifacts, and ``ITaskPipeline.cascade_session`` for the entry point.
"""

from repro.cascade.router import (
    ESCALATED,
    FAST_PATH,
    SHED,
    CascadeConfig,
    CascadeRouter,
    EscalationBudget,
    RouteDecision,
)
from repro.cascade.session import CascadeSession, SpecialistRegistry
from repro.cascade.calibrate import (
    CalibrationPoint,
    CalibrationStore,
    CascadeCalibration,
    calibrate_margin_threshold,
    scene_cell_accuracy,
)

__all__ = [
    "ESCALATED",
    "FAST_PATH",
    "SHED",
    "CascadeConfig",
    "CascadeRouter",
    "EscalationBudget",
    "RouteDecision",
    "CascadeSession",
    "SpecialistRegistry",
    "CalibrationPoint",
    "CalibrationStore",
    "CascadeCalibration",
    "calibrate_margin_threshold",
    "scene_cell_accuracy",
]
