"""Cascade serving surface: sessions, specialist pinning, engine wiring.

A :class:`CascadeSession` pairs one prepared mission
(:class:`repro.serve.MissionSession`) with a :class:`CascadeRouter`
and mirrors the session serving surface (``detect`` / ``detect_batch``
/ ``evaluate`` / ``engine``), so the micro-batching
:class:`~repro.serve.DetectionEngine` can serve a cascade unchanged —
it only ever calls ``detect_batch``.  :meth:`CascadeSession.engine`
additionally wires the engine's live queue depth into the router, which
is what makes the shedding policy load-aware.

:class:`SpecialistRegistry` keys specialists by mission fingerprint
(:func:`repro.serve.mission_fingerprint`): a pinned fingerprint routes
every scene of that mission toward its specialist regardless of margin,
subject to the same budget and load shedding as margin escalations.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cascade.router import CascadeRouter, RouteDecision
from repro.detect.metrics import task_accuracy

if TYPE_CHECKING:
    from repro.data.scenes import Scene
    from repro.detect.pipeline import Detection
    from repro.serve.engine import DetectionEngine, EngineConfig
    from repro.serve.session import MissionSession


class SpecialistRegistry:
    """Mission-fingerprint -> specialist-task pins, thread-safe."""

    def __init__(self) -> None:
        self._pins: Dict[str, str] = {}
        self._lock = threading.Lock()

    def pin(self, fingerprint: str, task_name: str) -> None:
        with self._lock:
            self._pins[fingerprint] = task_name

    def unpin(self, fingerprint: str) -> bool:
        with self._lock:
            return self._pins.pop(fingerprint, None) is not None

    def lookup(self, fingerprint: str) -> Optional[str]:
        with self._lock:
            return self._pins.get(fingerprint)

    def pins(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._pins)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pins)


class CascadeSession:
    """One prepared mission served through a cascade router.

    Mirrors :class:`~repro.serve.MissionSession`'s serving surface;
    ``detect``/``detect_batch`` return plain detections (what the engine
    expects), while :meth:`route` / :meth:`route_batch` additionally
    return the per-scene :class:`RouteDecision`.  Every decision is also
    appended to an internal log — :meth:`route_counts` /
    :meth:`drain_decisions` — so tests and the CLI can audit routing
    after the fact, including across engine workers.
    """

    def __init__(self, session: Optional["MissionSession"],
                 router: CascadeRouter) -> None:
        # ``session=None`` builds a router-only session: the serving
        # surface (detect/detect_batch/engine + the decision log) over
        # pre-built detectors, with the mission-bound conveniences
        # (spec/kg/evaluate) unavailable.  Benchmarks replaying traffic
        # through a raw router use this.
        self.session = session
        self.router = router
        self._decisions: List[RouteDecision] = []
        self._lock = threading.Lock()

    def _require_session(self) -> "MissionSession":
        if self.session is None:
            raise ValueError("router-only CascadeSession has no prepared "
                             "mission (built with session=None)")
        return self.session

    # -- convenience views ---------------------------------------------
    @property
    def key(self) -> str:
        return self._require_session().key

    @property
    def spec(self):
        return self._require_session().spec

    @property
    def kg(self):
        return self._require_session().kg

    @property
    def decision(self):
        return self._require_session().decision

    @property
    def has_specialist(self) -> bool:
        return self.router.specialist is not None

    # -- serving -------------------------------------------------------
    def route(self, scene: "Scene", stride: Optional[int] = None,
              ) -> Tuple[List["Detection"], RouteDecision]:
        detections, decision = self.router.detect(scene, stride=stride)
        self._log([decision])
        return detections, decision

    def route_batch(
        self, scenes: Sequence["Scene"], stride: Optional[int] = None,
        contexts: Optional[Sequence] = None,
    ) -> Tuple[List[List["Detection"]], List[RouteDecision]]:
        results, decisions = self.router.detect_batch(
            scenes, stride=stride, contexts=contexts)
        self._log(decisions)
        return results, decisions

    def detect(self, scene: "Scene",
               stride: Optional[int] = None) -> List["Detection"]:
        return self.route(scene, stride=stride)[0]

    def detect_batch(self, scenes: Sequence["Scene"],
                     stride: Optional[int] = None,
                     contexts: Optional[Sequence] = None,
                     ) -> List[List["Detection"]]:
        # ``contexts`` (one RequestContext or None per scene) arrives
        # from the engine's captured submitter contexts; the router
        # stamps each RouteDecision with its request's trace_id.
        return self.route_batch(scenes, stride=stride, contexts=contexts)[0]

    def evaluate(self, scenes: Sequence["Scene"],
                 object_cells_only: bool = False) -> float:
        """Cascade task accuracy over scenes (batch-first routing)."""
        if self.spec.definition is None:
            raise ValueError("evaluation requires spec.definition ground truth")
        return task_accuracy(self, scenes, self.spec.definition,
                             object_cells_only=object_cells_only)

    def engine(self, config: Optional["EngineConfig"] = None) -> "DetectionEngine":
        """A micro-batching engine serving this cascade.

        The router's queue-depth provider is pointed at the new engine's
        queue, so escalations shed when this engine backs up.  One
        engine per cascade session: a second call repoints the provider.
        """
        from repro.serve.engine import DetectionEngine

        engine = DetectionEngine(self, config=config)
        self.router.queue_depth_fn = lambda: engine.queue_depth
        return engine

    # -- decision audit ------------------------------------------------
    def _log(self, decisions: Sequence[RouteDecision]) -> None:
        with self._lock:
            self._decisions.extend(decisions)

    def route_counts(self) -> Dict[str, int]:
        """Decisions so far, keyed by route name."""
        with self._lock:
            counts: Dict[str, int] = {}
            for decision in self._decisions:
                counts[decision.route] = counts.get(decision.route, 0) + 1
            return counts

    def drain_decisions(self) -> List[RouteDecision]:
        """Snapshot and clear the decision log."""
        with self._lock:
            decisions = list(self._decisions)
            self._decisions.clear()
            return decisions

    def decision_summary(self) -> List[Dict]:
        """JSON-able view of the decision log, *without* clearing it.

        This is what a shard worker returns for the front-end's
        ``decisions`` probe: route/margin/reason/trace_id per scene, so
        shed decisions made in a worker process can be audited — and
        compared bit-for-bit against an in-process run — from the
        router side.
        """
        with self._lock:
            return [
                {
                    "scene_index": d.scene_index,
                    "route": d.route,
                    "margin": d.margin,
                    "reason": d.reason,
                    "trace_id": d.trace_id,
                }
                for d in self._decisions
            ]

    def __repr__(self) -> str:
        pin = "pinned" if self.router.pinned else "margin"
        if self.session is None:
            return (f"CascadeSession(router-only, mode={pin}, "
                    f"specialist={self.has_specialist})")
        return (f"CascadeSession(task={self.spec.name!r}, mode={pin}, "
                f"specialist={self.has_specialist}, key={self.key[:12]}...)")
