"""Dual-configuration cascade routing.

The paper's central tradeoff — the task-specific distilled specialist
wins on its own mission while the quantized generalist is cheap and
robust — becomes operational here: every scene runs the quantized
configuration first, and only scenes whose confidence margin
(:func:`repro.detect.confidence_margin`) falls below a calibrated
threshold escalate to the specialist.  Escalation happens under a
deterministic sliding-window budget and a load-shedding check against
the serving engine's queue, so a traffic spike degrades to fast-path
quality instead of unbounded queueing.

Routing is a pure function of one scene's quantized outputs plus the
budget/load state: with a non-binding budget the decisions are
identical across :meth:`CascadeRouter.detect`,
:meth:`CascadeRouter.detect_batch`, and the multi-worker engine,
because the quantized forward itself is exactly batch- and
order-invariant.  A shed or fast-path scene returns the quantized
result bit for bit — escalation can only replace it with the
specialist's answer, never with a third hybrid.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.data.scenes import Scene
from repro.detect.pipeline import Detection, SceneSignals, TaskDetector
from repro.obs import get_registry
from repro.obs.context import RequestContext, current_context
from repro.obs.sampler import get_sampler

# Routes a scene can take through the cascade, in the order they are
# considered: confident scenes stay on the fast path, uncertain ones
# escalate unless load or budget sheds them back.
FAST_PATH = "fast_path"
ESCALATED = "escalated"
SHED = "shed"


@dataclasses.dataclass(frozen=True)
class CascadeConfig:
    """Tunable policy for the cascade router.

    margin_threshold:
        Scenes with confidence margin strictly below this escalate.
        Calibrate with :func:`repro.cascade.calibrate_margin_threshold`;
        the default matches the shipped artifact sweep (E13).
    max_escalation_fraction:
        Budget: at most this fraction of the last ``escalation_window``
        routing decisions may escalate.  ``>= 1.0`` disables the budget.
    escalation_window:
        Sliding window (in scenes) the fraction is measured over.
    shed_queue_depth:
        When a queue-depth provider reports more than this many waiting
        jobs, escalations shed regardless of budget.  ``None`` disables
        load shedding (no provider attached, e.g. outside the engine).
    """

    margin_threshold: float = 0.15
    max_escalation_fraction: float = 1.0
    escalation_window: int = 64
    shed_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.margin_threshold:
            raise ValueError("margin_threshold must be >= 0")
        if not 0.0 <= self.max_escalation_fraction:
            raise ValueError("max_escalation_fraction must be >= 0")
        if self.escalation_window < 1:
            raise ValueError("escalation_window must be >= 1")
        if self.shed_queue_depth is not None and self.shed_queue_depth < 0:
            raise ValueError("shed_queue_depth must be >= 0")


@dataclasses.dataclass(frozen=True)
class RouteDecision:
    """Why one scene took the route it did.

    ``trace_id`` ties the decision to the request that submitted the
    scene (when routing ran under a request context, e.g. through the
    engine), so an operator can go from "this scene shed" to the full
    sampled span tree of the request that suffered it.
    """

    scene_index: int
    route: str  # FAST_PATH | ESCALATED | SHED
    margin: float
    reason: str
    trace_id: Optional[str] = None

    @property
    def escalation_desired(self) -> bool:
        return self.route in (ESCALATED, SHED)


class EscalationBudget:
    """Sliding-window escalation-rate limiter.

    Tracks the last ``window`` routing decisions as escalated/not flags
    and grants a new escalation iff the escalations already in the
    window stay strictly below ``fraction * window``.  Deterministic —
    no clocks — and thread-safe: the engine's workers share one budget.

    ``fraction >= 1.0`` is explicitly unlimited: with the window full of
    escalations, ``count < fraction * window`` would deny the next one
    even though every grant is within policy.
    """

    def __init__(self, fraction: float, window: int = 64) -> None:
        if fraction < 0.0:
            raise ValueError("fraction must be >= 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.fraction = fraction
        self.window = window
        self._decisions: deque = deque(maxlen=window)
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Record one routing decision; True iff escalation is granted."""
        with self._lock:
            if self.fraction >= 1.0:
                self._decisions.append(True)
                return True
            granted = sum(self._decisions) < self.fraction * self.window
            self._decisions.append(granted)
            return granted

    def record_fast_path(self) -> None:
        """A scene that never wanted escalation still ages the window."""
        with self._lock:
            self._decisions.append(False)

    @property
    def escalated_in_window(self) -> int:
        with self._lock:
            return sum(self._decisions)


class CascadeRouter:
    """Route scenes between a fast detector and a specialist.

    Parameters
    ----------
    fast:
        First-pass detector (the quantized configuration).  Every scene
        runs through it; its outputs provide the margin signal.
    specialist:
        Escalation target (the task-specific distilled configuration),
        or ``None`` — with no specialist registered for the mission the
        cascade is the fast path, margins are still observed.
    config:
        Routing policy (:class:`CascadeConfig`).
    pinned:
        Mission-fingerprint pin: the mission matched a registered
        specialist exactly, so every scene desires escalation regardless
        of margin (budget and load shedding still apply).
    queue_depth_fn:
        Optional provider of the serving queue depth, consulted per
        scene when ``config.shed_queue_depth`` is set.
    budget:
        Optional shared :class:`EscalationBudget`; built from the config
        when omitted.  The engine path passes one budget shared across
        workers.
    """

    def __init__(
        self,
        fast: TaskDetector,
        specialist: Optional[TaskDetector] = None,
        config: Optional[CascadeConfig] = None,
        pinned: bool = False,
        queue_depth_fn: Optional[Callable[[], int]] = None,
        budget: Optional[EscalationBudget] = None,
    ) -> None:
        self.fast = fast
        self.specialist = specialist
        self.config = config or CascadeConfig()
        self.pinned = pinned
        self.queue_depth_fn = queue_depth_fn
        self.budget = budget or EscalationBudget(
            self.config.max_escalation_fraction,
            self.config.escalation_window)

    # ------------------------------------------------------------------
    def _route_one(self, scene_index: int, signals: SceneSignals,
                   trace_id: Optional[str] = None) -> RouteDecision:
        """One scene's routing decision, recorded against the budget."""
        margin = signals.margin
        if self.specialist is None:
            self.budget.record_fast_path()
            return RouteDecision(scene_index, FAST_PATH, margin,
                                 "no specialist registered", trace_id)
        if self.pinned:
            reason = "mission fingerprint pinned to specialist"
        elif margin < self.config.margin_threshold:
            reason = (f"margin {margin:.4f} < "
                      f"threshold {self.config.margin_threshold:.4f}")
        else:
            self.budget.record_fast_path()
            return RouteDecision(scene_index, FAST_PATH, margin,
                                 f"margin {margin:.4f} >= threshold", trace_id)
        if (self.config.shed_queue_depth is not None
                and self.queue_depth_fn is not None
                and self.queue_depth_fn() > self.config.shed_queue_depth):
            self.budget.record_fast_path()
            return RouteDecision(scene_index, SHED, margin,
                                 "engine queue above shed depth", trace_id)
        if not self.budget.try_acquire():
            return RouteDecision(scene_index, SHED, margin,
                                 "escalation budget exhausted", trace_id)
        return RouteDecision(scene_index, ESCALATED, margin, reason, trace_id)

    def _observe(self, decisions: Sequence[RouteDecision]) -> None:
        obs = get_registry()
        for decision in decisions:
            obs.count(f"cascade.{decision.route}")
            if math.isfinite(decision.margin):
                obs.observe("cascade.margin", decision.margin)
                if decision.route == ESCALATED:
                    obs.observe("cascade.margin.escalated", decision.margin)
        sampler = get_sampler()
        if sampler is not None:
            # Tail sampling + flight recorder: shed/escalated traces are
            # retained as exemplars, and a shed storm dumps the ring.
            sampler.observe_route(decisions, registry=obs)

    # ------------------------------------------------------------------
    def detect(self, scene: Scene,
               stride: Optional[int] = None) -> Tuple[List[Detection], RouteDecision]:
        """Route one scene; returns the final detections + the decision."""
        results, decisions = self.detect_batch([scene], stride=stride)
        return results[0], decisions[0]

    def detect_batch(
        self, scenes: Sequence[Scene], stride: Optional[int] = None,
        contexts: Optional[Sequence[Optional[RequestContext]]] = None,
    ) -> Tuple[List[List[Detection]], List[RouteDecision]]:
        """Route a batch: fused fast pass, then one fused specialist pass
        over the escalated subset.  Results stay in input order; fast and
        shed scenes keep the quantized output bit for bit.

        ``contexts`` carries one :class:`RequestContext` (or None) per
        scene — the engine passes the submitters' captured contexts so
        each decision's ``trace_id`` names the request it belongs to.
        Without it, the caller's own request context (if any) covers the
        whole batch.
        """
        scenes = list(scenes)
        if not scenes:
            return [], []
        if contexts is None:
            ctx = current_context()
            contexts = [ctx] * len(scenes)
        with get_registry().span("cascade.route", scenes=len(scenes)) as span:
            results, signal_list = self.fast.detect_batch_with_signals(
                scenes, stride=stride)
            decisions = [
                self._route_one(
                    i, signals,
                    contexts[i].trace_id if contexts[i] is not None else None)
                for i, signals in enumerate(signal_list)]
            escalated = [d.scene_index for d in decisions
                         if d.route == ESCALATED]
            if escalated and self.specialist is not None:
                refined = self.specialist.detect_batch(
                    [scenes[i] for i in escalated], stride=stride)
                for i, detections in zip(escalated, refined):
                    results[i] = detections
            self._observe(decisions)
            span.set_attr(escalated=len(escalated),
                          shed=sum(d.route == SHED for d in decisions))
            return results, decisions
