"""Graph embeddings and task similarity.

The configuration selector (:mod:`repro.core.selector`) needs to decide
whether an incoming mission is "close enough" to a task it has a distilled
specialist model for.  Two complementary signals:

* :func:`graph_feature_vector` — a dense vector over all (family, value)
  pairs with signed constraint weights; cosine similarity between two
  graphs measures semantic overlap of their constraints.
* :func:`spectral_signature` — the leading Laplacian eigenvalues of the
  graph structure, a coarse shape descriptor that is invariant to value
  renaming (used only as a tiebreaker / diagnostic).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.data.ontology import ATTRIBUTE_FAMILIES
from repro.kg.schema import ConstraintKind, KnowledgeGraph

_PAIR_INDEX: Dict[Tuple[str, str], int] = {}
for _family, _values in ATTRIBUTE_FAMILIES.items():
    for _value in _values:
        _PAIR_INDEX[(_family, _value)] = len(_PAIR_INDEX)

FEATURE_DIM = len(_PAIR_INDEX)


def graph_feature_vector(kg: KnowledgeGraph) -> np.ndarray:
    """Embed a graph as a signed weight vector over (family, value) pairs.

    REQUIRES mass is positive, EXCLUDES negative, PREFERS half-positive.
    Within a REQUIRES constraint the weight is split across its allowed
    values so that a narrow constraint (one value) is a stronger feature
    than a broad one.
    """
    vec = np.zeros(FEATURE_DIM, dtype=np.float64)
    for constraint in kg.constraints:
        share = constraint.weight / len(constraint.values)
        for value in constraint.values:
            idx = _PAIR_INDEX[(constraint.family, value)]
            if constraint.kind == ConstraintKind.REQUIRES:
                vec[idx] += share
            elif constraint.kind == ConstraintKind.EXCLUDES:
                vec[idx] -= share
            else:
                vec[idx] += 0.5 * share
    return vec


def task_similarity(kg_a: KnowledgeGraph, kg_b: KnowledgeGraph) -> float:
    """Cosine similarity of two graphs' feature vectors, in [-1, 1].

    Two graphs with no constraints at all are considered identical (1.0);
    one empty and one non-empty graph score 0.
    """
    va, vb = graph_feature_vector(kg_a), graph_feature_vector(kg_b)
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na == 0.0 and nb == 0.0:
        return 1.0
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(va, vb) / (na * nb))


def spectral_signature(kg: KnowledgeGraph, k: int = 6) -> np.ndarray:
    """Leading eigenvalues of the undirected Laplacian, zero-padded to k."""
    undirected = kg.graph.to_undirected()
    if undirected.number_of_nodes() == 0:
        return np.zeros(k)
    laplacian = nx.laplacian_matrix(undirected).toarray().astype(np.float64)
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))[::-1]
    out = np.zeros(k)
    take = min(k, eigenvalues.size)
    out[:take] = eigenvalues[:take]
    return out
