"""Knowledge-graph machinery: the paper's core contribution.

iTask converts a natural-language mission description into an *abstract
knowledge graph* whose nodes are high-level attribute concepts and whose
edges encode what the task requires, prefers, or excludes.  Detection is
then a matter of matching each candidate object's predicted attribute
profile against the graph — no task-specific retraining needed, and a
handful of support examples suffice to refine the graph.

Components
----------
:class:`KnowledgeGraph`
    typed wrapper over a networkx digraph with REQUIRES / PREFERS /
    EXCLUDES constraint edges.
:class:`SimulatedLLM`
    deterministic stand-in for the paper's LLM: parses mission text into a
    graph, with controllable omission/hallucination noise for robustness
    studies.
:class:`GraphMatcher`
    scores predicted attribute distributions against a task graph.
:func:`refine_with_examples`
    few-shot graph refinement from support windows.
"""

from repro.kg.schema import (
    ConstraintKind,
    Constraint,
    KnowledgeGraph,
)
from repro.kg.llm import SimulatedLLM, LLMNoiseConfig
from repro.kg.matcher import GraphMatcher, MatchResult
from repro.kg.refinement import refine_with_examples, evidence_from_profiles
from repro.kg.embedding import graph_feature_vector, task_similarity, spectral_signature
from repro.kg.visualize import render_ascii, render_dot

__all__ = [
    "ConstraintKind",
    "Constraint",
    "KnowledgeGraph",
    "SimulatedLLM",
    "LLMNoiseConfig",
    "GraphMatcher",
    "MatchResult",
    "refine_with_examples",
    "evidence_from_profiles",
    "graph_feature_vector",
    "task_similarity",
    "spectral_signature",
    "render_ascii",
    "render_dot",
]
