"""Knowledge-graph schema.

The graph is small and typed: a single task node, one node per attribute
family it touches, and one node per attribute value, with constraint
edges:

* ``REQUIRES`` — the object's value for this family must lie in the
  connected value set (fuzzy-AND across families in the matcher);
* ``EXCLUDES`` — the value must not be one of the connected values;
* ``PREFERS``  — soft preference: boosts but never vetoes.

networkx supplies the storage and the generic graph algorithms used by
the embedding utilities; this module owns the semantics.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.data.ontology import ATTRIBUTE_FAMILIES


class ConstraintKind(enum.Enum):
    REQUIRES = "requires"
    PREFERS = "prefers"
    EXCLUDES = "excludes"


@dataclasses.dataclass(frozen=True)
class Constraint:
    """One constraint edge bundle: (kind, family, values, weight)."""

    kind: ConstraintKind
    family: str
    values: FrozenSet[str]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.family not in ATTRIBUTE_FAMILIES:
            raise KeyError(f"unknown attribute family {self.family!r}")
        unknown = set(self.values) - set(ATTRIBUTE_FAMILIES[self.family])
        if unknown:
            raise ValueError(f"unknown {self.family} values {sorted(unknown)}")
        if not self.values:
            raise ValueError("constraint with empty value set")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {self.weight}")


class KnowledgeGraph:
    """Task knowledge graph.

    Node naming convention inside the underlying digraph:
    ``task:<name>``, ``family:<family>``, ``value:<family>=<value>``.
    Edges: task→family (labelled with the constraint kind and weight) and
    family→value (membership of the constraint's value set).
    """

    def __init__(self, task_name: str, mission_text: str = "") -> None:
        self.task_name = task_name
        self.mission_text = mission_text
        self.graph = nx.DiGraph()
        self.graph.add_node(self._task_node, kind="task", label=task_name)
        self._constraints: List[Constraint] = []
        self._version = 0

    # ------------------------------------------------------------------
    @property
    def _task_node(self) -> str:
        return f"task:{self.task_name}"

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    def constraints_of(self, kind: ConstraintKind) -> List[Constraint]:
        return [c for c in self._constraints if c.kind == kind]

    def constrained_families(self) -> List[str]:
        return sorted({c.family for c in self._constraints})

    def __len__(self) -> int:
        return len(self._constraints)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{c.kind.value}({c.family}∈{{{','.join(sorted(c.values))}}}, w={c.weight:.2f})"
            for c in self._constraints
        )
        return f"KnowledgeGraph({self.task_name}: {parts})"

    # ------------------------------------------------------------------
    def add_constraint(self, constraint: Constraint) -> None:
        """Add a constraint, merging with an existing edge of the same
        (kind, family) by value-set union and max weight."""
        for i, existing in enumerate(self._constraints):
            if existing.kind == constraint.kind and existing.family == constraint.family:
                merged = Constraint(
                    kind=constraint.kind,
                    family=constraint.family,
                    values=existing.values | constraint.values,
                    weight=max(existing.weight, constraint.weight),
                )
                self._constraints[i] = merged
                self._sync_graph()
                return
        self._constraints.append(constraint)
        self._sync_graph()

    def remove_constraint(self, kind: ConstraintKind, family: str) -> bool:
        """Drop the (kind, family) constraint if present."""
        before = len(self._constraints)
        self._constraints = [
            c for c in self._constraints
            if not (c.kind == kind and c.family == family)
        ]
        changed = len(self._constraints) != before
        if changed:
            self._sync_graph()
        return changed

    def replace_constraint(self, constraint: Constraint) -> None:
        """Overwrite any existing (kind, family) edge with ``constraint``."""
        self.remove_constraint(constraint.kind, constraint.family)
        self._constraints.append(constraint)
        self._sync_graph()

    def get(self, kind: ConstraintKind, family: str) -> Optional[Constraint]:
        for c in self._constraints:
            if c.kind == kind and c.family == family:
                return c
        return None

    @property
    def version(self) -> int:
        """Monotonic edit counter; bumped on every constraint change.

        Lets consumers (e.g. :class:`repro.kg.matcher.GraphMatcher`)
        cache per-constraint index plans and invalidate them cheaply.
        """
        return self._version

    def _sync_graph(self) -> None:
        """Rebuild the networkx view from the constraint list."""
        self._version += 1
        g = nx.DiGraph()
        g.add_node(self._task_node, kind="task", label=self.task_name)
        for c in self._constraints:
            family_node = f"family:{c.family}"
            g.add_node(family_node, kind="family", label=c.family)
            g.add_edge(self._task_node, family_node,
                       kind=c.kind.value, weight=c.weight)
            for value in sorted(c.values):
                value_node = f"value:{c.family}={value}"
                g.add_node(value_node, kind="value", family=c.family, label=value)
                g.add_edge(family_node, value_node, kind=c.kind.value,
                           weight=c.weight)
        self.graph = g

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable representation."""
        return {
            "task": self.task_name,
            "mission_text": self.mission_text,
            "constraints": [
                {
                    "kind": c.kind.value,
                    "family": c.family,
                    "values": sorted(c.values),
                    "weight": c.weight,
                }
                for c in self._constraints
            ],
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "KnowledgeGraph":
        kg = KnowledgeGraph(payload["task"], payload.get("mission_text", ""))
        for entry in payload["constraints"]:
            kg.add_constraint(
                Constraint(
                    kind=ConstraintKind(entry["kind"]),
                    family=entry["family"],
                    values=frozenset(entry["values"]),
                    weight=float(entry["weight"]),
                )
            )
        return kg

    @staticmethod
    def from_predicate(task_name: str, predicate, weight: float = 1.0,
                       mission_text: str = "") -> "KnowledgeGraph":
        """Oracle graph built directly from an
        :class:`~repro.data.tasks.AttributePredicate` (upper bound for the
        LLM extraction quality studies)."""
        kg = KnowledgeGraph(task_name, mission_text)
        for family, values in predicate.allowed.items():
            kg.add_constraint(Constraint(ConstraintKind.REQUIRES, family,
                                         frozenset(values), weight))
        for family, values in predicate.forbidden.items():
            kg.add_constraint(Constraint(ConstraintKind.EXCLUDES, family,
                                         frozenset(values), weight))
        return kg
