"""Human-readable knowledge-graph rendering.

Operators need to audit what the (simulated) LLM extracted before
trusting a mission run; this module renders the graph as an ASCII tree
and as Graphviz DOT (viewable with any dot renderer, no dependency
needed to generate).
"""

from __future__ import annotations

from typing import List

from repro.kg.schema import ConstraintKind, KnowledgeGraph

_KIND_GLYPH = {
    ConstraintKind.REQUIRES: "must be",
    ConstraintKind.EXCLUDES: "must NOT be",
    ConstraintKind.PREFERS: "preferably",
}


def render_ascii(kg: KnowledgeGraph) -> str:
    """Tree rendering, one constraint per branch."""
    lines: List[str] = [f"task: {kg.task_name}"]
    if kg.mission_text:
        lines.append(f'  mission: "{kg.mission_text}"')
    constraints = kg.constraints
    if not constraints:
        lines.append("  (no constraints — every object is task-relevant)")
        return "\n".join(lines)
    for i, constraint in enumerate(constraints):
        last = i == len(constraints) - 1
        branch = "└──" if last else "├──"
        values = " | ".join(sorted(constraint.values))
        lines.append(
            f"  {branch} {constraint.family} {_KIND_GLYPH[constraint.kind]} "
            f"{{{values}}}  (w={constraint.weight:.2f})"
        )
    return "\n".join(lines)


def render_dot(kg: KnowledgeGraph) -> str:
    """Graphviz DOT source for the graph."""
    lines = [
        "digraph task_kg {",
        "  rankdir=LR;",
        f'  "task" [label="{kg.task_name}", shape=doubleoctagon];',
    ]
    styles = {
        ConstraintKind.REQUIRES: "solid",
        ConstraintKind.EXCLUDES: "dashed",
        ConstraintKind.PREFERS: "dotted",
    }
    for constraint in kg.constraints:
        family_node = f"{constraint.kind.value}_{constraint.family}"
        lines.append(
            f'  "{family_node}" [label="{constraint.family}", shape=box];'
        )
        lines.append(
            f'  "task" -> "{family_node}" '
            f'[label="{constraint.kind.value} (w={constraint.weight:.2f})", '
            f'style={styles[constraint.kind]}];'
        )
        for value in sorted(constraint.values):
            value_node = f"{family_node}__{value}"
            lines.append(f'  "{value_node}" [label="{value}", shape=ellipse];')
            lines.append(
                f'  "{family_node}" -> "{value_node}" '
                f'[style={styles[constraint.kind]}];'
            )
    lines.append("}")
    return "\n".join(lines)
