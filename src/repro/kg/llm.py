"""Simulated LLM: mission text → knowledge graph.

The paper prompts a large language model to distill a mission description
into an abstract attribute graph.  Offline we replace the LLM with a
deterministic extractor that performs the same job the prompt asks for:

1. split the mission text into clauses,
2. classify each clause as *positive*, *negated* ("ignore …", "do not
   report …") or *hedged* ("typically …", "usually …"),
3. collect attribute-vocabulary mentions per clause, and
4. emit REQUIRES / EXCLUDES / PREFERS constraints accordingly.

A noise model (:class:`LLMNoiseConfig`) injects the two failure modes a
real LLM exhibits — *omitting* a constraint and *hallucinating* one — so
the robustness ablation (experiment E8) can sweep extraction quality.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.data.ontology import ATTRIBUTE_FAMILIES
from repro.kg.schema import Constraint, ConstraintKind, KnowledgeGraph

_NEGATION_MARKERS = (
    "ignore", "do not", "don't", "never", "exclude", "avoid", "not report",
    "skip", "disregard",
)
_HEDGE_MARKERS = (
    "usually", "typically", "often", "sometimes", "mostly", "generally",
    "tend to", "likely",
)

# value -> family reverse index; vocabularies are disjoint across families.
_VALUE_TO_FAMILY: Dict[str, str] = {
    value: family
    for family, values in ATTRIBUTE_FAMILIES.items()
    for value in values
}


@dataclasses.dataclass(frozen=True)
class LLMNoiseConfig:
    """Extraction-failure model.

    ``omission_rate``: probability each extracted constraint is dropped.
    ``hallucination_rate``: probability a spurious constraint on an
    unconstrained family is added.
    ``weight_jitter``: multiplicative jitter on constraint weights.
    """

    omission_rate: float = 0.0
    hallucination_rate: float = 0.0
    weight_jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("omission_rate", "hallucination_rate", "weight_jitter"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class SimulatedLLM:
    """Deterministic mission-text → :class:`KnowledgeGraph` generator."""

    def __init__(self, noise: Optional[LLMNoiseConfig] = None) -> None:
        self.noise = noise or LLMNoiseConfig()
        self._rng = np.random.default_rng(self.noise.seed)

    # ------------------------------------------------------------------
    # clause handling
    # ------------------------------------------------------------------
    @staticmethod
    def _clauses(text: str) -> List[str]:
        """Split on sentence/clause boundaries (., ;, :)."""
        parts = re.split(r"[.;:]", text.lower())
        return [p.strip() for p in parts if p.strip()]

    @staticmethod
    def _classify_clause(clause: str) -> str:
        if any(marker in clause for marker in _NEGATION_MARKERS):
            return "negated"
        if any(marker in clause for marker in _HEDGE_MARKERS):
            return "hedged"
        return "positive"

    @staticmethod
    def _mentions(clause: str) -> Dict[str, Set[str]]:
        """Attribute-vocabulary words in the clause, grouped by family."""
        tokens = re.findall(r"[a-z]+", clause)
        found: Dict[str, Set[str]] = {}
        for token in tokens:
            family = _VALUE_TO_FAMILY.get(token)
            if family is not None:
                found.setdefault(family, set()).add(token)
        return found

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def generate(self, task_name: str, mission_text: str) -> KnowledgeGraph:
        """Produce the task knowledge graph for ``mission_text``."""
        kg = KnowledgeGraph(task_name, mission_text)
        positive: Dict[str, Set[str]] = {}
        negated: Dict[str, Set[str]] = {}
        hedged: Dict[str, Set[str]] = {}
        buckets = {"positive": positive, "negated": negated, "hedged": hedged}

        for clause in self._clauses(mission_text):
            kind = self._classify_clause(clause)
            for family, values in self._mentions(clause).items():
                buckets[kind].setdefault(family, set()).update(values)

        constraints: List[Constraint] = []
        for family, values in positive.items():
            constraints.append(
                Constraint(ConstraintKind.REQUIRES, family, frozenset(values), 1.0)
            )
        for family, values in negated.items():
            constraints.append(
                Constraint(ConstraintKind.EXCLUDES, family, frozenset(values), 1.0)
            )
        for family, values in hedged.items():
            # A hedge on an already-required family is redundant; elsewhere
            # it becomes a soft preference.
            if family not in positive:
                constraints.append(
                    Constraint(ConstraintKind.PREFERS, family, frozenset(values), 0.5)
                )

        for constraint in self._apply_noise(constraints):
            kg.add_constraint(constraint)
        return kg

    def generate_for_task(self, task) -> KnowledgeGraph:
        """Convenience: accept a :class:`~repro.data.tasks.TaskDefinition`."""
        return self.generate(task.name, task.mission_text)

    # ------------------------------------------------------------------
    # noise model
    # ------------------------------------------------------------------
    def _apply_noise(self, constraints: List[Constraint]) -> List[Constraint]:
        noise = self.noise
        if (noise.omission_rate == 0.0 and noise.hallucination_rate == 0.0
                and noise.weight_jitter == 0.0):
            return constraints

        result: List[Constraint] = []
        for constraint in constraints:
            if self._rng.random() < noise.omission_rate:
                continue  # the "LLM" forgot this requirement
            weight = constraint.weight
            if noise.weight_jitter > 0.0:
                factor = 1.0 + float(
                    self._rng.uniform(-noise.weight_jitter, noise.weight_jitter)
                )
                weight = float(np.clip(weight * factor, 0.05, 1.0))
            result.append(
                Constraint(constraint.kind, constraint.family,
                           constraint.values, weight)
            )

        if noise.hallucination_rate > 0.0:
            constrained = {c.family for c in result}
            for family, vocab in ATTRIBUTE_FAMILIES.items():
                if family in constrained:
                    continue
                if self._rng.random() < noise.hallucination_rate:
                    value = vocab[int(self._rng.integers(len(vocab)))]
                    result.append(
                        Constraint(ConstraintKind.REQUIRES, family,
                                   frozenset({value}), 1.0)
                    )
        return result
