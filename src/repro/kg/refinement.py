"""Few-shot refinement of a task knowledge graph.

The LLM-generated graph captures what the mission *text* says; the few
support examples the operator provides capture what the mission *means*.
Refinement reconciles the two:

* a family the text never constrained, but whose positive examples
  concentrate on a value set that separates them from the negatives,
  gains a REQUIRES constraint (recovering LLM omissions);
* a REQUIRES constraint contradicted by the evidence (positives routinely
  fall outside its value set) is widened or — when the evidence is strong
  — dropped (recovering hallucinations);
* constraint weights are re-estimated from the evidence margin, so the
  matcher leans hardest on the most discriminative families.

This is the mechanism behind the paper's "generalize efficiently from
limited samples" claim, and experiment E5 sweeps the number of shots.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.ontology import ATTRIBUTE_FAMILIES, AttributeProfile
from repro.kg.schema import Constraint, ConstraintKind, KnowledgeGraph


@dataclasses.dataclass
class FamilyEvidence:
    """Per-family value counts over support positives and negatives."""

    family: str
    positive_counts: Dict[str, int]
    negative_counts: Dict[str, int]

    @property
    def num_positive(self) -> int:
        return sum(self.positive_counts.values())

    @property
    def num_negative(self) -> int:
        return sum(self.negative_counts.values())

    def positive_support(self) -> frozenset:
        """Values observed among positives."""
        return frozenset(v for v, c in self.positive_counts.items() if c > 0)

    def separation(self) -> float:
        """How well the positive value set separates the classes.

        1.0 means no negative carries a positive-supported value; 0.0
        means the value set is useless for discrimination.
        """
        support = self.positive_support()
        if not support or self.num_negative == 0:
            return 0.0
        negatives_inside = sum(
            c for v, c in self.negative_counts.items() if v in support
        )
        return 1.0 - negatives_inside / self.num_negative


def evidence_from_profiles(
    positives: Sequence[AttributeProfile],
    negatives: Sequence[Optional[AttributeProfile]],
) -> Dict[str, FamilyEvidence]:
    """Tabulate attribute-value evidence from support profiles.

    Background negatives (``None``) are skipped — they carry no attribute
    information, only the object/non-object signal handled elsewhere.
    """
    evidence: Dict[str, FamilyEvidence] = {}
    for family, vocab in ATTRIBUTE_FAMILIES.items():
        pos_counts = {v: 0 for v in vocab}
        neg_counts = {v: 0 for v in vocab}
        for profile in positives:
            pos_counts[profile.as_dict()[family]] += 1
        for profile in negatives:
            if profile is not None:
                neg_counts[profile.as_dict()[family]] += 1
        evidence[family] = FamilyEvidence(family, pos_counts, neg_counts)
    return evidence


def refine_with_examples(
    kg: KnowledgeGraph,
    positives: Sequence[AttributeProfile],
    negatives: Sequence[Optional[AttributeProfile]],
    min_separation: float = 0.25,
    max_support_fraction: float = 0.6,
    contradiction_tolerance: float = 0.2,
) -> KnowledgeGraph:
    """Return a new graph reconciling ``kg`` with support evidence.

    Parameters
    ----------
    min_separation:
        Minimum :meth:`FamilyEvidence.separation` for a new REQUIRES
        constraint to be inferred on an unconstrained family.
    max_support_fraction:
        A positive value set covering more than this fraction of the
        family vocabulary is considered unconstrained (no edge added).
    contradiction_tolerance:
        Fraction of positives allowed to violate an existing REQUIRES
        edge before the edge is widened to the observed support.
    """
    if not positives:
        return KnowledgeGraph.from_dict(kg.to_dict())

    refined = KnowledgeGraph.from_dict(kg.to_dict())
    evidence = evidence_from_profiles(positives, negatives)

    for family, fam_evidence in evidence.items():
        support = fam_evidence.positive_support()
        if not support:
            continue
        existing = refined.get(ConstraintKind.REQUIRES, family)

        if existing is None:
            # Possibly an omission: infer a new constraint if the support
            # set is small and separates the classes.
            vocab_size = len(ATTRIBUTE_FAMILIES[family])
            if len(support) / vocab_size > max_support_fraction:
                continue
            separation = fam_evidence.separation()
            if separation >= min_separation:
                weight = float(np.clip(separation, 0.3, 1.0))
                refined.add_constraint(
                    Constraint(ConstraintKind.REQUIRES, family, support, weight)
                )
            continue

        # Existing REQUIRES edge: check for contradictions.
        violating = sum(
            count for value, count in fam_evidence.positive_counts.items()
            if count > 0 and value not in existing.values
        )
        violation_rate = violating / fam_evidence.num_positive
        if violation_rate > contradiction_tolerance:
            widened = existing.values | support
            if len(widened) >= len(ATTRIBUTE_FAMILIES[family]):
                # Constraint dissolved entirely — likely a hallucination.
                refined.remove_constraint(ConstraintKind.REQUIRES, family)
            else:
                refined.replace_constraint(
                    Constraint(ConstraintKind.REQUIRES, family, frozenset(widened),
                               existing.weight)
                )

    # Re-estimate weights of EXCLUDES edges: drop any excluded value the
    # positives actually exhibit (text said "ignore X" but examples show X).
    for constraint in refined.constraints_of(ConstraintKind.EXCLUDES):
        fam_evidence = evidence[constraint.family]
        contradicted = {
            value for value in constraint.values
            if fam_evidence.positive_counts.get(value, 0) > 0
        }
        if contradicted:
            remaining = constraint.values - contradicted
            refined.remove_constraint(ConstraintKind.EXCLUDES, constraint.family)
            if remaining:
                refined.add_constraint(
                    Constraint(ConstraintKind.EXCLUDES, constraint.family,
                               frozenset(remaining), constraint.weight)
                )
    return refined
