"""Graph matching: scoring attribute predictions against a task graph.

The matcher turns per-family attribute probability distributions (the ViT
attribute heads' softmax outputs) into a task-relevance score in [0, 1]:

* each REQUIRES constraint contributes the probability mass on its
  allowed value set,
* each EXCLUDES constraint contributes one minus the mass on its excluded
  set,
* contributions combine as a weighted geometric mean (fuzzy AND), so a
  single confidently violated requirement vetoes the match,
* PREFERS constraints rescale the score by at most ``preference_gamma``
  but never veto.

Scores are monotone in each constraint's satisfied mass — a property the
test suite checks with hypothesis.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.ontology import ATTRIBUTE_FAMILIES, AttributeProfile, attribute_index
from repro.kg.schema import Constraint, ConstraintKind, KnowledgeGraph
from repro.obs import get_registry

ArrayLike = Union[np.ndarray, "list"]


@dataclasses.dataclass(frozen=True)
class _ConstraintPlan:
    """Precomputed lookup for one constraint: resolved value indices.

    ``attribute_index`` is a dict walk per value; resolving once at plan
    build time turns ``match_distributions`` into a handful of numpy
    gathers per constraint instead of per-call Python index resolution.
    """

    constraint: Constraint
    indices: np.ndarray   # sorted positions of the value set in the family vocab
    cardinality: int      # |family vocabulary|, for the uniform fallback


@dataclasses.dataclass
class MatchResult:
    """Score plus the per-constraint breakdown (for explainability)."""

    score: np.ndarray                      # (N,) in [0, 1]
    per_constraint: Dict[str, np.ndarray]  # "kind:family" -> (N,)

    def accept(self, threshold: float = 0.5) -> np.ndarray:
        return self.score >= threshold


class GraphMatcher:
    """Match attribute distributions against one knowledge graph.

    Parameters
    ----------
    kg:
        The task knowledge graph.
    preference_gamma:
        Maximum down-scaling applied when a PREFERS constraint is fully
        unsatisfied (0 disables preferences entirely).
    floor:
        Numerical floor for constraint scores inside the geometric mean;
        keeps one zero-probability family from producing NaNs.
    """

    def __init__(self, kg: KnowledgeGraph, preference_gamma: float = 0.15,
                 floor: float = 1e-6) -> None:
        if not 0.0 <= preference_gamma < 1.0:
            raise ValueError("preference_gamma must be in [0, 1)")
        self.kg = kg
        self.preference_gamma = preference_gamma
        self.floor = floor
        self._plan: List[_ConstraintPlan] = []
        self._plan_version = -1
        self._constraint_plan()

    # ------------------------------------------------------------------
    def _constraint_plan(self) -> List[_ConstraintPlan]:
        """Per-constraint index arrays, rebuilt when the KG is edited."""
        if self._plan_version != self.kg.version:
            self._plan = [
                _ConstraintPlan(
                    constraint=c,
                    indices=np.array(
                        sorted(attribute_index(c.family, v) for v in c.values),
                        dtype=np.intp,
                    ),
                    cardinality=len(ATTRIBUTE_FAMILIES[c.family]),
                )
                for c in self.kg.constraints
            ]
            self._plan_version = self.kg.version
        return self._plan

    def _mass(self, probs: np.ndarray, family: str, values) -> np.ndarray:
        indices = [attribute_index(family, v) for v in values]
        return probs[..., indices].sum(axis=-1)

    def match_distributions(
        self, attribute_probs: Mapping[str, np.ndarray]
    ) -> MatchResult:
        """Score batched attribute distributions.

        ``attribute_probs[family]`` has shape ``(N, |family|)`` and rows
        summing to one.  Families missing from the mapping are treated as
        uniform (maximum uncertainty).
        """
        with get_registry().span(
            "kg.match", task=self.kg.task_name,
            constraints=len(self.kg.constraints),
        ) as span:
            first = next(iter(attribute_probs.values()), None)
            batch = 1 if first is None else np.asarray(first).shape[0]
            span.set_attr(batch=batch)

            log_score = np.zeros(batch, dtype=np.float64)
            total_weight = 0.0
            preference_factor = np.ones(batch, dtype=np.float64)
            breakdown: Dict[str, np.ndarray] = {}

            for plan in self._constraint_plan():
                constraint = plan.constraint
                family = constraint.family
                if family in attribute_probs:
                    probs = np.asarray(attribute_probs[family], dtype=np.float64)
                    mass = probs[..., plan.indices].sum(axis=-1)
                else:
                    # Uniform distribution: mass is |values| / |vocabulary|.
                    mass = np.full(
                        batch, plan.indices.size / plan.cardinality,
                        dtype=np.float64,
                    )

                if constraint.kind == ConstraintKind.REQUIRES:
                    satisfied = mass
                elif constraint.kind == ConstraintKind.EXCLUDES:
                    satisfied = 1.0 - mass
                else:  # PREFERS: soft rescale, outside the geometric mean
                    factor = 1.0 - self.preference_gamma * constraint.weight * (1.0 - mass)
                    # An over-weighted preference (weight > 1/gamma) would
                    # drive the factor negative — and two such violations
                    # would multiply back positive, *raising* the score.
                    # Preferences dampen, never veto and never flip sign.
                    preference_factor *= np.clip(factor, 0.0, 1.0)
                    breakdown[f"prefers:{family}"] = mass
                    continue

                satisfied = np.clip(satisfied, self.floor, 1.0)
                log_score += constraint.weight * np.log(satisfied)
                total_weight += constraint.weight
                breakdown[f"{constraint.kind.value}:{family}"] = satisfied

            if total_weight > 0.0:
                score = np.exp(log_score / total_weight)
            else:
                # No hard constraints: every object is task-relevant.
                score = np.ones(batch, dtype=np.float64)
            score = np.clip(score * preference_factor, 0.0, 1.0)
            return MatchResult(score=score, per_constraint=breakdown)

    def match_batch(
        self,
        attribute_probs: Mapping[str, np.ndarray],
        counts: Sequence[int],
    ) -> List[MatchResult]:
        """Score several scenes' windows in one vectorized pass.

        ``attribute_probs`` holds the scenes' rows concatenated along
        axis 0; ``counts[i]`` is scene *i*'s row count.  Because scoring
        is purely row-wise, one concatenated pass is bit-identical to
        per-scene :meth:`match_distributions` calls while paying the
        constraint-loop overhead once for the whole batch.
        """
        counts = list(counts)
        first = next(iter(attribute_probs.values()), None)
        batch = 0 if first is None else np.asarray(first).shape[0]
        if sum(counts) != batch:
            raise ValueError(
                f"counts sum to {sum(counts)} but attribute rows total {batch}")
        merged = self.match_distributions(attribute_probs)
        results: List[MatchResult] = []
        start = 0
        for n in counts:
            stop = start + n
            results.append(MatchResult(
                score=merged.score[start:stop],
                per_constraint={
                    key: values[start:stop]
                    for key, values in merged.per_constraint.items()
                },
            ))
            start = stop
        return results

    # ------------------------------------------------------------------
    def match_profiles(self, profiles: List[Optional[AttributeProfile]]) -> MatchResult:
        """Score hard (ground-truth) profiles: one-hot distributions.

        ``None`` entries (background windows) score zero.
        """
        batch = len(profiles)
        dists: Dict[str, np.ndarray] = {}
        valid = np.array([p is not None for p in profiles])
        for family, vocab in ATTRIBUTE_FAMILIES.items():
            probs = np.full((batch, len(vocab)), 1.0 / len(vocab))
            for i, profile in enumerate(profiles):
                if profile is not None:
                    probs[i] = 0.0
                    probs[i, attribute_index(family, profile.as_dict()[family])] = 1.0
            dists[family] = probs
        result = self.match_distributions(dists)
        result.score = result.score * valid
        return result

    def explain(self, attribute_probs: Mapping[str, np.ndarray],
                index: int = 0) -> str:
        """Human-readable per-constraint report for one sample."""
        result = self.match_distributions(attribute_probs)
        lines = [f"task {self.kg.task_name!r}: score={result.score[index]:.3f}"]
        for key, values in sorted(result.per_constraint.items()):
            lines.append(f"  {key:<22} satisfied={values[index]:.3f}")
        return "\n".join(lines)
