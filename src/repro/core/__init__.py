"""The iTask framework: task specs, dual configurations, deployment.

This is the paper's system layer.  A mission arrives as a
:class:`TaskSpec` (text + optional support examples); the pipeline

1. asks the (simulated) LLM for the task knowledge graph,
2. refines the graph with the support examples,
3. selects a model configuration — the distilled *task-specific* ViT
   when a suitable specialist exists, otherwise the *quantized*
   multi-task ViT (:class:`ConfigurationSelector`),
4. deploys on the chosen backend (CPU float execution, or the
   accelerator for the quantized configuration) and runs task-oriented
   detection.
"""

from repro.core.taskspec import TaskSpec
from repro.core.configurations import (
    ModelConfiguration,
    TaskSpecificConfiguration,
    QuantizedConfiguration,
    build_teacher,
    build_multitask_student,
    distill_task_student,
    build_quantized_configuration,
)
from repro.core.selector import ConfigurationSelector, SelectionDecision
from repro.core.pipeline import ITaskPipeline, PipelineResult
from repro.core.registry import (
    ArtifactStatus,
    CorruptArtifactError,
    ModelRegistry,
)
from repro.core.locks import FileLock, LockTimeout
from repro.core.artifacts import (
    ArtifactBuilder,
    default_artifact_dir,
    strict_mode_default,
)

__all__ = [
    "TaskSpec",
    "ModelConfiguration",
    "TaskSpecificConfiguration",
    "QuantizedConfiguration",
    "build_teacher",
    "build_multitask_student",
    "distill_task_student",
    "build_quantized_configuration",
    "ConfigurationSelector",
    "SelectionDecision",
    "ITaskPipeline",
    "PipelineResult",
    "ModelRegistry",
    "ArtifactStatus",
    "CorruptArtifactError",
    "FileLock",
    "LockTimeout",
    "ArtifactBuilder",
    "default_artifact_dir",
    "strict_mode_default",
]
