"""Task specification: what the operator hands the system."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.data.ontology import AttributeProfile
from repro.data.tasks import TaskDefinition


@dataclasses.dataclass
class TaskSpec:
    """A mission as the system receives it.

    ``support_positives``/``support_negatives`` are the "limited samples"
    of the paper: a handful of annotated example objects (their attribute
    profiles) used to refine the LLM-generated knowledge graph.  The
    ``definition`` backlink is optional and used only by evaluation code
    (ground truth); the pipeline itself never reads it.
    """

    name: str
    mission_text: str
    support_positives: List[AttributeProfile] = dataclasses.field(default_factory=list)
    support_negatives: List[Optional[AttributeProfile]] = dataclasses.field(default_factory=list)
    definition: Optional[TaskDefinition] = None

    @staticmethod
    def from_definition(task: TaskDefinition,
                        support_positives: Sequence[AttributeProfile] = (),
                        support_negatives: Sequence[Optional[AttributeProfile]] = ()) -> "TaskSpec":
        return TaskSpec(
            name=task.name,
            mission_text=task.mission_text,
            support_positives=list(support_positives),
            support_negatives=list(support_negatives),
            definition=task,
        )

    @property
    def num_shots(self) -> int:
        return len(self.support_positives)
