"""Advisory per-key file locks for the artifact cache.

Two benchmark processes that both need the same uncached teacher must not
train it twice (wasted minutes) or interleave writes to the same
checkpoint files.  :class:`FileLock` serializes them: the first holder
trains and publishes, the second blocks, re-validates, and loads the
fresh checkpoint.

The primary implementation uses ``fcntl.flock`` on a sidecar ``.lock``
file — kernel-released when the holder exits, so a crashed trainer never
wedges the cache.  On platforms without ``fcntl`` (or when
``REPRO_ARTIFACT_LOCK_MODE=exclusive`` forces it, e.g. for filesystems
with unreliable flock semantics) an ``O_CREAT | O_EXCL`` fallback is
used, with mtime-based stale-lock breaking since nothing releases the
file automatically on crash.
"""

from __future__ import annotations

import os
import time
from typing import Optional

try:  # pragma: no cover - platform dependent
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock", "LockTimeout"]


class LockTimeout(TimeoutError):
    """Raised when a lock cannot be acquired within the timeout."""


def _flock_available() -> bool:
    if os.environ.get("REPRO_ARTIFACT_LOCK_MODE", "").lower() == "exclusive":
        return False
    return fcntl is not None


class FileLock:
    """Exclusive advisory lock on ``path`` with timeout + stale breaking.

    Usage::

        with FileLock(registry.lock_path(key), timeout=600):
            ...  # validate / train / save

    Reentrant acquisition from the same :class:`FileLock` instance is an
    error; use one instance per critical section.
    """

    def __init__(self, path: str, timeout: float = 600.0,
                 poll_interval: float = 0.05,
                 stale_after: float = 3600.0) -> None:
        self.path = os.path.abspath(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._fd: Optional[int] = None
        self._use_flock = _flock_available()

    # ------------------------------------------------------------------
    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if self.held:
            raise RuntimeError(f"lock {self.path!r} already held by this instance")
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                return self
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire artifact lock {self.path!r} within "
                    f"{self.timeout:.1f}s (another process may be training this "
                    f"key; remove the lock file if it is stale)")
            time.sleep(self.poll_interval)

    def release(self) -> None:
        if not self.held:
            return
        fd, self._fd = self._fd, None
        try:
            # Unlink before dropping the lock so a waiter that grabs the old
            # inode immediately re-checks against the path (see _try_acquire).
            os.unlink(self.path)
        except OSError:
            pass
        if self._use_flock:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
        os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        if self._use_flock:
            return self._try_flock()
        return self._try_exclusive_create()

    def _try_flock(self) -> bool:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        # The holder that released may have unlinked the path between our
        # open() and flock(); if the inode we locked is no longer the one at
        # the path, the lock protects nothing — retry on the fresh file.
        try:
            if os.fstat(fd).st_ino != os.stat(self.path).st_ino:
                raise OSError
        except OSError:
            os.close(fd)
            return False
        self._stamp(fd)
        self._fd = fd
        return True

    def _try_exclusive_create(self) -> bool:
        try:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            self._break_if_stale()
            return False
        self._stamp(fd)
        self._fd = fd
        return True

    def _break_if_stale(self) -> None:
        """O_EXCL mode only: a crash leaves the file behind forever, so a
        lock file older than ``stale_after`` is presumed dead and removed."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # already gone
        if age > self.stale_after:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def _stamp(self, fd: int) -> None:
        try:
            os.ftruncate(fd, 0)
            os.write(fd, f"pid={os.getpid()} time={time.time():.0f}\n".encode())
        except OSError:
            pass
