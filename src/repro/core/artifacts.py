"""Artifact cache: train once, reuse across examples and benchmarks.

Teacher training plus eight specialist distillations take a few minutes
of single-core CPU; the benchmarks regenerating the paper's tables
should not each pay that.  :class:`ArtifactBuilder` memoizes trained
models in a :class:`~repro.core.registry.ModelRegistry` under the repo's
``.artifacts/`` directory (override with ``REPRO_ARTIFACT_DIR``), keyed
by a schema-version string so stale caches invalidate themselves when
training recipes change.

The cache is *self-healing*: every lookup runs the registry's integrity
checks, and a damaged entry (orphaned meta, truncated or bit-flipped
``.npz``, key-set drift) is quarantined to ``.artifacts/quarantine/``
and transparently retrained instead of crashing the benchmark.  Setting
``REPRO_ARTIFACT_STRICT=1`` (or ``strict=True``) flips that policy for
CI: corruption raises :class:`~repro.core.registry.CorruptArtifactError`
naming the damaged files.  A per-key :class:`~repro.core.locks.FileLock`
makes concurrent builders safe — two processes requesting the same
uncached key produce exactly one training run; the loser blocks, then
loads the winner's checkpoint.

Cache traffic is observable through the process-wide
:mod:`repro.obs` registry::

    artifacts.cache.hit / .miss / .corrupt / .quarantined / .rebuild

plus ``artifacts.load`` / ``artifacts.train`` timers, so a benchmark's
``registry.report()`` shows exactly what the cache did.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.configurations import (
    QuantizedConfiguration,
    TaskSpecificConfiguration,
    build_multitask_student,
    build_quantized_configuration,
    build_teacher,
    distill_task_student,
)
from repro.core.locks import FileLock
from repro.core.registry import CorruptArtifactError, ModelRegistry
from repro.data.tasks import TaskDefinition, get_task
from repro.nn import VisionTransformer
from repro.obs import get_registry as get_obs_registry

SCHEMA_VERSION = "v2"

_COUNTERS = ("hit", "miss", "corrupt", "quarantined", "rebuild")


def default_artifact_dir() -> str:
    override = os.environ.get("REPRO_ARTIFACT_DIR")
    if override:
        return override
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(package_root, ".artifacts")


def strict_mode_default() -> bool:
    """Read ``REPRO_ARTIFACT_STRICT`` (truthy: 1/true/yes/on)."""
    raw = os.environ.get("REPRO_ARTIFACT_STRICT", "")
    return raw.strip().lower() in {"1", "true", "yes", "on"}


class ArtifactBuilder:
    """Build-or-load trained models (self-healing; see module docs)."""

    def __init__(self, root: Optional[str] = None, seed: int = 0,
                 teacher_epochs: int = 25, student_epochs: int = 20,
                 specialist_epochs: int = 30, verbose: bool = True,
                 strict: Optional[bool] = None,
                 lock_timeout: float = 900.0) -> None:
        self.registry = ModelRegistry(root or default_artifact_dir())
        self.seed = seed
        self.teacher_epochs = teacher_epochs
        self.student_epochs = student_epochs
        self.specialist_epochs = specialist_epochs
        self.verbose = verbose
        self.strict = strict
        self.lock_timeout = lock_timeout

    def _key(self, name: str) -> str:
        return (f"{SCHEMA_VERSION}-s{self.seed}"
                f"-e{self.teacher_epochs}x{self.student_epochs}-{name}")

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[artifacts] {message}")

    def _strict(self) -> bool:
        # Resolved per call so tests/CI can toggle the env var after
        # construction (builders are long-lived module singletons).
        return strict_mode_default() if self.strict is None else self.strict

    # ------------------------------------------------------------------
    def _get_or_build(self, name: str,
                      build: Callable[[], VisionTransformer],
                      extra: Dict) -> VisionTransformer:
        """The cache protocol: lock -> validate -> load | quarantine -> train."""
        key = self._key(name)
        obs = get_obs_registry()
        for counter in _COUNTERS:  # materialize so reports always show them
            obs.counter(f"artifacts.cache.{counter}")
        with FileLock(self.registry.lock_path(key), timeout=self.lock_timeout):
            status = self.registry.validate(key)
            if status.ok:
                try:
                    with obs.time("artifacts.load"):
                        model = self.registry.load(key)
                except CorruptArtifactError as exc:
                    # validate() passed but deep load checks did not
                    status.ok, status.problems = False, exc.problems
                else:
                    obs.count("artifacts.cache.hit")
                    return model
            if status.corrupt:
                obs.count("artifacts.cache.corrupt")
                if self._strict():
                    raise CorruptArtifactError(
                        key, status.problems,
                        [status.meta_path, status.weights_path])
                moved = self.registry.quarantine(key)
                obs.count("artifacts.cache.quarantined")
                self._log(
                    f"quarantined corrupt artifact {key!r} "
                    f"({'; '.join(status.problems)}) -> "
                    f"{self.registry.quarantine_root}; retraining "
                    f"[{len(moved)} file(s) preserved]")
            else:
                obs.count("artifacts.cache.miss")
            obs.count("artifacts.cache.rebuild")
            with obs.time("artifacts.train"):
                model = build()
            self.registry.save(key, model, extra=extra)
            return model

    # ------------------------------------------------------------------
    def teacher(self) -> VisionTransformer:
        def build() -> VisionTransformer:
            self._log(f"training teacher ({self.teacher_epochs} epochs)...")
            return build_teacher(epochs=self.teacher_epochs, seed=self.seed)

        return self._get_or_build("teacher", build, {"role": "teacher"})

    def multitask_student(self) -> VisionTransformer:
        def build() -> VisionTransformer:
            teacher = self.teacher()
            self._log(f"distilling multi-task student "
                      f"({self.student_epochs} epochs)...")
            return build_multitask_student(
                teacher, epochs=self.student_epochs, seed=self.seed + 1,
            )

        return self._get_or_build("student-multitask", build,
                                  {"role": "student-multitask"})

    def task_student(self, task: TaskDefinition) -> TaskSpecificConfiguration:
        def build() -> VisionTransformer:
            teacher = self.teacher()
            self._log(f"distilling specialist for {task.name!r}...")
            configuration = distill_task_student(
                teacher, task, epochs=self.specialist_epochs,
                seed=self.seed + 2, num_positive=300, num_negative=360,
            )
            return configuration.student

        model = self._get_or_build(
            f"specialist{self.specialist_epochs}-{task.name}", build,
            {"role": "student-task", "task": task.name})
        return TaskSpecificConfiguration(
            name=f"task-specific:{task.name}", kind="task_specific",
            student=model, task_name=task.name,
        )

    def task_student_by_name(self, task_name: str) -> TaskSpecificConfiguration:
        return self.task_student(get_task(task_name))

    def quantized(self, weight_bits: int = 8,
                  act_bits: int = 8) -> QuantizedConfiguration:
        """Quantize the cached multi-task student (PTQ is fast, not cached)."""
        student = self.multitask_student()
        return build_quantized_configuration(
            student, weight_bits=weight_bits, act_bits=act_bits,
            seed=self.seed + 3,
        )
