"""Artifact cache: train once, reuse across examples and benchmarks.

Teacher training plus eight specialist distillations take a few minutes
of single-core CPU; the benchmarks regenerating the paper's tables
should not each pay that.  :class:`ArtifactBuilder` memoizes trained
models in a :class:`~repro.core.registry.ModelRegistry` under the repo's
``.artifacts/`` directory (override with ``REPRO_ARTIFACT_DIR``), keyed
by a schema-version string so stale caches invalidate themselves when
training recipes change.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.core.configurations import (
    QuantizedConfiguration,
    TaskSpecificConfiguration,
    build_multitask_student,
    build_quantized_configuration,
    build_teacher,
    distill_task_student,
)
from repro.core.registry import ModelRegistry
from repro.data.tasks import TaskDefinition, get_task
from repro.nn import VisionTransformer

SCHEMA_VERSION = "v2"


def default_artifact_dir() -> str:
    override = os.environ.get("REPRO_ARTIFACT_DIR")
    if override:
        return override
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(package_root, ".artifacts")


class ArtifactBuilder:
    """Build-or-load trained models."""

    def __init__(self, root: Optional[str] = None, seed: int = 0,
                 teacher_epochs: int = 25, student_epochs: int = 20,
                 specialist_epochs: int = 30, verbose: bool = True) -> None:
        self.registry = ModelRegistry(root or default_artifact_dir())
        self.seed = seed
        self.teacher_epochs = teacher_epochs
        self.student_epochs = student_epochs
        self.specialist_epochs = specialist_epochs
        self.verbose = verbose

    def _key(self, name: str) -> str:
        return (f"{SCHEMA_VERSION}-s{self.seed}"
                f"-e{self.teacher_epochs}x{self.student_epochs}-{name}")

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[artifacts] {message}")

    # ------------------------------------------------------------------
    def teacher(self) -> VisionTransformer:
        key = self._key("teacher")
        if self.registry.exists(key):
            return self.registry.load(key)
        self._log(f"training teacher ({self.teacher_epochs} epochs)...")
        model = build_teacher(epochs=self.teacher_epochs, seed=self.seed)
        self.registry.save(key, model, extra={"role": "teacher"})
        return model

    def multitask_student(self) -> VisionTransformer:
        key = self._key("student-multitask")
        if self.registry.exists(key):
            return self.registry.load(key)
        teacher = self.teacher()
        self._log(f"distilling multi-task student ({self.student_epochs} epochs)...")
        model = build_multitask_student(
            teacher, epochs=self.student_epochs, seed=self.seed + 1,
        )
        self.registry.save(key, model, extra={"role": "student-multitask"})
        return model

    def task_student(self, task: TaskDefinition) -> TaskSpecificConfiguration:
        key = self._key(f"specialist{self.specialist_epochs}-{task.name}")
        if self.registry.exists(key):
            model = self.registry.load(key)
            return TaskSpecificConfiguration(
                name=f"task-specific:{task.name}", kind="task_specific",
                student=model, task_name=task.name,
            )
        teacher = self.teacher()
        self._log(f"distilling specialist for {task.name!r}...")
        configuration = distill_task_student(
            teacher, task, epochs=self.specialist_epochs, seed=self.seed + 2,
            num_positive=300, num_negative=360,
        )
        self.registry.save(key, configuration.student,
                           extra={"role": "student-task", "task": task.name})
        return configuration

    def task_student_by_name(self, task_name: str) -> TaskSpecificConfiguration:
        return self.task_student(get_task(task_name))

    def quantized(self, weight_bits: int = 8,
                  act_bits: int = 8) -> QuantizedConfiguration:
        """Quantize the cached multi-task student (PTQ is fast, not cached)."""
        student = self.multitask_student()
        return build_quantized_configuration(
            student, weight_bits=weight_bits, act_bits=act_bits,
            seed=self.seed + 3,
        )
