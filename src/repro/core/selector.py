"""Situational configuration selection.

The paper's "dual-configuration approach and situational adaptability":
given an incoming mission, decide whether to deploy a distilled
specialist (best accuracy, one task) or the quantized generalist (robust
across tasks, accelerator-ready).  The policy:

1. embed the mission's knowledge graph and compare it against the graphs
   of the available specialists (:func:`repro.kg.task_similarity`);
2. if the best similarity clears ``similarity_threshold`` and the caller
   is not asking for multi-task operation, pick that specialist;
3. otherwise fall back to the quantized generalist.

A latency budget can force the quantized configuration regardless, since
only it runs on the accelerator.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.kg.embedding import task_similarity
from repro.kg.schema import KnowledgeGraph


@dataclasses.dataclass
class SelectionDecision:
    """Outcome of configuration selection, with its rationale."""

    kind: str                      # "task_specific" | "quantized"
    specialist_name: Optional[str]
    similarity: float
    rationale: str


class ConfigurationSelector:
    """Choose between specialists and the quantized generalist."""

    def __init__(
        self,
        specialist_graphs: Optional[Dict[str, KnowledgeGraph]] = None,
        similarity_threshold: float = 0.8,
        accelerator_latency_ms: Optional[float] = None,
        specialist_latency_ms: Optional[float] = None,
    ) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        self.specialist_graphs = dict(specialist_graphs or {})
        self.similarity_threshold = similarity_threshold
        self.accelerator_latency_ms = accelerator_latency_ms
        self.specialist_latency_ms = specialist_latency_ms

    def register_specialist(self, name: str, kg: KnowledgeGraph) -> None:
        self.specialist_graphs[name] = kg

    def best_specialist(self, kg: KnowledgeGraph) -> Tuple[Optional[str], float]:
        best_name, best_sim = None, -1.0
        for name, specialist_kg in self.specialist_graphs.items():
            sim = task_similarity(kg, specialist_kg)
            if sim > best_sim:
                best_name, best_sim = name, sim
        return best_name, best_sim

    def select(
        self,
        kg: KnowledgeGraph,
        multi_task: bool = False,
        latency_budget_ms: Optional[float] = None,
    ) -> SelectionDecision:
        """Pick a configuration for the mission graph ``kg``."""
        if multi_task:
            return SelectionDecision(
                kind="quantized", specialist_name=None, similarity=0.0,
                rationale="multi-task operation requested; generalist required",
            )
        if (
            latency_budget_ms is not None
            and self.specialist_latency_ms is not None
            and self.specialist_latency_ms > latency_budget_ms
        ):
            if (self.accelerator_latency_ms is None
                    or self.accelerator_latency_ms <= latency_budget_ms):
                return SelectionDecision(
                    kind="quantized", specialist_name=None, similarity=0.0,
                    rationale=(
                        f"latency budget {latency_budget_ms} ms rules out the "
                        "float specialist; quantized configuration deploys on "
                        "the accelerator"
                    ),
                )
        name, similarity = self.best_specialist(kg)
        if name is not None and similarity >= self.similarity_threshold:
            return SelectionDecision(
                kind="task_specific", specialist_name=name,
                similarity=similarity,
                rationale=(
                    f"specialist {name!r} matches the mission graph "
                    f"(similarity {similarity:.2f} ≥ {self.similarity_threshold})"
                ),
            )
        return SelectionDecision(
            kind="quantized", specialist_name=None,
            similarity=max(similarity, 0.0),
            rationale=(
                "no specialist close enough "
                f"(best similarity {similarity:.2f} < {self.similarity_threshold})"
            ),
        )
