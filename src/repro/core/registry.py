"""Model registry: persist and reload configurations by name."""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

import numpy as np

from repro.data import attribute_head_spec
from repro.data.datasets import num_classes
from repro.nn import VisionTransformer, ViTConfig, load_state_dict, save_state_dict


class ModelRegistry:
    """Directory-backed store of named ViT checkpoints.

    Layout: ``<root>/<name>.npz`` (weights) + ``<root>/<name>.json``
    (the ViTConfig needed to rebuild the module).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _paths(self, name: str) -> Dict[str, str]:
        safe = name.replace("/", "_")
        return {
            "weights": os.path.join(self.root, f"{safe}.npz"),
            "meta": os.path.join(self.root, f"{safe}.json"),
        }

    # ------------------------------------------------------------------
    def save(self, name: str, model: VisionTransformer,
             extra: Optional[Dict] = None) -> None:
        paths = self._paths(name)
        save_state_dict(model.state_dict(), paths["weights"])
        cfg = model.config
        meta = {
            "image_size": cfg.image_size,
            "patch_size": cfg.patch_size,
            "in_channels": cfg.in_channels,
            "dim": cfg.dim,
            "depth": cfg.depth,
            "num_heads": cfg.num_heads,
            "mlp_ratio": cfg.mlp_ratio,
            "num_classes": cfg.num_classes,
            "attribute_heads": list(map(list, cfg.attribute_heads)),
            "with_task_head": cfg.with_task_head,
            "extra": extra or {},
        }
        with open(paths["meta"], "w") as handle:
            json.dump(meta, handle, indent=2)

    def load(self, name: str) -> VisionTransformer:
        paths = self._paths(name)
        if not os.path.exists(paths["meta"]):
            raise FileNotFoundError(f"no registered model named {name!r}")
        with open(paths["meta"]) as handle:
            meta = json.load(handle)
        config = ViTConfig(
            image_size=meta["image_size"],
            patch_size=meta["patch_size"],
            in_channels=meta["in_channels"],
            dim=meta["dim"],
            depth=meta["depth"],
            num_heads=meta["num_heads"],
            mlp_ratio=meta["mlp_ratio"],
            num_classes=meta["num_classes"],
            attribute_heads=tuple(
                (name_, card) for name_, card in meta["attribute_heads"]
            ),
            with_task_head=meta.get("with_task_head", False),
        )
        model = VisionTransformer(config, rng=np.random.default_rng(0))
        model.load_state_dict(load_state_dict(paths["weights"]))
        model.eval()
        return model

    def exists(self, name: str) -> bool:
        return os.path.exists(self._paths(name)["meta"])

    def names(self) -> List[str]:
        return sorted(
            fname[:-5] for fname in os.listdir(self.root) if fname.endswith(".json")
        )

    def metadata(self, name: str) -> Dict:
        with open(self._paths(name)["meta"]) as handle:
            return json.load(handle)
