"""Model registry: persist and reload checkpoints with integrity checking.

Each named model is a pair of files — ``<root>/<key>.npz`` (weights) and
``<root>/<key>.json`` (the :class:`~repro.nn.ViTConfig` needed to rebuild
the module, plus an ``integrity`` block recording the weights file's
SHA-256 digest, byte size, and state-dict key set).  The registry treats
that pair as one transactional unit:

* **Atomic publication** — weights are written first (temp file +
  ``os.replace``), the meta last, so a crash can never publish a meta
  without its weights; readers either see the old checkpoint or the new
  one, never a torn write.
* **Verification on read** — :meth:`validate` (and therefore
  :meth:`exists` and :meth:`load`) checks both files exist, the meta
  parses, the digest/size/key set match, and the archive actually
  decompresses, before any weights reach a model.
* **Quarantine, not deletion** — :meth:`quarantine` moves a damaged pair
  into ``<root>/quarantine/`` so the bytes survive for post-mortem while
  the cache heals itself by retraining.

Registry names are percent-encoded into filenames (RFC 3986 unreserved
characters pass through), so distinct names like ``"a/b"`` and ``"a_b"``
can never collide on disk and :meth:`names` round-trips exactly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import urllib.parse
from typing import Dict, List, Optional

import numpy as np

from repro.nn import (
    VisionTransformer,
    ViTConfig,
    load_state_dict,
    save_state_dict,
)
from repro.nn.serialization import atomic_write_bytes, file_sha256, state_dict_keys

META_FORMAT_VERSION = 2

_CONFIG_FIELDS = (
    "image_size", "patch_size", "in_channels", "dim", "depth",
    "num_heads", "mlp_ratio", "num_classes", "attribute_heads",
)


class CorruptArtifactError(RuntimeError):
    """A registered checkpoint exists on disk but failed integrity checks.

    ``problems`` lists every failed check; ``paths`` names the offending
    files so strict-mode callers (CI) can report exactly what is damaged.
    """

    def __init__(self, name: str, problems: List[str],
                 paths: Optional[List[str]] = None) -> None:
        self.name = name
        self.problems = list(problems)
        self.paths = list(paths or [])
        detail = "; ".join(self.problems) or "unknown corruption"
        where = f" [{', '.join(self.paths)}]" if self.paths else ""
        super().__init__(f"corrupt artifact {name!r}: {detail}{where}")


@dataclasses.dataclass
class ArtifactStatus:
    """Outcome of validating one registry entry."""

    name: str
    ok: bool
    missing: bool          # neither file present (a clean cache miss)
    problems: List[str]
    weights_path: str
    meta_path: str

    @property
    def corrupt(self) -> bool:
        return not self.ok and not self.missing


def _lock_is_held(path: str) -> bool:
    """Best-effort probe: is some process currently flock-holding ``path``?

    Without ``fcntl`` (or on flock failure for other reasons) falls back
    to treating young lock files (< 1 h) as live.
    """
    try:
        import fcntl
    except ImportError:
        fcntl = None
    if fcntl is not None:
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return False  # vanished — nothing to hold
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            return True
        else:
            fcntl.flock(fd, fcntl.LOCK_UN)
            return False
        finally:
            os.close(fd)
    try:
        import time
        return (time.time() - os.stat(path).st_mtime) < 3600.0
    except OSError:
        return False


def _sanitize(name: str) -> str:
    """Injective name -> filename-stem mapping (percent-encoding).

    Unreserved characters (letters, digits, ``-._~``) map to themselves,
    so every key the builder has historically generated keeps its
    filename; anything else — ``/``, spaces, ``%`` itself — is escaped,
    so distinct names can never share files.
    """
    return urllib.parse.quote(name, safe="")


def _unsanitize(stem: str) -> str:
    return urllib.parse.unquote(stem)


class ModelRegistry:
    """Directory-backed store of named ViT checkpoints (see module docs)."""

    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _paths(self, name: str) -> Dict[str, str]:
        safe = _sanitize(name)
        return {
            "weights": os.path.join(self.root, f"{safe}.npz"),
            "meta": os.path.join(self.root, f"{safe}.json"),
        }

    def lock_path(self, name: str) -> str:
        return os.path.join(self.root, f"{_sanitize(name)}.lock")

    @property
    def quarantine_root(self) -> str:
        return os.path.join(self.root, self.QUARANTINE_DIR)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def save(self, name: str, model: VisionTransformer,
             extra: Optional[Dict] = None) -> None:
        """Atomically persist ``model`` under ``name`` (weights before meta)."""
        paths = self._paths(name)
        info = save_state_dict(model.state_dict(), paths["weights"])
        cfg = model.config
        meta = {
            "image_size": cfg.image_size,
            "patch_size": cfg.patch_size,
            "in_channels": cfg.in_channels,
            "dim": cfg.dim,
            "depth": cfg.depth,
            "num_heads": cfg.num_heads,
            "mlp_ratio": cfg.mlp_ratio,
            "num_classes": cfg.num_classes,
            "attribute_heads": list(map(list, cfg.attribute_heads)),
            "with_task_head": cfg.with_task_head,
            "extra": extra or {},
            "integrity": {
                "format": META_FORMAT_VERSION,
                "algorithm": "sha256",
                "weights_sha256": info["sha256"],
                "weights_bytes": info["bytes"],
                "state_keys": info["keys"],
            },
        }
        payload = json.dumps(meta, indent=2).encode()
        atomic_write_bytes(payload, paths["meta"])

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, name: str) -> ArtifactStatus:
        """Full integrity check of one entry without instantiating a model."""
        paths = self._paths(name)
        has_meta = os.path.exists(paths["meta"])
        has_weights = os.path.exists(paths["weights"])
        problems: List[str] = []
        if not has_meta and not has_weights:
            return ArtifactStatus(name=name, ok=False, missing=True,
                                  problems=["not registered"],
                                  weights_path=paths["weights"],
                                  meta_path=paths["meta"])
        if not has_meta:
            problems.append(f"weights without meta (orphan {paths['weights']})")
        if not has_weights:
            problems.append(f"meta without weights (missing {paths['weights']})")

        meta: Optional[Dict] = None
        if has_meta:
            try:
                with open(paths["meta"]) as handle:
                    meta = json.load(handle)
            except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
                problems.append(f"unreadable meta JSON ({exc})")
            else:
                absent = [f for f in _CONFIG_FIELDS if f not in meta]
                if absent:
                    problems.append(f"meta missing config fields {absent}")

        integrity = (meta or {}).get("integrity") or {}
        if has_weights:
            if integrity:
                expected_bytes = integrity.get("weights_bytes")
                actual_bytes = os.path.getsize(paths["weights"])
                if expected_bytes is not None and actual_bytes != expected_bytes:
                    problems.append(
                        f"weights size mismatch (expected {expected_bytes} B, "
                        f"found {actual_bytes} B)")
                expected_sha = integrity.get("weights_sha256")
                if expected_sha is not None and not problems:
                    actual_sha = file_sha256(paths["weights"])
                    if actual_sha != expected_sha:
                        problems.append(
                            f"weights checksum mismatch (expected "
                            f"{expected_sha[:12]}..., found {actual_sha[:12]}...)")
            try:
                keys = state_dict_keys(paths["weights"])
            except Exception as exc:
                problems.append(f"unreadable weights archive ({exc})")
            else:
                expected_keys = integrity.get("state_keys")
                if expected_keys is not None and keys != sorted(expected_keys):
                    problems.append(
                        f"state-dict key set mismatch (expected "
                        f"{len(expected_keys)} keys, found {len(keys)})")
        return ArtifactStatus(name=name, ok=not problems, missing=False,
                              problems=problems,
                              weights_path=paths["weights"],
                              meta_path=paths["meta"])

    def exists(self, name: str) -> bool:
        """True only for a *complete and valid* entry (both files, checks pass)."""
        return self.validate(name).ok

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def load(self, name: str) -> VisionTransformer:
        status = self.validate(name)
        if status.missing:
            raise FileNotFoundError(f"no registered model named {name!r}")
        if not status.ok:
            raise CorruptArtifactError(name, status.problems,
                                       [status.meta_path, status.weights_path])
        paths = self._paths(name)
        with open(paths["meta"]) as handle:
            meta = json.load(handle)
        config = ViTConfig(
            image_size=meta["image_size"],
            patch_size=meta["patch_size"],
            in_channels=meta["in_channels"],
            dim=meta["dim"],
            depth=meta["depth"],
            num_heads=meta["num_heads"],
            mlp_ratio=meta["mlp_ratio"],
            num_classes=meta["num_classes"],
            attribute_heads=tuple(
                (name_, card) for name_, card in meta["attribute_heads"]
            ),
            with_task_head=meta.get("with_task_head", False),
        )
        model = VisionTransformer(config, rng=np.random.default_rng(0))
        state = load_state_dict(paths["weights"])
        expected = sorted(model.state_dict())
        if sorted(state) != expected:
            raise CorruptArtifactError(
                name,
                [f"checkpoint keys do not match the rebuilt ViTConfig "
                 f"({len(state)} keys vs {len(expected)} expected)"],
                [paths["weights"]])
        try:
            model.load_state_dict(state)
        except (KeyError, ValueError) as exc:
            raise CorruptArtifactError(
                name, [f"state dict rejected by model ({exc})"],
                [paths["weights"]]) from exc
        model.eval()
        return model

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(
            _unsanitize(fname[:-5])
            for fname in os.listdir(self.root) if fname.endswith(".json")
        )

    def statuses(self) -> List[ArtifactStatus]:
        """Validate every registered entry (union of meta and weight stems)."""
        stems = set()
        for fname in os.listdir(self.root):
            if fname.endswith(".json"):
                stems.add(fname[:-5])
            elif fname.endswith(".npz"):
                stems.add(fname[:-4])
        return [self.validate(_unsanitize(stem)) for stem in sorted(stems)]

    def metadata(self, name: str) -> Dict:
        paths = self._paths(name)
        if not os.path.exists(paths["meta"]):
            raise FileNotFoundError(f"no registered model named {name!r}")
        with open(paths["meta"]) as handle:
            return json.load(handle)

    def quarantine(self, name: str) -> List[str]:
        """Move whatever files exist for ``name`` into the quarantine dir.

        Returns the destination paths.  Filenames get a numeric suffix if a
        previous quarantine of the same key is already there.
        """
        os.makedirs(self.quarantine_root, exist_ok=True)
        moved: List[str] = []
        for path in self._paths(name).values():
            if not os.path.exists(path):
                continue
            base = os.path.basename(path)
            dest = os.path.join(self.quarantine_root, base)
            attempt = 0
            while os.path.exists(dest):
                attempt += 1
                dest = os.path.join(self.quarantine_root, f"{base}.{attempt}")
            os.replace(path, dest)
            moved.append(dest)
        return moved

    def delete(self, name: str) -> List[str]:
        """Remove both files of an entry; returns the paths removed."""
        removed = []
        for path in self._paths(name).values():
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            removed.append(path)
        return removed

    def gc(self, remove_quarantine: bool = True) -> List[str]:
        """Delete leftover temp files, stale lock files, and (optionally)
        quarantined checkpoints.  Returns the paths removed.

        Lock files whose flock is currently held (a live trainer) are left
        alone — unlinking them would let a second process believe the key
        is free and double-train.
        """
        removed: List[str] = []
        for fname in os.listdir(self.root):
            if fname.endswith(".tmp") or fname.endswith(".lock"):
                path = os.path.join(self.root, fname)
                if fname.endswith(".lock") and _lock_is_held(path):
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                removed.append(path)
        if remove_quarantine and os.path.isdir(self.quarantine_root):
            for fname in sorted(os.listdir(self.quarantine_root)):
                path = os.path.join(self.quarantine_root, fname)
                try:
                    os.unlink(path)
                except OSError:
                    continue
                removed.append(path)
            try:
                os.rmdir(self.quarantine_root)
            except OSError:
                pass
        return removed
