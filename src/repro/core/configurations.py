"""The paper's two model configurations and their builders.

* **Task-specific configuration** — a compact ViT distilled from the
  teacher on one task's data distribution; highest accuracy on that task,
  degrades off-task.
* **Quantized configuration** — the multi-task student post-training
  quantized to int8; slightly lower accuracy per task but uniform across
  tasks and deployable on the accelerator.

Builders are deterministic given their seeds, so experiment scripts can
rebuild identical models (or load them from the artifact cache).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.data import attribute_head_spec, build_task_windows, build_window_dataset
from repro.data.datasets import WindowDataset, num_classes
from repro.data.tasks import TaskDefinition
from repro.distill import (
    DistillationConfig,
    Distiller,
    ModelTrainer,
    TrainingConfig,
)
from repro.nn import VisionTransformer, ViTConfig
from repro.quant import QuantSpec, quantize_vit
from repro.quant.vit import QuantizedVisionTransformer


@dataclasses.dataclass
class ModelConfiguration:
    """Base: a deployable model plus its provenance metadata."""

    name: str
    kind: str  # "task_specific" | "quantized"

    @property
    def model(self):
        raise NotImplementedError


@dataclasses.dataclass
class TaskSpecificConfiguration(ModelConfiguration):
    """Distilled float specialist for one task."""

    student: VisionTransformer = None
    task_name: str = ""

    def __post_init__(self) -> None:
        self.kind = "task_specific"

    @property
    def model(self) -> VisionTransformer:
        return self.student


@dataclasses.dataclass
class QuantizedConfiguration(ModelConfiguration):
    """Quantized multi-task generalist."""

    quantized: QuantizedVisionTransformer = None

    def __post_init__(self) -> None:
        self.kind = "quantized"

    @property
    def model(self) -> QuantizedVisionTransformer:
        return self.quantized


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def build_teacher(
    dataset: Optional[WindowDataset] = None,
    epochs: int = 25,
    seed: int = 0,
) -> VisionTransformer:
    """Train the broad-distribution teacher."""
    dataset = dataset or build_window_dataset(
        seed=seed, num_category_objects=480, num_distractors=120,
        num_background=120,
    )
    rng = np.random.default_rng(seed)
    teacher = VisionTransformer(
        ViTConfig.teacher(num_classes(), attribute_head_spec()), rng=rng
    )
    trainer = ModelTrainer(teacher, TrainingConfig(
        epochs=epochs, batch_size=48, learning_rate=2e-3, seed=seed,
    ))
    trainer.fit(dataset)
    return teacher


def build_multitask_student(
    teacher: VisionTransformer,
    dataset: Optional[WindowDataset] = None,
    epochs: int = 20,
    seed: int = 1,
    distill_config: Optional[DistillationConfig] = None,
) -> VisionTransformer:
    """Distill the generalist student on the broad distribution."""
    dataset = dataset or build_window_dataset(
        seed=seed, num_category_objects=480, num_distractors=120,
        num_background=120,
    )
    rng = np.random.default_rng(seed)
    student = VisionTransformer(
        ViTConfig.student(num_classes(), attribute_head_spec()), rng=rng
    )
    config = distill_config or DistillationConfig(
        epochs=epochs, batch_size=48, learning_rate=2e-3, seed=seed,
    )
    Distiller(teacher, student, config, rng=rng).distill(dataset)
    return student


def distill_task_student(
    teacher: VisionTransformer,
    task: TaskDefinition,
    epochs: int = 20,
    seed: int = 2,
    num_positive: int = 220,
    num_negative: int = 260,
    distill_config: Optional[DistillationConfig] = None,
) -> TaskSpecificConfiguration:
    """Distill a specialist on one task's distribution.

    Two things make the specialist task-specific: its training windows
    oversample the mission's positives and near-miss negatives, and it
    carries a binary task-relevance head supervised by the mission labels
    — the knowledge graph's decision distilled into the network.
    """
    dataset = build_task_windows(
        task, seed=seed, num_positive=num_positive, num_negative=num_negative,
        hard_negative_fraction=0.6, near_miss_fraction=0.6,
    )
    rng = np.random.default_rng(seed)
    base = ViTConfig.student(num_classes(), attribute_head_spec())
    student = VisionTransformer(
        dataclasses.replace(base, with_task_head=True), rng=rng
    )
    config = distill_config or DistillationConfig(
        epochs=epochs, batch_size=48, learning_rate=2e-3, seed=seed,
        task_label_weight=1.0,
    )
    Distiller(teacher, student, config, rng=rng).distill(dataset)
    return TaskSpecificConfiguration(
        name=f"task-specific:{task.name}", kind="task_specific",
        student=student, task_name=task.name,
    )


def build_quantized_configuration(
    student: VisionTransformer,
    calibration: Optional[np.ndarray] = None,
    weight_bits: int = 8,
    act_bits: int = 8,
    seed: int = 3,
) -> QuantizedConfiguration:
    """PTQ-quantize the multi-task student (the deployable configuration)."""
    if calibration is None:
        calibration = build_window_dataset(
            seed=seed, num_category_objects=96, num_distractors=32,
            num_background=32,
        ).images
    quantized = quantize_vit(
        student,
        calibration,
        weight_spec=QuantSpec(bits=weight_bits, symmetric=True,
                              per_channel=True, axis=0),
        act_spec=QuantSpec(bits=act_bits, symmetric=False),
    )
    return QuantizedConfiguration(
        name=f"quantized:w{weight_bits}a{act_bits}", kind="quantized",
        quantized=quantized,
    )
