"""End-to-end iTask pipeline.

``mission text → knowledge graph → (refine with support) → select
configuration → detect``.  The pipeline is the object the examples and
the E1/E2/E5/E8 experiments drive.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.configurations import (
    ModelConfiguration,
    QuantizedConfiguration,
    TaskSpecificConfiguration,
)
from repro.core.selector import ConfigurationSelector, SelectionDecision
from repro.core.taskspec import TaskSpec
from repro.data.scenes import Scene
from repro.detect.metrics import task_accuracy
from repro.detect.pipeline import Detection, TaskDetector
from repro.kg.llm import SimulatedLLM
from repro.kg.matcher import GraphMatcher
from repro.kg.refinement import refine_with_examples
from repro.kg.schema import KnowledgeGraph


@dataclasses.dataclass
class PipelineResult:
    """Everything the pipeline derived for one mission."""

    spec: TaskSpec
    kg: KnowledgeGraph
    decision: SelectionDecision
    configuration: ModelConfiguration
    detector: TaskDetector


class ITaskPipeline:
    """The deployed iTask system.

    Parameters
    ----------
    quantized_configuration:
        The always-available generalist.
    specialists:
        Optional distilled specialists by task name.
    llm:
        Knowledge-graph generator (noise-configurable for ablations).
    selector:
        Configuration-selection policy; built automatically from the
        specialists' graphs when omitted.
    use_kg:
        Ablation switch — ``False`` disables graph matching entirely and
        detection degrades to objectness-only (data-only baseline).
    refine_kg:
        Ablation switch for few-shot graph refinement.
    """

    def __init__(
        self,
        quantized_configuration: QuantizedConfiguration,
        specialists: Optional[Dict[str, TaskSpecificConfiguration]] = None,
        llm: Optional[SimulatedLLM] = None,
        selector: Optional[ConfigurationSelector] = None,
        score_threshold: float = 0.35,
        use_kg: bool = True,
        refine_kg: bool = True,
    ) -> None:
        self.quantized_configuration = quantized_configuration
        self.specialists = dict(specialists or {})
        self.llm = llm or SimulatedLLM()
        self.score_threshold = score_threshold
        self.use_kg = use_kg
        self.refine_kg = refine_kg
        # Specialists registered at construction get graphs via
        # register_specialist(); an empty selector is the safe default.
        self.selector = selector or ConfigurationSelector()

    # ------------------------------------------------------------------
    def register_specialist(self, task_name: str,
                            configuration: TaskSpecificConfiguration,
                            kg: KnowledgeGraph) -> None:
        """Make a distilled specialist available for selection."""
        self.specialists[task_name] = configuration
        self.selector.register_specialist(task_name, kg)

    # ------------------------------------------------------------------
    def build_kg(self, spec: TaskSpec) -> KnowledgeGraph:
        kg = self.llm.generate(spec.name, spec.mission_text)
        if self.refine_kg and spec.support_positives:
            kg = refine_with_examples(
                kg, spec.support_positives, spec.support_negatives,
            )
        return kg

    def prepare(self, spec: TaskSpec, multi_task: bool = False,
                latency_budget_ms: Optional[float] = None) -> PipelineResult:
        """Resolve a mission into a ready-to-run detector."""
        kg = self.build_kg(spec)
        decision = self.selector.select(
            kg, multi_task=multi_task, latency_budget_ms=latency_budget_ms,
        )
        if (decision.kind == "task_specific"
                and decision.specialist_name in self.specialists):
            configuration: ModelConfiguration = self.specialists[decision.specialist_name]
        else:
            configuration = self.quantized_configuration
            decision = dataclasses.replace(decision, kind="quantized")
        matcher = GraphMatcher(kg) if self.use_kg else None
        detector = TaskDetector(
            configuration.model, matcher=matcher,
            score_threshold=self.score_threshold,
        )
        return PipelineResult(
            spec=spec, kg=kg, decision=decision,
            configuration=configuration, detector=detector,
        )

    # ------------------------------------------------------------------
    def detect(self, spec: TaskSpec, scene: Scene, **prepare_kwargs) -> List[Detection]:
        return self.prepare(spec, **prepare_kwargs).detector.detect(scene)

    def evaluate(self, spec: TaskSpec, scenes: Sequence[Scene],
                 **prepare_kwargs) -> float:
        """Task accuracy of the resolved configuration over scenes."""
        if spec.definition is None:
            raise ValueError("evaluation requires spec.definition ground truth")
        result = self.prepare(spec, **prepare_kwargs)
        return task_accuracy(result.detector, scenes, spec.definition)
