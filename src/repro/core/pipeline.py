"""End-to-end iTask pipeline.

``mission text → knowledge graph → (refine with support) → select
configuration → detect``.  The pipeline is the object the examples and
the E1/E2/E5/E8 experiments drive.

Serving model: ``prepare()`` results are cached per mission in an LRU
:class:`repro.serve.SessionCache`, so repeated ``detect``/``evaluate``
calls for one mission run LLM extraction, refinement, selection, and
detector construction exactly once.  ``pipeline.session(spec)`` hands
out the cached :class:`repro.serve.MissionSession` directly — the
object to build a :class:`repro.serve.DetectionEngine` on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.configurations import (
    ModelConfiguration,
    QuantizedConfiguration,
    TaskSpecificConfiguration,
)
from repro.core.selector import ConfigurationSelector, SelectionDecision
from repro.core.taskspec import TaskSpec
from repro.data.scenes import Scene
from repro.detect.pipeline import Detection, TaskDetector
from repro.kg.llm import SimulatedLLM
from repro.kg.matcher import GraphMatcher
from repro.kg.refinement import refine_with_examples
from repro.kg.schema import KnowledgeGraph
from repro.cascade.router import CascadeConfig, CascadeRouter
from repro.cascade.session import CascadeSession, SpecialistRegistry
from repro.serve.session import MissionSession, SessionCache, mission_fingerprint


@dataclasses.dataclass
class PipelineResult:
    """Everything the pipeline derived for one mission."""

    spec: TaskSpec
    kg: KnowledgeGraph
    decision: SelectionDecision
    configuration: ModelConfiguration
    detector: TaskDetector


class ITaskPipeline:
    """The deployed iTask system.

    Parameters
    ----------
    quantized_configuration:
        The always-available generalist.
    specialists:
        Optional distilled specialists by task name.
    llm:
        Knowledge-graph generator (noise-configurable for ablations).
    selector:
        Configuration-selection policy; built automatically from the
        specialists' graphs when omitted.
    use_kg:
        Ablation switch — ``False`` disables graph matching entirely and
        detection degrades to objectness-only (data-only baseline).
    refine_kg:
        Ablation switch for few-shot graph refinement.
    session_capacity:
        How many prepared missions the LRU session cache holds.
    """

    def __init__(
        self,
        quantized_configuration: QuantizedConfiguration,
        specialists: Optional[Dict[str, TaskSpecificConfiguration]] = None,
        llm: Optional[SimulatedLLM] = None,
        selector: Optional[ConfigurationSelector] = None,
        score_threshold: float = 0.35,
        use_kg: bool = True,
        refine_kg: bool = True,
        session_capacity: int = 8,
    ) -> None:
        self.quantized_configuration = quantized_configuration
        self.specialists = dict(specialists or {})
        self.llm = llm or SimulatedLLM()
        self.score_threshold = score_threshold
        self.use_kg = use_kg
        self.refine_kg = refine_kg
        # Specialists registered at construction get graphs via
        # register_specialist(); an empty selector is the safe default.
        self.selector = selector or ConfigurationSelector()
        self.sessions = SessionCache(capacity=session_capacity)
        # Mission-fingerprint -> specialist pins for the cascade router.
        self.cascade_pins = SpecialistRegistry()

    # ------------------------------------------------------------------
    def register_specialist(self, task_name: str,
                            configuration: TaskSpecificConfiguration,
                            kg: KnowledgeGraph) -> None:
        """Make a distilled specialist available for selection.

        Invalidates all cached sessions: selection decisions made before
        the specialist existed may no longer be the right ones.
        """
        self.specialists[task_name] = configuration
        self.selector.register_specialist(task_name, kg)
        self.sessions.clear()

    def invalidate_sessions(self) -> int:
        """Drop every cached session (returns how many were dropped).

        Use after mutating anything the fingerprint cannot see — e.g.
        swapping a specialist's weights in place.
        """
        return self.sessions.clear()

    # ------------------------------------------------------------------
    def build_kg(self, spec: TaskSpec) -> KnowledgeGraph:
        kg = self.llm.generate(spec.name, spec.mission_text)
        if self.refine_kg and spec.support_positives:
            kg = refine_with_examples(
                kg, spec.support_positives, spec.support_negatives,
            )
        return kg

    def _session_key(self, spec: TaskSpec, multi_task: bool,
                     latency_budget_ms: Optional[float]) -> str:
        return mission_fingerprint(
            spec,
            multi_task=multi_task,
            latency_budget_ms=latency_budget_ms,
            use_kg=self.use_kg,
            refine_kg=self.refine_kg,
            score_threshold=self.score_threshold,
            llm_noise=self.llm.noise,
            selector=self.selector,
        )

    def session(self, spec: TaskSpec, multi_task: bool = False,
                latency_budget_ms: Optional[float] = None) -> MissionSession:
        """The cached session for a mission, preparing it on first use."""
        key = self._session_key(spec, multi_task, latency_budget_ms)
        return self.sessions.get_or_create(
            key,
            lambda: self._prepare_uncached(
                spec, multi_task=multi_task,
                latency_budget_ms=latency_budget_ms),
        )

    def prepare(self, spec: TaskSpec, multi_task: bool = False,
                latency_budget_ms: Optional[float] = None) -> PipelineResult:
        """Resolve a mission into a ready-to-run detector (cached).

        Repeated calls for the same mission (and pipeline configuration)
        return the session-cached result; see :meth:`session`.
        """
        return self.session(spec, multi_task=multi_task,
                            latency_budget_ms=latency_budget_ms).result

    def _prepare_uncached(self, spec: TaskSpec, multi_task: bool = False,
                          latency_budget_ms: Optional[float] = None) -> PipelineResult:
        """The raw mission-resolution work behind the session cache."""
        kg = self.build_kg(spec)
        decision = self.selector.select(
            kg, multi_task=multi_task, latency_budget_ms=latency_budget_ms,
        )
        if (decision.kind == "task_specific"
                and decision.specialist_name in self.specialists):
            configuration: ModelConfiguration = self.specialists[decision.specialist_name]
        else:
            configuration = self.quantized_configuration
            decision = dataclasses.replace(decision, kind="quantized")
        matcher = GraphMatcher(kg) if self.use_kg else None
        detector = TaskDetector(
            configuration.model, matcher=matcher,
            score_threshold=self.score_threshold,
        )
        return PipelineResult(
            spec=spec, kg=kg, decision=decision,
            configuration=configuration, detector=detector,
        )

    # -- cascade -------------------------------------------------------
    def pin_specialist(self, spec: TaskSpec, task_name: str,
                       multi_task: bool = False,
                       latency_budget_ms: Optional[float] = None) -> str:
        """Pin a mission's fingerprint to a registered specialist.

        A pinned mission's cascade escalates every scene toward that
        specialist (subject to budget and load shedding) regardless of
        margin.  Returns the fingerprint that was pinned.
        """
        if task_name not in self.specialists:
            raise KeyError(f"no registered specialist named {task_name!r}")
        fingerprint = self._session_key(spec, multi_task, latency_budget_ms)
        self.cascade_pins.pin(fingerprint, task_name)
        return fingerprint

    def _specialist_detector(self, task_name: str,
                             kg: KnowledgeGraph) -> TaskDetector:
        """A detector for one registered specialist on this mission.

        Mirrors :meth:`_prepare_uncached`'s construction so escalated
        scenes see exactly what full specialist selection would have
        produced (the distilled task head takes over scoring; the
        matcher only serves models without one).
        """
        configuration = self.specialists[task_name]
        matcher = GraphMatcher(kg) if self.use_kg else None
        return TaskDetector(configuration.model, matcher=matcher,
                            score_threshold=self.score_threshold)

    def cascade_session(
        self,
        spec: TaskSpec,
        multi_task: bool = False,
        latency_budget_ms: Optional[float] = None,
        config: Optional[CascadeConfig] = None,
    ) -> CascadeSession:
        """A cascade over this mission: quantized first, escalate on doubt.

        The fast path is always the quantized configuration with the
        mission's knowledge graph.  The escalation target is, in order
        of precedence: the specialist pinned to this fingerprint via
        :meth:`pin_specialist`; the specialist full selection itself
        chose (the mission's graph matched one — also pinned, so every
        scene desires escalation); otherwise the most similar registered
        specialist, used for margin-triggered escalation only.  With no
        registered specialists the cascade degrades to the fast path.
        """
        session = self.session(spec, multi_task=multi_task,
                               latency_budget_ms=latency_budget_ms)
        result = session.result
        if result.decision.kind == "quantized":
            fast = result.detector
        else:
            matcher = GraphMatcher(result.kg) if self.use_kg else None
            fast = TaskDetector(
                self.quantized_configuration.model, matcher=matcher,
                score_threshold=self.score_threshold)
        pinned_name = self.cascade_pins.lookup(session.key)
        name = pinned_name
        if name is None and result.decision.kind == "task_specific":
            name = result.decision.specialist_name
        pinned = name is not None
        if name is None:
            best_name, _ = self.selector.best_specialist(result.kg)
            name = best_name
        specialist = (self._specialist_detector(name, result.kg)
                      if name in self.specialists else None)
        router = CascadeRouter(
            fast, specialist, config=config,
            pinned=pinned and specialist is not None)
        return CascadeSession(session, router)

    # ------------------------------------------------------------------
    def detect(self, spec: TaskSpec, scene: Scene, **prepare_kwargs) -> List[Detection]:
        """Detect in one scene, through the mission's cached session."""
        return self.session(spec, **prepare_kwargs).detect(scene)

    def detect_batch(self, spec: TaskSpec, scenes: Sequence[Scene],
                     **prepare_kwargs) -> List[List[Detection]]:
        """Batch-first detection: one fused forward across scenes."""
        return self.session(spec, **prepare_kwargs).detect_batch(scenes)

    def evaluate(self, spec: TaskSpec, scenes: Sequence[Scene],
                 **prepare_kwargs) -> float:
        """Task accuracy of the resolved configuration over scenes."""
        return self.session(spec, **prepare_kwargs).evaluate(scenes)
