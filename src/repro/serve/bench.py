"""Serving-engine throughput workload.

Shared by ``benchmarks/bench_e11_throughput.py`` (which persists
telemetry and gates CI) and the ``repro engine bench`` CLI subcommand.
The workload is the paper's serving scenario: one mission, a stream of
small edge scenes, and three execution strategies over the *same*
detector —

* ``percall_rebuild`` — the seed behavior: every ``detect()`` re-runs
  mission preparation (LLM graph extraction, refinement, selection,
  detector construction) and then scans one scene;
* ``percall_cached`` — the session fix alone: preparation cached, but
  still one scene per forward;
* ``engine`` — cached session plus the micro-batching engine fusing
  windows across scenes into shared forwards.

Models are fresh untrained students (weights do not affect timing), so
the workload is stateless — no artifact cache involved.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configurations import (
    QuantizedConfiguration,
    TaskSpecificConfiguration,
)
from repro.core.pipeline import ITaskPipeline
from repro.core.taskspec import TaskSpec
from repro.data import (
    SceneConfig,
    SceneGenerator,
    attribute_head_spec,
    get_task,
    sample_profile,
)
from repro.data.datasets import num_classes
from repro.kg import SimulatedLLM
from repro.nn import VisionTransformer, ViTConfig
from repro.serve.engine import EngineConfig

TASK_NAME = "roadside_hazards"


def build_workload(
    num_scenes: int = 64, grid: int = 3, seed: int = 7,
    configuration: str = "specialist",
) -> Tuple[ITaskPipeline, TaskSpec, List]:
    """Pipeline + mission + scene stream for the throughput runs.

    The mission is few-shot — the paper's central serving scenario — so
    every per-call rebuild repeats LLM extraction *and* support-example
    refinement, exactly as the seed's per-call ``detect()`` did.

    ``configuration`` picks the deployed model:

    * ``"specialist"`` — one float specialist registered under the
      refined mission graph, so selection always picks it (similarity
      exactly 1.0) and the quantized placeholder is never deployed;
    * ``"quantized"`` — no specialists at all: selection falls back to a
      real w8a8 post-training-quantized copy of the same student, so the
      stream exercises the integer BLAS kernels end to end.
    """
    if configuration not in ("specialist", "quantized"):
        raise ValueError(
            f"configuration must be 'specialist' or 'quantized', "
            f"got {configuration!r}")
    task = get_task(TASK_NAME)
    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    if configuration == "quantized":
        from repro.quant import quantize_vit

        calibration = np.random.default_rng(1).random(
            (32, config.in_channels, config.image_size, config.image_size),
        ).astype(np.float32)
        quantized_cfg = QuantizedConfiguration(
            name="quantized:w8a8", kind="quantized",
            quantized=quantize_vit(model, calibration))
        pipeline = ITaskPipeline(quantized_cfg)
    else:
        specialist = TaskSpecificConfiguration(
            name=f"specialist:{task.name}", kind="task_specific",
            student=model, task_name=task.name)
        placeholder = QuantizedConfiguration(
            name="quantized:placeholder", kind="quantized", quantized=None)
        pipeline = ITaskPipeline(placeholder,
                                 specialists={task.name: specialist})

    rng = np.random.default_rng(seed)
    positives, negatives = [], []
    while len(positives) < 4 or len(negatives) < 4:
        profile = sample_profile(rng)
        (positives if task.matches(profile) else negatives).append(profile)
    spec = TaskSpec.from_definition(task, support_positives=positives[:4],
                                    support_negatives=negatives[:4])
    if configuration == "specialist":
        # Register under the refined graph (build_kg is deterministic), so
        # selector similarity is exactly 1.0 and the specialist always wins.
        pipeline.selector.register_specialist(task.name, pipeline.build_kg(spec))
    scenes = SceneGenerator(SceneConfig(grid=grid),
                            seed=seed).generate_batch(num_scenes)
    return pipeline, spec, list(scenes)


def _interleaved_rounds(repeats: int, tasks: Sequence) -> List[List[float]]:
    """Per-task timing samples with rounds interleaved across all tasks.

    Single-core boxes drift (thermal, noisy neighbours); measuring mode A
    repeatedly and then mode B confounds the ratio with the drift.  Round
    robin keeps every mode's samples spread over the same wall-clock span,
    and per-round ratios (mode vs baseline measured seconds apart) cancel
    the drift that absolute best-of numbers cannot.
    """
    samples: List[List[float]] = [[] for _ in tasks]
    for _ in range(repeats):
        for i, fn in enumerate(tasks):
            start = time.perf_counter()
            fn()
            samples[i].append(time.perf_counter() - start)
    return samples


def run_throughput(
    num_scenes: int = 64,
    grid: int = 3,
    batch_sizes: Sequence[int] = (1, 8, 32),
    workers: Sequence[int] = (1, 2),
    repeats: int = 3,
    seed: int = 7,
    flush_ms: float = 20.0,
    configuration: str = "specialist",
) -> List[Dict]:
    """Measure scenes/sec for each strategy; returns result rows.

    Every row carries ``scenes_per_s`` plus its speedup over the
    ``percall_rebuild`` baseline (the seed's per-call semantics).  The
    engine rows sweep ``max_batch`` × ``workers``.  ``flush_ms`` is kept
    high because the benchmark saturates the queue up front — flushes
    trigger on ``max_batch``, not the timer.  ``configuration`` selects
    the deployed model (float specialist or the quantized generalist,
    see :func:`build_workload`).
    """
    pipeline, spec, scenes = build_workload(num_scenes, grid, seed,
                                            configuration=configuration)

    # Correctness gate first: the engine must reproduce per-scene detect.
    session = pipeline.session(spec)
    sequential = [session.detect(scene) for scene in scenes]
    with session.engine(EngineConfig(max_batch=8, queue_size=max(64, num_scenes))) as engine:
        fused = engine.detect_many(scenes)
    for left, right in zip(sequential, fused):
        assert [d.bbox for d in left] == [d.bbox for d in right], \
            "engine diverged from per-scene detection"
        np.testing.assert_allclose([d.score for d in left],
                                   [d.score for d in right], rtol=1e-5)

    def percall_rebuild() -> None:
        for scene in scenes:
            pipeline.sessions.clear()   # seed semantics: prepare every call
            pipeline.detect(spec, scene)

    def percall_cached() -> None:
        for scene in scenes:
            pipeline.detect(spec, scene)

    def engine_pass(config: EngineConfig):
        def run() -> None:
            with session.engine(config) as eng:
                eng.detect_many(scenes)
        return run

    tasks = [("percall_rebuild", None, None, percall_rebuild),
             ("percall_cached", None, None, percall_cached)]
    for nworkers in workers:
        for batch in batch_sizes:
            config = EngineConfig(max_batch=batch, flush_ms=flush_ms,
                                  workers=nworkers,
                                  queue_size=max(64, num_scenes))
            tasks.append(("engine", batch, nworkers, engine_pass(config)))

    for _, _, _, fn in tasks:   # warm every mode once before timing
        fn()
    samples = _interleaved_rounds(repeats, [fn for _, _, _, fn in tasks])

    rows: List[Dict] = []
    baseline_rounds = samples[0]
    for (mode, batch, nworkers, _), rounds in zip(tasks, samples):
        best = min(rounds)
        # Speedup = median of per-round ratios against the baseline round
        # measured moments earlier, so machine drift cancels out.
        ratios = sorted(b / r for b, r in zip(baseline_rounds, rounds))
        mid = len(ratios) // 2
        speedup = (ratios[mid] if len(ratios) % 2
                   else 0.5 * (ratios[mid - 1] + ratios[mid]))
        rows.append({
            "mode": mode,
            "batch": batch,
            "workers": nworkers,
            "scenes_per_s": num_scenes / best,
            "ms_per_scene": best / num_scenes * 1e3,
            "speedup_vs_percall": speedup,
        })
    return rows


def best_engine_speedup(rows: Sequence[Dict], min_batch: int = 8) -> float:
    """Best engine speedup over the per-call baseline at batch >= min_batch."""
    candidates = [
        row["speedup_vs_percall"] for row in rows
        if row["mode"] == "engine" and (row["batch"] or 0) >= min_batch
    ]
    return max(candidates) if candidates else 0.0


def compare_engine_configurations(
    num_scenes: int = 48,
    grid: int = 3,
    batch: int = 8,
    workers: int = 1,
    repeats: int = 3,
    seed: int = 7,
) -> List[Dict]:
    """Float-specialist vs quantized engine scenes/sec on one stream.

    The E11 harness with the model swapped: both configurations serve
    the identical scene stream through identically configured
    micro-batching engines, with timing rounds interleaved so machine
    drift cancels (E12's acceptance gate: the quantized configuration
    must stay within 2x of the float one).  Returns one row per
    configuration with ``scenes_per_s`` and ``ratio_vs_float``
    (float scenes/sec ÷ this configuration's — 1.0 for float itself,
    small is good).
    """
    sessions = []
    for configuration in ("specialist", "quantized"):
        pipeline, spec, scenes = build_workload(num_scenes, grid, seed,
                                                configuration=configuration)
        sessions.append((configuration, pipeline.session(spec), scenes))

    config = EngineConfig(max_batch=batch, workers=workers,
                          queue_size=max(64, num_scenes))

    def engine_pass(session, scenes):
        def run() -> None:
            with session.engine(config) as eng:
                eng.detect_many(scenes)
        return run

    tasks = [engine_pass(session, scenes) for _, session, scenes in sessions]
    for fn in tasks:    # warm both engines before timing
        fn()
    samples = _interleaved_rounds(repeats, tasks)

    rows: List[Dict] = []
    float_rounds = samples[0]
    for (configuration, _, _), rounds in zip(sessions, samples):
        best = min(rounds)
        ratios = sorted(r / f for f, r in zip(float_rounds, rounds))
        mid = len(ratios) // 2
        ratio = (ratios[mid] if len(ratios) % 2
                 else 0.5 * (ratios[mid - 1] + ratios[mid]))
        rows.append({
            "configuration": configuration,
            "batch": batch,
            "workers": workers,
            "scenes_per_s": num_scenes / best,
            "ms_per_scene": best / num_scenes * 1e3,
            "ratio_vs_float": ratio,
        })
    return rows
