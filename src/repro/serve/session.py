"""Mission sessions: cached ``prepare()`` results keyed by fingerprint.

``ITaskPipeline.prepare`` is expensive relative to a single small-scene
detect — LLM graph extraction, few-shot refinement, similarity-based
configuration selection, matcher plan construction — and is pure given
the mission spec plus the pipeline's configuration.  A
:class:`MissionSession` pins one prepared mission; a
:class:`SessionCache` holds sessions in an LRU keyed by
:func:`mission_fingerprint` so repeated requests for the same mission
reuse everything.

Cache-key semantics: the fingerprint covers every input ``prepare()``
reads — the spec's text and support profiles, the ablation switches
(``use_kg``/``refine_kg``), the score threshold, the LLM noise
configuration, the selection arguments (``multi_task``, latency
budget), and the selector's registered specialists *including each
specialist graph's* ``KnowledgeGraph.version`` and a content digest of
its constraint set — so editing a registered graph in place, or
replacing it outright with a fresh graph whose version number happens
to coincide, changes the key and naturally misses.  With a
*noisy* LLM the first prepared sample is pinned for the session's
lifetime (one deployed graph per mission, rather than re-rolling the
extraction-noise dice on every request); invalidate explicitly to
resample.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
)

from repro.detect.metrics import task_accuracy
from repro.obs import get_registry

if TYPE_CHECKING:  # circular-import guard: core.pipeline imports us
    from repro.core.pipeline import PipelineResult
    from repro.core.selector import ConfigurationSelector
    from repro.core.taskspec import TaskSpec
    from repro.data.scenes import Scene
    from repro.detect.pipeline import Detection
    from repro.kg.llm import LLMNoiseConfig
    from repro.serve.engine import DetectionEngine, EngineConfig


def _graph_digest(kg) -> str:
    """Content hash of a knowledge graph's constraint set."""
    return hashlib.sha256(
        json.dumps(kg.to_dict(), sort_keys=True).encode("utf-8")).hexdigest()


def mission_fingerprint(
    spec: "TaskSpec",
    *,
    multi_task: bool = False,
    latency_budget_ms: Optional[float] = None,
    use_kg: bool = True,
    refine_kg: bool = True,
    score_threshold: float = 0.35,
    llm_noise: Optional["LLMNoiseConfig"] = None,
    selector: Optional["ConfigurationSelector"] = None,
) -> str:
    """Stable hash of everything ``prepare()`` depends on."""

    def as_profile(profile) -> Optional[Dict[str, str]]:
        return None if profile is None else profile.as_dict()

    payload = {
        "name": spec.name,
        "mission_text": spec.mission_text,
        "support_positives": [as_profile(p) for p in spec.support_positives],
        "support_negatives": [as_profile(p) for p in spec.support_negatives],
        "multi_task": bool(multi_task),
        "latency_budget_ms": latency_budget_ms,
        "use_kg": bool(use_kg),
        "refine_kg": bool(refine_kg),
        "score_threshold": score_threshold,
        "llm_noise": (dataclasses.asdict(llm_noise)
                      if llm_noise is not None else None),
        "selector": None if selector is None else {
            "similarity_threshold": selector.similarity_threshold,
            "accelerator_latency_ms": selector.accelerator_latency_ms,
            "specialist_latency_ms": selector.specialist_latency_ms,
            # A graph edited in place bumps its version -> new key; the
            # content digest additionally covers a graph *replaced* via
            # register_specialist, whose fresh version number can
            # coincide with the old graph's (found by the pipeline
            # session fuzz oracle: the stale fingerprint kept serving
            # the previous graph's cached session).
            "specialists": sorted(
                (name, kg.version, _graph_digest(kg))
                for name, kg in selector.specialist_graphs.items()
            ),
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


class MissionSession:
    """One prepared mission, ready to serve many scenes.

    Wraps a :class:`repro.core.PipelineResult` (knowledge graph,
    selection decision, configuration, detector) and exposes the serving
    surface: single-scene :meth:`detect`, fused :meth:`detect_batch`,
    :meth:`evaluate`, and an :meth:`engine` factory for queued
    micro-batched serving.
    """

    def __init__(self, key: str, result: "PipelineResult") -> None:
        self.key = key
        self.result = result
        self._created_kg_version = result.kg.version

    # -- convenience views ---------------------------------------------
    @property
    def spec(self) -> "TaskSpec":
        return self.result.spec

    @property
    def kg(self):
        return self.result.kg

    @property
    def decision(self):
        return self.result.decision

    @property
    def configuration(self):
        return self.result.configuration

    @property
    def detector(self):
        return self.result.detector

    @property
    def stale(self) -> bool:
        """True when the session's graph was edited after preparation.

        The matcher rebuilds its constraint plans automatically on
        version bumps, so a stale session still scores correctly against
        the *edited* graph — but its cache key no longer describes it.
        Callers that edit graphs should invalidate and re-prepare.
        """
        return self.result.kg.version != self._created_kg_version

    # -- serving -------------------------------------------------------
    def detect(self, scene: "Scene",
               stride: Optional[int] = None) -> List["Detection"]:
        return self.detector.detect(scene, stride=stride)

    def detect_batch(self, scenes: Sequence["Scene"],
                     stride: Optional[int] = None) -> List[List["Detection"]]:
        """Fused multi-scene detection (see ``TaskDetector.detect_batch``)."""
        return self.detector.detect_batch(scenes, stride=stride)

    def evaluate(self, scenes: Sequence["Scene"],
                 object_cells_only: bool = False) -> float:
        """Task accuracy over scenes, via the batch-first path."""
        if self.spec.definition is None:
            raise ValueError("evaluation requires spec.definition ground truth")
        return task_accuracy(self.detector, scenes, self.spec.definition,
                             object_cells_only=object_cells_only)

    def engine(self, config: Optional["EngineConfig"] = None) -> "DetectionEngine":
        """A micro-batching engine serving this session."""
        from repro.serve.engine import DetectionEngine

        return DetectionEngine(self, config=config)

    def stream(self, config=None, batch_size: int = 64):
        """A streaming detector over this session's model + matcher.

        Returns a fresh :class:`repro.stream.StreamingDetector`; pass a
        ``TrackerConfig`` with ``delta_gate=True`` for incremental
        per-frame cost on mostly-static camera feeds.
        """
        from repro.stream.tracker import StreamingDetector, TrackerConfig

        return StreamingDetector.from_session(
            self, config=config if config is not None else TrackerConfig(),
            batch_size=batch_size)

    def request_scope(self, tenant: Optional[str] = None,
                      deadline_ms: Optional[float] = None, **attrs):
        """A traced request scope bound to this mission.

        Context manager minting a :class:`repro.obs.RequestContext`
        whose ``mission`` is this session's fingerprint, so spans and
        cascade decisions recorded for the request — including on
        engine worker threads — attribute back to both the request and
        the mission:

            with session.request_scope(tenant="acme") as ctx:
                future = engine.submit(scene)
        """
        from repro.obs.context import request_context

        return request_context(tenant=tenant, mission=self.key,
                               deadline_ms=deadline_ms, **attrs)

    def __repr__(self) -> str:
        return (f"MissionSession(task={self.spec.name!r}, "
                f"configuration={self.decision.kind!r}, "
                f"key={self.key[:12]}...)")


class SessionCache:
    """LRU cache of :class:`MissionSession` by mission fingerprint.

    Thread-safe; a ``get_or_create`` miss builds the session *inside*
    the lock, so concurrent first requests for one mission prepare it
    exactly once (the same generate-once guarantee the regression tests
    assert for repeated sequential detects).  Traffic is recorded in the
    global obs registry as ``session.cache.{hit,miss,evict}``.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("session cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, MissionSession]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str) -> Optional[MissionSession]:
        with self._lock:
            session = self._entries.get(key)
            if session is not None:
                self._entries.move_to_end(key)
            return session

    def get_or_create(
        self, key: str, factory: Callable[[], "PipelineResult"],
    ) -> MissionSession:
        obs = get_registry()
        with self._lock:
            session = self._entries.get(key)
            if session is not None:
                self._entries.move_to_end(key)
                obs.count("session.cache.hit")
                return session
            obs.count("session.cache.miss")
            session = MissionSession(key, factory())
            self._entries[key] = session
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                obs.count("session.cache.evict")
            return session

    def invalidate(self, key: str) -> bool:
        """Drop one session; True if it was cached."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        """Drop every session (e.g. after registering a specialist)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
