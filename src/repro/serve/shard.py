"""Sharded serving: a routing front-end over N engine processes.

The thread-pool :class:`repro.serve.engine.DetectionEngine` tops out at
roughly one core of python glue — the GIL serializes the numpy call
sites' bookkeeping no matter how many worker threads it runs.  This
module shards the tier across **processes**:

    pipeline → session → ShardRouter → N worker processes,
                                        each: sessions + DetectionEngine

* :class:`ShardRouter` is the front-end.  ``submit(scene, mission)``
  hashes the mission fingerprint to a shard (:func:`shard_for_mission`),
  enqueues the scene on that shard's **bounded** queue (backpressure;
  ``block=False`` sheds with :class:`ShardRejected`), and returns a
  future completed from the worker's reply.  Mission affinity means each
  shard warms only its slice of the session cache — two shards never
  both pay ``prepare()`` for the same mission.
* Each worker process (:func:`_shard_worker_main`) rebuilds sessions
  through a caller-supplied ``factory(mission)`` — models are
  reconstructed from the artifact registry / deterministic builders in
  the child, **never pickled across** — and serves them through an
  ordinary per-mission :class:`DetectionEngine`, so the micro-batching,
  tracing, and shedding semantics inside a shard are exactly PR 4's.
* Transport is a pair of one-way :func:`multiprocessing.Pipe`\\ s per
  shard carrying pickled scene batches; request identity crosses as the
  :func:`repro.obs.context.context_to_wire` wire format, so spans
  recorded in the worker join the submitter's trace tree by trace id.
* Each worker installs a **fresh** :class:`repro.obs.Registry` (a forked
  registry would double-count the parent's history) and can expose its
  own :class:`repro.obs.MetricsServer` on an ephemeral port; the
  front-end aggregates the per-shard ``/snapshot`` documents with
  :func:`repro.obs.merge_snapshots` — bit-exactly, by construction —
  and can re-serve the merged document via
  :meth:`ShardRouter.serve_metrics`.

Failure and drain semantics: SIGTERM to a worker finishes its in-flight
jobs (their futures complete normally), rejects everything later with
``engine.rejected``, and announces ``draining`` so the front-end
redistributes that shard's queued-but-undispatched jobs to live shards
— no future is ever dropped.  A worker that dies uncleanly has its
pending and queued jobs rerouted the same way; only when no live shard
remains do futures fail with :class:`ShardClosed`.

Determinism: routing is a pure hash of the mission fingerprint, shards
serve disjoint missions, and per-shard results come from the same
engine/session code path as single-process serving — so with a
batch-invariant (quantized) model, sharded results are bit-for-bit the
single-process results (the ``sharded_engine`` fuzz oracle pins this).

Start methods: ``fork`` (the default where available) lets tests and
benchmarks pass closure factories and inherits nothing mutable that
matters (registries are re-installed, process tags re-minted via
``os.register_at_fork``); ``spawn`` requires a picklable factory such
as :class:`TaskSessionFactory`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import multiprocessing
import os
import queue
import signal
import threading
import time
from concurrent.futures import Future
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence,
)

from repro.obs import get_registry
from repro.obs.context import (
    RequestContext, context_from_wire, context_to_wire, current_context,
)
from repro.serve.engine import EngineConfig

if TYPE_CHECKING:
    from repro.data.scenes import Scene
    from repro.detect.pipeline import Detection
    from repro.obs.export import MetricsServer

__all__ = [
    "ShardConfig",
    "ShardClosed",
    "ShardRejected",
    "ShardRouter",
    "TaskSessionFactory",
    "shard_for_mission",
    "worker_seed",
]


class ShardClosed(RuntimeError):
    """Raised by ``submit`` after close; set on futures orphaned by a
    worker death with no live shard left to reroute to."""


class ShardRejected(RuntimeError):
    """Raised by non-blocking ``submit`` when the target shard's queue
    is full, or when the per-tenant inflight cap is hit."""


def shard_for_mission(mission: str, num_shards: int) -> int:
    """Affinity hash: mission fingerprint -> shard index.

    Stable across processes and runs (sha256, not ``hash()`` which is
    salted per process), so every front-end instance routes a mission
    to the same shard and each shard's session cache warms exactly its
    own slice of the mission population.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    digest = hashlib.sha256(mission.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def worker_seed(base_seed: int, shard_index: int, pid: int) -> int:
    """Process-unique ``np.random`` seed for one shard worker.

    Forked children inherit the parent's global RNG state; without
    reseeding, N shards would draw *identical* "random" streams.  The
    seed mixes the deployment's base seed, the shard index, and the
    worker pid through sha256 so restarted workers reseed too.
    """
    payload = f"{base_seed}:{shard_index}:{pid}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "big")


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """Knobs for the sharded tier.

    ``num_shards``
        Worker processes.
    ``engine``
        Per-mission :class:`EngineConfig` inside each worker.
    ``queue_size``
        Bound of each shard's front-end queue — the cross-process
        backpressure depth (the worker additionally has the engine's
        own bounded queue).
    ``max_inflight_per_tenant``
        Fairness cap: a tenant with this many uncompleted submits is
        shed (:class:`ShardRejected`) so one hot tenant cannot occupy
        every queue slot.  ``None`` disables the cap.
    ``metrics``
        Start a :class:`repro.obs.MetricsServer` on an ephemeral port
        in every worker; the bound URL comes back in the ready
        handshake and ``ShardRouter.shard_metrics_urls()``.
    ``base_seed``
        Mixed into each worker's :func:`worker_seed`.
    ``start_method``
        ``multiprocessing`` start method; ``None`` picks ``fork`` when
        available (closure factories work) else the platform default.
    ``ready_timeout_s``
        How long to wait for every worker's ready handshake (workers
        may be building models from the artifact registry).
    """

    num_shards: int = 2
    engine: EngineConfig = dataclasses.field(default_factory=EngineConfig)
    queue_size: int = 64
    max_inflight_per_tenant: Optional[int] = None
    metrics: bool = False
    base_seed: int = 0
    start_method: Optional[str] = None
    ready_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if (self.max_inflight_per_tenant is not None
                and self.max_inflight_per_tenant < 1):
            raise ValueError("max_inflight_per_tenant must be >= 1")


class TaskSessionFactory:
    """Picklable worker factory: mission = task name -> prepared session.

    Rebuilds the pipeline from the artifact registry in the worker
    process (``ArtifactBuilder(seed).quantized()``), then prepares one
    session per mission on first request — the "never pickle models"
    bootstrap used by ``repro engine serve``.  The pipeline is built
    lazily once per process and cached on the instance.

    ``cascade=True`` serves each mission through a
    :class:`repro.cascade.CascadeSession` instead of the plain session.
    """

    def __init__(self, seed: int = 0, cascade: bool = False,
                 multi_task: bool = False) -> None:
        self.seed = seed
        self.cascade = cascade
        self.multi_task = multi_task
        self._pipeline = None

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_pipeline"] = None  # never pickle models across
        return state

    def _build_pipeline(self):
        from repro.core import ArtifactBuilder, ITaskPipeline

        builder = ArtifactBuilder(seed=self.seed, verbose=False)
        return ITaskPipeline(builder.quantized())

    def __call__(self, mission: str):
        from repro.core import TaskSpec
        from repro.data import get_task

        if self._pipeline is None:
            self._pipeline = self._build_pipeline()
        spec = TaskSpec.from_definition(get_task(mission))
        if self.cascade:
            return self._pipeline.cascade_session(
                spec, multi_task=self.multi_task)
        return self._pipeline.session(spec, multi_task=self.multi_task)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _json_roundtrip(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a snapshot through JSON so a document probed over the
    pipe is byte-for-byte what the worker's HTTP ``/snapshot`` serves
    (tuples become lists, keys become strings) — the bit-identical
    merge property must not depend on which transport fetched it."""
    import json

    return json.loads(json.dumps(doc))


def _picklable_exc(exc: BaseException) -> BaseException:
    import pickle

    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _shard_worker_main(conn_recv, conn_send, shard_index: int,
                       config: ShardConfig,
                       factory: Callable[[str], Any]) -> None:
    """Entry point of one shard worker process.

    Bootstrap order matters: install a fresh registry (the forked one
    carries the parent's accumulated metrics, which would double-count
    in merged snapshots, and locks whose fork-time state is not
    guaranteed clean), reseed ``np.random`` process-uniquely, then
    announce readiness with the metrics endpoint, and serve.
    """
    import numpy as np

    from repro.obs import Registry, install_registry
    from repro.obs.export import MetricsServer, mergeable_snapshot

    drain_flag = threading.Event()
    # The handler only sets a flag: sending on the pipe from signal
    # context could re-enter a send already in progress on this thread.
    signal.signal(signal.SIGTERM, lambda *_: drain_flag.set())

    install_registry(Registry("repro"))
    registry = get_registry()
    # Pre-register the reject counter: merged shard snapshots (and the
    # SLO gates reading them) should see an explicit zero from a worker
    # that never drained, not an absent counter that falls back to
    # whatever the front-end process happened to record.
    registry.counter("engine.rejected")
    seed = worker_seed(config.base_seed, shard_index, os.getpid())
    np.random.seed(seed)

    metrics: Optional[MetricsServer] = None
    if config.metrics:
        metrics = MetricsServer(registry, port=0).start()

    send_lock = threading.Lock()

    def send(msg) -> None:
        # Results are sent from engine-worker done-callbacks while the
        # main thread answers probes: one pipe, one lock.
        with send_lock:
            try:
                conn_send.send(msg)
            except (OSError, BrokenPipeError, ValueError):
                pass  # front-end went away; nothing left to tell

    send(("ready", {
        "shard": shard_index,
        "pid": os.getpid(),
        "seed": seed,
        "metrics_url": metrics.url if metrics is not None else None,
        "metrics_port": metrics.port if metrics is not None else None,
    }))

    engines: Dict[str, Any] = {}
    sessions: Dict[str, Any] = {}
    draining = False

    def engine_for(mission: str):
        engine = engines.get(mission)
        if engine is None:
            session = factory(mission)
            sessions[mission] = session
            if hasattr(session, "engine"):
                engine = session.engine(config.engine)
            else:
                from repro.serve.engine import DetectionEngine

                engine = DetectionEngine(session, config.engine)
            engines[mission] = engine
        return engine

    def close_engines() -> None:
        for engine in engines.values():
            engine.close(wait=True)

    def begin_drain() -> None:
        nonlocal draining
        if draining:
            return
        # Announce first so the front-end stops dispatching and starts
        # redistributing its queue while we finish the in-flight work.
        send(("draining", shard_index))
        close_engines()
        draining = True

    def reject(job_id: int) -> None:
        registry.count("engine.rejected")
        send(("rejected", job_id))

    def final_snapshot() -> Dict[str, Any]:
        return _json_roundtrip(mergeable_snapshot(registry))

    def handle_probe(probe_id: int, name: str) -> None:
        try:
            if name == "snapshot":
                payload: Any = final_snapshot()
            elif name == "rng":
                payload = {"seed": seed, "pid": os.getpid(),
                           "samples": np.random.random(4).tolist()}
            elif name == "queue_depth":
                payload = {mission: engine.queue_depth
                           for mission, engine in engines.items()}
            elif name == "decisions":
                payload = {
                    mission: session.decision_summary()
                    for mission, session in sessions.items()
                    if hasattr(session, "decision_summary")
                }
            else:
                raise ValueError(f"unknown probe {name!r}")
        except Exception as exc:
            send(("probe_error", probe_id, _picklable_exc(exc)))
        else:
            send(("probe_result", probe_id, payload))

    def handle_job(job_id: int, mission: str, scene, stride,
                   ctx_wire) -> None:
        if draining:
            reject(job_id)
            return
        try:
            engine = engine_for(mission)
            future = engine.submit(
                scene, stride=stride, block=True,
                ctx=context_from_wire(ctx_wire))
        except Exception as exc:
            send(("error", job_id, _picklable_exc(exc)))
            return

        def on_done(fut, job_id=job_id) -> None:
            try:
                result = fut.result()
            except BaseException as exc:
                send(("error", job_id, _picklable_exc(exc)))
            else:
                send(("result", job_id, result))

        future.add_done_callback(on_done)

    try:
        while True:
            if drain_flag.is_set() and not draining:
                begin_drain()
            if not conn_recv.poll(0.05):
                continue
            try:
                msg = conn_recv.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "job":
                handle_job(*msg[1:])
            elif kind == "probe":
                handle_probe(*msg[1:])
            elif kind == "close":
                break
    finally:
        close_engines()
        send(("closed", final_snapshot()))
        if metrics is not None:
            metrics.stop()
        try:
            conn_send.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Front-end
# ----------------------------------------------------------------------
class _ShardJob:
    __slots__ = ("job_id", "mission", "scene", "stride", "ctx_wire",
                 "future", "primary", "tenant")

    def __init__(self, job_id: int, mission: str, scene: "Scene",
                 stride: Optional[int], ctx_wire: Optional[dict],
                 primary: int, tenant: Optional[str]) -> None:
        self.job_id = job_id
        self.mission = mission
        self.scene = scene
        self.stride = stride
        self.ctx_wire = ctx_wire
        self.future: "Future[List[Detection]]" = Future()
        self.primary = primary
        self.tenant = tenant


_STOP = object()


class _WorkerHandle:
    """Front-end bookkeeping for one shard worker."""

    def __init__(self, index: int, queue_size: int) -> None:
        self.index = index
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self.pending: Dict[int, _ShardJob] = {}
        self.probes: Dict[int, Future] = {}
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.draining = False
        self.dead = False
        self.info: Dict[str, Any] = {}
        self.final_snapshot: Optional[Dict[str, Any]] = None
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn_send: Any = None  # parent -> worker
        self.conn_recv: Any = None  # worker -> parent
        self.dispatcher: Optional[threading.Thread] = None
        self.reader: Optional[threading.Thread] = None

    @property
    def live(self) -> bool:
        return not (self.draining or self.dead)

    def send(self, msg) -> bool:
        with self.send_lock:
            try:
                self.conn_send.send(msg)
                return True
            except (OSError, BrokenPipeError, ValueError):
                return False


class ShardRouter:
    """Mission-affinity front-end over N shard worker processes.

    ``factory(mission)`` runs **in the worker** and must return a
    session-like object (``detect_batch`` at minimum; an ``engine``
    method is used when present, so :class:`MissionSession` and
    :class:`CascadeSession` both work).  Under the default ``fork``
    start method any callable works; under ``spawn`` it must pickle
    (see :class:`TaskSessionFactory`).
    """

    def __init__(self, factory: Callable[[str], Any],
                 config: Optional[ShardConfig] = None) -> None:
        self.config = config or ShardConfig()
        self.factory = factory
        self._closed = False
        self._close_lock = threading.Lock()
        self._job_ids = itertools.count(1)
        self._probe_ids = itertools.count(1)
        self._tenant_lock = threading.Lock()
        self._tenant_inflight: Dict[str, int] = {}

        method = self.config.start_method
        if method is None:
            method = ("fork" if "fork" in
                      multiprocessing.get_all_start_methods() else None)
        mp_ctx = multiprocessing.get_context(method)

        self._handles = [_WorkerHandle(i, self.config.queue_size)
                         for i in range(self.config.num_shards)]
        # Spawn EVERY process before starting ANY parent thread: forking
        # while a parent thread holds the registry (or a pipe) lock
        # would hand the child a lock that is never released.
        for handle in self._handles:
            to_worker_r, to_worker_w = mp_ctx.Pipe(duplex=False)
            to_parent_r, to_parent_w = mp_ctx.Pipe(duplex=False)
            process = mp_ctx.Process(
                target=_shard_worker_main,
                args=(to_worker_r, to_parent_w, handle.index,
                      self.config, factory),
                name=f"repro-shard-{handle.index}",
                daemon=True,
            )
            process.start()
            # Close the worker's ends in the parent so worker death
            # surfaces as EOF on conn_recv instead of a silent hang.
            to_worker_r.close()
            to_parent_w.close()
            handle.process = process
            handle.conn_send = to_worker_w
            handle.conn_recv = to_parent_r

        self._await_ready()

        for handle in self._handles:
            handle.dispatcher = threading.Thread(
                target=self._dispatch_loop, args=(handle,),
                name=f"repro-shard-dispatch-{handle.index}", daemon=True)
            handle.reader = threading.Thread(
                target=self._read_loop, args=(handle,),
                name=f"repro-shard-read-{handle.index}", daemon=True)
            handle.dispatcher.start()
            handle.reader.start()

    # -- bootstrap -----------------------------------------------------
    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.config.ready_timeout_s
        try:
            for handle in self._handles:
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise TimeoutError(
                            f"shard {handle.index} not ready within "
                            f"{self.config.ready_timeout_s:.0f}s")
                    if handle.conn_recv.poll(min(remaining, 0.2)):
                        msg = handle.conn_recv.recv()
                        if msg[0] != "ready":
                            raise RuntimeError(
                                f"shard {handle.index} sent {msg[0]!r} "
                                "before ready")
                        handle.info = msg[1]
                        break
                    if not handle.process.is_alive():
                        raise RuntimeError(
                            f"shard {handle.index} died during bootstrap "
                            f"(exitcode {handle.process.exitcode})")
        except BaseException:
            for handle in self._handles:
                if handle.process is not None and handle.process.is_alive():
                    handle.process.terminate()
            raise

    # -- routing -------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    def shard_for(self, mission: str) -> int:
        """The primary shard for a mission (ignores liveness)."""
        return shard_for_mission(mission, self.config.num_shards)

    def _pick_handle(self, mission: str) -> _WorkerHandle:
        primary = self.shard_for(mission)
        n = self.config.num_shards
        for k in range(n):
            handle = self._handles[(primary + k) % n]
            if handle.live:
                return handle
        raise ShardClosed("no live shards")

    def shard_info(self) -> List[Dict[str, Any]]:
        """Ready-handshake info per shard (pid, seed, metrics url)."""
        return [dict(handle.info) for handle in self._handles]

    def shard_metrics_urls(self) -> List[str]:
        """Metrics endpoints of shards that exposed one."""
        return [handle.info.get("metrics_url")
                for handle in self._handles
                if handle.info.get("metrics_url")]

    # -- submission ----------------------------------------------------
    def submit(self, scene: "Scene", mission: str, *,
               stride: Optional[int] = None,
               tenant: Optional[str] = None,
               block: bool = True,
               timeout: Optional[float] = None,
               ctx: Optional[RequestContext] = None,
               ) -> "Future[List[Detection]]":
        """Route one scene to its mission's shard; returns a future.

        Backpressure mirrors :meth:`DetectionEngine.submit`: a full
        shard queue blocks, or — with ``block=False`` / ``timeout`` —
        sheds with :class:`ShardRejected` and a ``shard.rejected``
        count.  The request context (explicit ``ctx`` or the ambient
        :func:`current_context`) crosses the process boundary as its
        wire form, so worker-side spans join the caller's trace.
        """
        if self._closed:
            raise ShardClosed("router is closed")
        if ctx is None:
            ctx = current_context()
        if tenant is None and ctx is not None:
            tenant = ctx.tenant
        registry = get_registry()
        handle = self._pick_handle(mission)

        cap = self.config.max_inflight_per_tenant
        if cap is not None and tenant is not None:
            with self._tenant_lock:
                if self._tenant_inflight.get(tenant, 0) >= cap:
                    registry.count("shard.rejected")
                    registry.count("shard.shed.tenant")
                    raise ShardRejected(
                        f"tenant {tenant!r} at inflight cap ({cap})")
                self._tenant_inflight[tenant] = \
                    self._tenant_inflight.get(tenant, 0) + 1

        job = _ShardJob(next(self._job_ids), mission, scene, stride,
                        context_to_wire(ctx), self.shard_for(mission),
                        tenant)
        if cap is not None and tenant is not None:
            job.future.add_done_callback(
                lambda _fut, tenant=tenant: self._release_tenant(tenant))
        registry.observe("shard.queue_depth", handle.queue.qsize())
        try:
            handle.queue.put(job, block=block, timeout=timeout)
        except queue.Full:
            self._complete_tenant_slot_on_reject(job)
            registry.count("shard.rejected")
            raise ShardRejected(
                f"shard {handle.index} queue full "
                f"({self.config.queue_size} scenes)") from None
        registry.count("shard.submitted")
        return job.future

    def _release_tenant(self, tenant: str) -> None:
        with self._tenant_lock:
            count = self._tenant_inflight.get(tenant, 0) - 1
            if count > 0:
                self._tenant_inflight[tenant] = count
            else:
                self._tenant_inflight.pop(tenant, None)

    def _complete_tenant_slot_on_reject(self, job: _ShardJob) -> None:
        # The future never completes (we raise instead of returning
        # it), so the done-callback can't release the slot — fail the
        # future to fire the callback, then swallow it.
        if not job.future.done():
            job.future.set_exception(
                ShardRejected("rejected before dispatch"))
            job.future.exception()  # mark retrieved

    def detect_many(self, scenes: Sequence["Scene"], mission: str,
                    stride: Optional[int] = None,
                    ) -> List[List["Detection"]]:
        """Submit scenes for one mission; gather in submission order."""
        futures = [self.submit(scene, mission, stride=stride)
                   for scene in scenes]
        return [future.result() for future in futures]

    @property
    def queue_depths(self) -> List[int]:
        return [handle.queue.qsize() for handle in self._handles]

    # -- dispatcher / reader threads -----------------------------------
    def _dispatch_loop(self, handle: _WorkerHandle) -> None:
        while True:
            item = handle.queue.get()
            if item is _STOP:
                return
            if not handle.live:
                self._reroute(item, exclude=handle.index)
                continue
            with handle.lock:
                handle.pending[item.job_id] = item
            sent = handle.send(("job", item.job_id, item.mission,
                                item.scene, item.stride, item.ctx_wire))
            if not sent:
                handle.dead = True
                with handle.lock:
                    handle.pending.pop(item.job_id, None)
                self._reroute(item, exclude=handle.index)

    def _read_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                msg = handle.conn_recv.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "result":
                job = self._take_pending(handle, msg[1])
                if job is not None and not job.future.done():
                    job.future.set_result(msg[2])
            elif kind == "error":
                job = self._take_pending(handle, msg[1])
                if job is not None and not job.future.done():
                    job.future.set_exception(msg[2])
            elif kind == "rejected":
                # The worker is draining: this job never entered an
                # engine there, so another shard may serve it.
                job = self._take_pending(handle, msg[1])
                if job is not None:
                    self._reroute(job, exclude=handle.index)
            elif kind == "draining":
                handle.draining = True
                self._redistribute_queue(handle)
            elif kind == "probe_result":
                self._take_probe(handle, msg[1], result=msg[2])
            elif kind == "probe_error":
                self._take_probe(handle, msg[1], error=msg[2])
            elif kind == "closed":
                handle.final_snapshot = msg[1]
        # EOF: the worker is gone.  Reroute everything it still owed.
        handle.dead = True
        with handle.lock:
            orphans = list(handle.pending.values())
            handle.pending.clear()
            probes = list(handle.probes.values())
            handle.probes.clear()
        for probe in probes:
            if not probe.done():
                probe.set_exception(ShardClosed(
                    f"shard {handle.index} exited mid-probe"))
        for job in orphans:
            self._reroute(job, exclude=handle.index)
        self._redistribute_queue(handle)

    def _take_pending(self, handle: _WorkerHandle,
                      job_id: int) -> Optional[_ShardJob]:
        with handle.lock:
            return handle.pending.pop(job_id, None)

    def _take_probe(self, handle: _WorkerHandle, probe_id: int,
                    result: Any = None, error: Any = None) -> None:
        with handle.lock:
            future = handle.probes.pop(probe_id, None)
        if future is None or future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def _redistribute_queue(self, handle: _WorkerHandle) -> None:
        # Drain the front-end queue of a draining/dead shard onto live
        # peers.  The dispatcher may concurrently pull items; it checks
        # ``handle.live`` itself and reroutes what it wins.
        while True:
            try:
                item = handle.queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                handle.queue.put(_STOP)  # keep the dispatcher's poison
                return
            self._reroute(item, exclude=handle.index)

    def _reroute(self, job: _ShardJob, exclude: int) -> None:
        """Requeue a job on the next live shard; never drop the future."""
        if job.future.done():
            return
        n = self.config.num_shards
        candidates = []
        for k in range(n):
            index = (job.primary + k) % n
            handle = self._handles[index]
            if index != exclude and handle.live:
                candidates.append(handle)
        if not candidates:
            job.future.set_exception(
                ShardClosed("no live shard to reroute to"))
            return
        get_registry().count("shard.rerouted")
        for handle in candidates[:-1]:
            try:
                handle.queue.put_nowait(job)
                return
            except queue.Full:
                continue
        # Last resort blocks: backpressure, not loss.  This runs on a
        # reader/dispatcher thread of a *different* shard, whose own
        # queue drains independently, so no self-deadlock.
        candidates[-1].queue.put(job)

    # -- probes & aggregation ------------------------------------------
    def probe(self, name: str, shard: int,
              timeout: Optional[float] = 30.0) -> Any:
        """Ask one live worker a question over the pipe.

        Known probes: ``snapshot`` (mergeable metrics document),
        ``rng`` (seed + next samples), ``queue_depth`` (per-mission
        engine depth), ``decisions`` (cascade routing audit).
        """
        handle = self._handles[shard]
        if handle.dead:
            raise ShardClosed(f"shard {shard} is dead")
        probe_id = next(self._probe_ids)
        future: Future = Future()
        with handle.lock:
            handle.probes[probe_id] = future
        if not handle.send(("probe", probe_id, name)):
            with handle.lock:
                handle.probes.pop(probe_id, None)
            raise ShardClosed(f"shard {shard} pipe is closed")
        return future.result(timeout=timeout)

    def shard_snapshots(self) -> List[Dict[str, Any]]:
        """One mergeable snapshot document per shard.

        Live shards are probed over the pipe (the same JSON-normalized
        document their own ``/snapshot`` serves); exited shards
        contribute the final snapshot they sent while closing, so
        merged totals never lose a drained worker's history.
        """
        docs: List[Dict[str, Any]] = []
        for handle in self._handles:
            if handle.final_snapshot is not None:
                docs.append(handle.final_snapshot)
            elif not handle.dead:
                try:
                    docs.append(self.probe("snapshot", handle.index))
                except (ShardClosed, TimeoutError):
                    if handle.final_snapshot is not None:
                        docs.append(handle.final_snapshot)
        return docs

    def aggregate_snapshot(self) -> Dict[str, Any]:
        """Merged view of every shard: exactly
        ``merge_snapshots(shard_snapshots())`` — the front-end adds
        nothing of its own, so the merged document is bit-identical to
        merging the per-shard documents out of band."""
        from repro.obs.export import merge_snapshots

        return merge_snapshots(self.shard_snapshots())

    def serve_metrics(self, host: str = "127.0.0.1",
                      port: int = 0) -> "MetricsServer":
        """An aggregation endpoint: ``/snapshot`` and ``/metrics``
        serve the merged cross-shard document (started; caller stops)."""
        from repro.obs.export import MetricsServer

        return MetricsServer(host=host, port=port,
                             snapshot_fn=self.aggregate_snapshot).start()

    # -- lifecycle -----------------------------------------------------
    def drain_shard(self, shard: int) -> None:
        """SIGTERM one worker: finish in-flight, reject new, keep the
        process around until ``close()`` collects its final snapshot."""
        handle = self._handles[shard]
        if handle.process is not None and handle.process.is_alive():
            os.kill(handle.process.pid, signal.SIGTERM)

    def close(self, wait: bool = True) -> None:
        """Drain queues, stop workers, collect final snapshots.

        With ``wait=True`` every already-submitted future completes
        (normally or exceptionally) before the workers are told to
        exit; the per-shard final snapshots keep
        :meth:`aggregate_snapshot` meaningful after close.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if wait:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with_work = False
                for handle in self._handles:
                    with handle.lock:
                        pending = bool(handle.pending)
                    if (not handle.dead
                            and (pending or handle.queue.qsize() > 0)):
                        with_work = True
                        break
                if not with_work:
                    break
                time.sleep(0.01)
        for handle in self._handles:
            handle.send(("close",))
        for handle in self._handles:
            if handle.process is not None:
                handle.process.join(timeout=30.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
        for handle in self._handles:
            handle.queue.put(_STOP)
        for handle in self._handles:
            if handle.dispatcher is not None:
                handle.dispatcher.join(timeout=5.0)
            if handle.reader is not None:
                handle.reader.join(timeout=5.0)
        # Anything still queued or pending has no worker left.
        for handle in self._handles:
            with handle.lock:
                orphans = list(handle.pending.values())
                handle.pending.clear()
            for job in orphans:
                if not job.future.done():
                    job.future.set_exception(
                        ShardClosed("router closed before scene was served"))
            while True:
                try:
                    item = handle.queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP and not item.future.done():
                    item.future.set_exception(
                        ShardClosed("router closed before scene was served"))

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        states = "".join(
            "D" if h.dead else ("d" if h.draining else "·")
            for h in self._handles)
        return (f"ShardRouter(shards={self.config.num_shards}, "
                f"states=[{states}], closed={self._closed})")
