"""Micro-batching detection engine: queue, workers, backpressure.

Serving traffic arrives one scene at a time, but the batch-first
dataflow (``TaskDetector.detect_batch``) is cheapest when many scenes
share one model forward.  The :class:`DetectionEngine` bridges the two:

* :meth:`DetectionEngine.submit` enqueues a scene on a **bounded** queue
  and returns a future — when the queue is full the call blocks, which
  is the backpressure signal (producers slow to the engine's pace
  instead of growing an unbounded backlog); ``block=False`` turns the
  same condition into an immediate :class:`EngineRejected` (counted as
  ``engine.rejected``) for callers that would rather drop than wait;
* worker threads drain the queue into micro-batches, flushing when
  ``max_batch`` scenes are pending or ``flush_ms`` after the first
  scene of a batch arrived — the classic latency/throughput knob pair;
* :meth:`DetectionEngine.detect_many` submits a whole scene list and
  gathers results **in submission order**, independent of how workers
  interleave, so callers see deterministic ordering;
* :meth:`DetectionEngine.close` (or the context manager) drains
  outstanding work, then stops the workers.

Observability: every flush records the ``engine.batch_size`` and
``engine.queue_depth`` distributions, the ``engine.{scenes,batches}``
counters, and — per job — two separate spans, so backpressure is
distinguishable from slow inference in traces and ``/metrics``:

* ``engine.queue_wait`` — submit to flush start (time spent queued);
* ``engine.execute`` — the batched forward interval the request rode
  (its perceived inference time; batch peers share the interval).

Request tracing: ``submit`` captures the caller's
:class:`repro.obs.context.RequestContext`, so the per-job spans carry
the submitter's trace id and re-parent under its request span even
though they are recorded on a worker thread, and the contexts ride
down to ``session.detect_batch(..., contexts=...)`` when the session
accepts them (the cascade session does — every routing decision
becomes attributable to a trace).  An installed
:class:`repro.obs.sampler.ExemplarSampler` sees per-request durations
(tail sampling) and dumps its flight recorder when a batch raises.

Determinism: batch *composition* depends on arrival timing, so only a
batch-invariant model makes concurrent results bit-identical to
sequential ones.  The quantized (integer) configuration is exactly
batch-invariant; float models agree on boxes/order with scores equal to
within an ulp or two (see ``TaskDetector.detect_batch``).
"""

from __future__ import annotations

import dataclasses
import inspect
import queue
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.obs import get_registry
from repro.obs.context import RequestContext, current_context
from repro.obs.sampler import get_sampler

if TYPE_CHECKING:
    from repro.data.scenes import Scene
    from repro.detect.pipeline import Detection
    from repro.serve.session import MissionSession


class EngineClosed(RuntimeError):
    """Raised by ``submit`` after the engine has been closed."""


class EngineRejected(RuntimeError):
    """Raised by non-blocking ``submit`` when the queue is full."""


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Micro-batching knobs.

    ``max_batch``
        Flush as soon as this many scenes are pending in one batch.
    ``flush_ms``
        Flush a partial batch this many milliseconds after its first
        scene arrived (tail-latency bound for sparse traffic).
    ``workers``
        Worker threads.  More workers overlap batches; on a single core
        they trade latency for fairness rather than adding throughput.
    ``queue_size``
        Bound of the submit queue — the backpressure depth.
    """

    max_batch: int = 8
    flush_ms: float = 2.0
    workers: int = 1
    queue_size: int = 64

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.flush_ms < 0.0:
            raise ValueError("flush_ms must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")


class _Job:
    __slots__ = ("scene", "stride", "future", "enqueued_s", "ctx")

    def __init__(self, scene: "Scene", stride: Optional[int],
                 ctx: Optional[RequestContext]) -> None:
        self.scene = scene
        self.stride = stride
        self.future: "Future[List[Detection]]" = Future()
        self.enqueued_s = time.perf_counter()
        self.ctx = ctx


_SENTINEL = object()


class DetectionEngine:
    """Bounded-queue micro-batching worker pool over one session."""

    def __init__(self, session: "MissionSession",
                 config: Optional[EngineConfig] = None) -> None:
        self.session = session
        self.config = config or EngineConfig()
        # Sessions that accept per-scene request contexts (the cascade
        # session does) get them; plain sessions keep their signature.
        self._pass_contexts = self._accepts_contexts(session.detect_batch)
        self._queue: "queue.Queue[object]" = queue.Queue(
            maxsize=self.config.queue_size)
        self._closed = False
        self._close_lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-engine-{i}", daemon=True)
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    @staticmethod
    def _accepts_contexts(detect_batch) -> bool:
        try:
            return "contexts" in inspect.signature(detect_batch).parameters
        except (TypeError, ValueError):  # builtins / C callables
            return False

    # -- submission ----------------------------------------------------
    def submit(self, scene: "Scene", stride: Optional[int] = None, *,
               block: bool = True,
               timeout: Optional[float] = None,
               ctx: Optional[RequestContext] = None,
               ) -> "Future[List[Detection]]":
        """Enqueue one scene; blocks when the queue is full (backpressure).

        With ``block=False`` (or a ``timeout``), a full queue raises
        :class:`EngineRejected` instead — the load-shedding flavor of
        backpressure — and bumps the ``engine.rejected`` counter so
        rejected traffic is visible next to served traffic.

        ``ctx`` overrides the implicit :func:`current_context` capture;
        a shard worker submitting on behalf of a remote caller passes
        the deserialized wire context here, since the caller's
        ContextVar never crossed the process boundary.
        """
        if self._closed:
            raise EngineClosed("engine is closed")
        get_registry().observe("engine.queue_depth", self._queue.qsize())
        job = _Job(scene, stride, ctx if ctx is not None else current_context())
        try:
            self._queue.put(job, block=block, timeout=timeout)
        except queue.Full:
            get_registry().count("engine.rejected")
            sampler = get_sampler()
            if sampler is not None:
                sampler.flight.record(
                    "rejected",
                    trace_id=job.ctx.trace_id if job.ctx else None,
                    queue_depth=self._queue.qsize())
            raise EngineRejected(
                f"queue full ({self.config.queue_size} scenes)") from None
        return job.future

    def detect_many(self, scenes: Sequence["Scene"],
                    stride: Optional[int] = None) -> List[List["Detection"]]:
        """Submit scenes and gather results in submission order.

        Ordering is deterministic regardless of worker interleaving:
        results are collected from the submission-ordered futures, not
        from completion order.
        """
        futures = [self.submit(scene, stride=stride) for scene in scenes]
        return [future.result() for future in futures]

    # -- lifecycle -----------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting work; drain the queue, then stop the workers.

        Jobs already queued are still executed (graceful shutdown) —
        their futures complete before the workers exit.
        """
        with self._close_lock:
            if self._closed:
                if wait:
                    for worker in self._workers:
                        worker.join()
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        if wait:
            for worker in self._workers:
                worker.join()
            # A submit() racing close() can slip a job in behind the
            # sentinels; fail it rather than leaving its future hanging.
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SENTINEL and not item.future.done():
                    item.future.set_exception(
                        EngineClosed("engine closed before scene was served"))

    def __enter__(self) -> "DetectionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        """Scenes currently waiting in the submit queue (approximate).

        This is the load signal the cascade router's shedding policy
        reads: a growing depth means producers are outpacing the
        workers, so escalations shed to keep the fast path flowing.
        """
        return self._queue.qsize()

    # -- workers -------------------------------------------------------
    def _worker_loop(self) -> None:
        cfg = self.config
        while True:
            head = self._queue.get()
            if head is _SENTINEL:
                return
            batch: List[_Job] = [head]
            deadline = time.perf_counter() + cfg.flush_ms / 1e3
            saw_sentinel = False
            while len(batch) < cfg.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SENTINEL:
                    saw_sentinel = True
                    break
                batch.append(item)
            self._flush(batch)
            if saw_sentinel:
                return

    def _flush(self, batch: List[_Job]) -> None:
        obs = get_registry()
        flush_start = time.perf_counter()
        if obs.enabled:
            obs.observe("engine.batch_size", len(batch))
            obs.count("engine.batches")
            obs.count("engine.scenes", len(batch))
            for job in batch:
                # Queued interval, attributed to the submitter's trace
                # and parented under its request span even though this
                # runs on a worker thread.
                obs.record_span(
                    "engine.queue_wait", job.enqueued_s, flush_start,
                    trace_id=job.ctx.trace_id if job.ctx else None,
                    parent_id=job.ctx.parent_span_id if job.ctx else None)
        error: Optional[BaseException] = None
        try:
            with obs.span("engine.batch", scenes=len(batch)) as batch_span:
                # Jobs may carry different strides; group per stride so
                # each group still shares one fused forward.
                by_stride: "dict[Optional[int], List[_Job]]" = {}
                for job in batch:
                    by_stride.setdefault(job.stride, []).append(job)
                for stride, jobs in by_stride.items():
                    exec_start = time.perf_counter()
                    try:
                        scenes = [job.scene for job in jobs]
                        if self._pass_contexts:
                            results = self.session.detect_batch(
                                scenes, stride=stride,
                                contexts=[job.ctx for job in jobs])
                        else:
                            results = self.session.detect_batch(
                                scenes, stride=stride)
                    finally:
                        self._record_execute(
                            obs, jobs, exec_start, time.perf_counter(),
                            batch_span)
                    for job, detections in zip(jobs, results):
                        job.future.set_result(detections)
        except BaseException as exc:  # fail the whole batch, keep serving
            error = exc
            for job in batch:
                if not job.future.done():
                    job.future.set_exception(exc)
        if error is not None:
            sampler = get_sampler()
            if sampler is not None:
                sampler.record_engine_error(
                    error, scenes=len(batch), registry=obs,
                    trace_ids=[job.ctx.trace_id if job.ctx else None
                               for job in batch])

    @staticmethod
    def _record_execute(obs, jobs: List[_Job], exec_start: float,
                        exec_end: float, batch_span) -> None:
        if not obs.enabled:
            return
        sampler = get_sampler()
        batch_span_id = getattr(batch_span, "span_id", None)
        for job in jobs:
            # The request's perceived inference time is the whole fused
            # interval it rode, not an amortized slice.
            obs.record_span(
                "engine.execute", exec_start, exec_end,
                trace_id=job.ctx.trace_id if job.ctx else None,
                parent_id=(job.ctx.parent_span_id
                           if job.ctx and job.ctx.parent_span_id is not None
                           else batch_span_id))
            if sampler is not None and job.ctx is not None:
                sampler.observe_request(
                    job.ctx.trace_id, exec_end - job.enqueued_s,
                    meta={"tenant": job.ctx.tenant,
                          "mission": job.ctx.mission})
