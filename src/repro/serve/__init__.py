"""Session-oriented, batch-first serving for the detect path.

The ROADMAP's north star is a system serving heavy traffic, and this
package is its execution engine, in three layers:

* :class:`MissionSession` — one *prepared* mission (knowledge graph,
  refinement, matcher plans, selected configuration, detector) reused
  across requests, held in an LRU :class:`SessionCache` so repeated
  missions never re-run LLM extraction or configuration selection;
* batch-first dataflow — sessions expose
  :meth:`MissionSession.detect_batch`, which fuses many scenes' windows
  into one model forward and one knowledge-graph match
  (:meth:`repro.detect.TaskDetector.detect_batch`);
* :class:`DetectionEngine` — a bounded-queue worker pool that
  micro-batches individually submitted scenes (flush at ``max_batch``
  scenes or after ``flush_ms``), applies backpressure when the queue is
  full, shuts down gracefully, and returns results in submission order;
* :class:`ShardRouter` — a multi-process tier over N such engines:
  mission-fingerprint affinity routing, bounded per-shard queues with
  shedding and per-tenant fairness, graceful drain on SIGTERM, and
  bit-exact cross-shard metrics aggregation (see :mod:`repro.serve
  .shard`).

:class:`repro.core.ITaskPipeline` stays the friendly facade: it now
routes ``prepare``/``detect``/``evaluate`` through this cache and hands
out sessions via ``pipeline.session(spec)``.
"""

from repro.serve.session import MissionSession, SessionCache, mission_fingerprint
from repro.serve.engine import (
    DetectionEngine,
    EngineClosed,
    EngineConfig,
    EngineRejected,
)
from repro.serve.shard import (
    ShardClosed,
    ShardConfig,
    ShardRejected,
    ShardRouter,
    TaskSessionFactory,
    shard_for_mission,
    worker_seed,
)

__all__ = [
    "MissionSession",
    "SessionCache",
    "mission_fingerprint",
    "DetectionEngine",
    "EngineClosed",
    "EngineConfig",
    "EngineRejected",
    "ShardClosed",
    "ShardConfig",
    "ShardRejected",
    "ShardRouter",
    "TaskSessionFactory",
    "shard_for_mission",
    "worker_seed",
]
