"""Knowledge distillation: teacher → task-specific student.

The paper's *task-specific configuration* is a compact ViT distilled from
a large teacher on one mission's data distribution.  This package
provides:

:class:`ModelTrainer`
    supervised training of a ViT on a :class:`~repro.data.WindowDataset`
    (class + masked attribute + objectness-style losses) — used for the
    teacher and for the from-scratch baselines.
:class:`Distiller`
    the distillation loop: soft-target KL, feature-hint regression, and
    optional attention transfer.
"""

from repro.distill.trainer import TrainingConfig, ModelTrainer, evaluate_model
from repro.distill.distiller import DistillationConfig, Distiller

__all__ = [
    "TrainingConfig",
    "ModelTrainer",
    "evaluate_model",
    "DistillationConfig",
    "Distiller",
]
