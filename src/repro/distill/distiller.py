"""Teacher → student distillation.

Three signal paths, each individually switchable (the E8 ablation turns
them off one at a time):

* **soft targets** — KL between temperature-softened teacher and student
  class logits (Hinton et al.), mixed with the hard-label CE by ``alpha``;
* **feature hints** — the student's CLS embedding is regressed (through a
  learned projection) onto the teacher's CLS embedding (FitNets);
* **attention transfer** — head-averaged attention maps of matched layers
  are aligned with an MSE loss (Zagoruyko & Komodakis); token grids must
  agree, head counts may differ.

Attribute heads are distilled with per-family soft targets as well, since
the KG matcher consumes attribute distributions — transferring *soft*
attribute knowledge is what keeps the student's attribute calibration
close to the teacher's.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.data.datasets import WindowDataset, batch_iterator
from repro.nn import Linear, VisionTransformer, cross_entropy, kl_divergence, mse_loss
from repro.nn.losses import accuracy
from repro.obs import traced
from repro.optim import AdamW, WarmupCosineSchedule, clip_grad_norm
from repro.tensor import Tensor, no_grad


@dataclasses.dataclass
class DistillationConfig:
    """Distillation hyper-parameters."""

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.01
    warmup_fraction: float = 0.1
    temperature: float = 2.0
    alpha: float = 0.7                    # KD vs hard-label mix
    feature_weight: float = 0.5           # FitNets hint loss
    attention_weight: float = 0.0         # attention transfer (optional)
    attribute_weight: float = 0.5         # soft attribute distillation
    attribute_hard_weight: float = 0.0    # masked hard-label attribute CE
    task_label_weight: float = 0.0        # task-head CE (task-specific config)
    grad_clip: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.temperature <= 0.0:
            raise ValueError("temperature must be positive")


class Distiller:
    """Distill ``teacher`` into ``student`` on a window dataset."""

    def __init__(
        self,
        teacher: VisionTransformer,
        student: VisionTransformer,
        config: DistillationConfig = DistillationConfig(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if teacher.config.image_size != student.config.image_size:
            raise ValueError("teacher and student must share the input size")
        self.teacher = teacher
        self.student = student
        self.config = config
        self.history: List[Dict[str, float]] = []
        rng = rng or np.random.default_rng(config.seed)
        # Learned projection for the feature-hint loss (student dim may
        # differ from teacher dim).
        self.hint_projection = Linear(
            student.config.dim, teacher.config.dim, rng=rng
        )
        if config.attention_weight > 0.0:
            if teacher.config.num_tokens != student.config.num_tokens:
                raise ValueError(
                    "attention transfer requires matching token grids"
                )
            self._enable_attention_capture()

    def _enable_attention_capture(self) -> None:
        for block in self.teacher.encoder.blocks:
            block.attn.store_attention = True
        for block in self.student.encoder.blocks:
            block.attn.store_attention = True

    def _layer_map(self) -> List[tuple]:
        """Match student layer i to teacher layer round((i+1)·T/S)−1."""
        s_depth = self.student.config.depth
        t_depth = self.teacher.config.depth
        return [
            (i, min(t_depth - 1, int(round((i + 1) * t_depth / s_depth)) - 1))
            for i in range(s_depth)
        ]

    def _attention_loss(self) -> Optional[Tensor]:
        """Head-averaged attention alignment over the matched layers."""
        if self.config.attention_weight == 0.0:
            return None
        total: Optional[Tensor] = None
        for s_idx, t_idx in self._layer_map():
            student_attn = self.student.encoder.blocks[s_idx].attn.last_attention_tensor
            teacher_attn = self.teacher.encoder.blocks[t_idx].attn.last_attention
            if student_attn is None or teacher_attn is None:
                continue
            student_mean = student_attn.mean(axis=1)       # (B, T, T)
            teacher_mean = teacher_attn.mean(axis=1)       # ndarray
            term = mse_loss(student_mean, teacher_mean)
            total = term if total is None else total + term
        if total is None:
            return None
        return total * (self.config.attention_weight / len(self._layer_map()))

    # ------------------------------------------------------------------
    @traced("distill.fit")
    def distill(self, dataset: WindowDataset,
                val_dataset: Optional[WindowDataset] = None) -> List[Dict[str, float]]:
        cfg = self.config
        steps_per_epoch = max(1, int(np.ceil(len(dataset) / cfg.batch_size)))
        total_steps = steps_per_epoch * cfg.epochs
        trainable = list(self.student.parameters())
        if cfg.feature_weight > 0.0:
            trainable += list(self.hint_projection.parameters())
        optimizer = AdamW(trainable, lr=cfg.learning_rate,
                          weight_decay=cfg.weight_decay)
        schedule = WarmupCosineSchedule(
            cfg.learning_rate, total_steps,
            warmup_steps=int(total_steps * cfg.warmup_fraction),
        )
        self.teacher.eval()
        self.student.train()
        shared_attrs = [
            family for family in self.student.attribute_names
            if family in self.teacher.attribute_names
        ]
        step = 0
        for epoch in range(cfg.epochs):
            epoch_loss, epoch_acc, batches = 0.0, 0.0, 0
            for batch in batch_iterator(dataset, cfg.batch_size,
                                        seed=cfg.seed + epoch):
                images = Tensor(batch.images)
                with no_grad():
                    teacher_out = self.teacher(images)
                schedule.apply(optimizer, step)
                student_out = self.student(images)

                kd = kl_divergence(
                    student_out["class_logits"],
                    teacher_out["class_logits"].data,
                    temperature=cfg.temperature,
                )
                ce = cross_entropy(student_out["class_logits"], batch.class_labels)
                loss = kd * cfg.alpha + ce * (1.0 - cfg.alpha)

                if cfg.feature_weight > 0.0:
                    hint = mse_loss(
                        self.hint_projection(student_out["cls_embedding"]),
                        teacher_out["cls_embedding"].data,
                    )
                    loss = loss + hint * cfg.feature_weight

                if cfg.attribute_weight > 0.0 and shared_attrs:
                    attr_total: Optional[Tensor] = None
                    for family in shared_attrs:
                        term = kl_divergence(
                            student_out["attributes"][family],
                            teacher_out["attributes"][family].data,
                            temperature=cfg.temperature,
                        )
                        attr_total = term if attr_total is None else attr_total + term
                    loss = loss + attr_total * (cfg.attribute_weight / len(shared_attrs))

                if cfg.attribute_hard_weight > 0.0:
                    from repro.distill.trainer import _masked_attribute_loss

                    hard_attr = _masked_attribute_loss(
                        student_out, batch, cfg.attribute_hard_weight)
                    if hard_attr is not None:
                        loss = loss + hard_attr

                if (cfg.task_label_weight > 0.0
                        and "task_logits" in student_out
                        and batch.task_labels is not None):
                    # The mission's relevance labels supervise the task
                    # head — this is how the knowledge graph's decision
                    # gets distilled into the specialist.
                    task_targets = (batch.task_labels > 0.5).astype(np.int64)
                    loss = loss + cross_entropy(
                        student_out["task_logits"], task_targets
                    ) * cfg.task_label_weight

                attn_loss = self._attention_loss()
                if attn_loss is not None:
                    loss = loss + attn_loss

                self.student.zero_grad()
                self.hint_projection.zero_grad()
                loss.backward()
                if cfg.grad_clip > 0:
                    clip_grad_norm(trainable, cfg.grad_clip)
                optimizer.step()

                epoch_loss += loss.item()
                epoch_acc += accuracy(student_out["class_logits"], batch.class_labels)
                batches += 1
                step += 1
            record = {
                "epoch": epoch,
                "loss": epoch_loss / batches,
                "train_accuracy": epoch_acc / batches,
            }
            if val_dataset is not None:
                from repro.distill.trainer import evaluate_model

                record.update(evaluate_model(self.student, val_dataset))
            self.history.append(record)
        self.student.eval()
        return self.history
