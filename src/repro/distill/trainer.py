"""Supervised ViT training on window datasets.

The loss is a weighted sum of the class-head cross-entropy and one masked
cross-entropy per attribute head (background windows carry attribute label
``-1`` and are excluded from the attribute terms).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.data.datasets import WindowDataset, batch_iterator
from repro.nn import VisionTransformer, cross_entropy
from repro.nn.losses import accuracy
from repro.obs import get_registry
from repro.optim import AdamW, WarmupCosineSchedule, clip_grad_norm
from repro.tensor import Tensor, no_grad


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters of a supervised training run."""

    epochs: int = 8
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.01
    warmup_fraction: float = 0.1
    attribute_loss_weight: float = 0.5
    label_smoothing: float = 0.0
    grad_clip: float = 1.0
    seed: int = 0
    log_every: int = 0  # 0 disables progress printing


def _masked_attribute_loss(model_out: Dict, batch: WindowDataset,
                           weight: float) -> Optional[Tensor]:
    """Sum of attribute-head cross-entropies over labelled rows."""
    if weight == 0.0:
        return None
    total: Optional[Tensor] = None
    for family, logits in model_out["attributes"].items():
        labels = batch.attribute_labels[family]
        valid = np.flatnonzero(labels >= 0)
        if valid.size == 0:
            continue
        term = cross_entropy(logits[valid], labels[valid])
        total = term if total is None else total + term
    if total is None:
        return None
    return total * weight


class ModelTrainer:
    """Train a :class:`VisionTransformer` on a window dataset."""

    def __init__(self, model: VisionTransformer,
                 config: TrainingConfig = TrainingConfig()) -> None:
        self.model = model
        self.config = config
        self.history: List[Dict[str, float]] = []

    def fit(self, dataset: WindowDataset,
            val_dataset: Optional[WindowDataset] = None) -> List[Dict[str, float]]:
        cfg = self.config
        steps_per_epoch = max(1, int(np.ceil(len(dataset) / cfg.batch_size)))
        total_steps = steps_per_epoch * cfg.epochs
        optimizer = AdamW(self.model.parameters(), lr=cfg.learning_rate,
                          weight_decay=cfg.weight_decay)
        schedule = WarmupCosineSchedule(
            cfg.learning_rate, total_steps,
            warmup_steps=int(total_steps * cfg.warmup_fraction),
        )
        step = 0
        self.model.train()
        obs = get_registry()
        with obs.span("train.fit", epochs=cfg.epochs, examples=len(dataset),
                      batch_size=cfg.batch_size):
            for epoch in range(cfg.epochs):
                epoch_loss, epoch_acc, batches = 0.0, 0.0, 0
                with obs.span("train.epoch", epoch=epoch) as epoch_span:
                    for batch in batch_iterator(dataset, cfg.batch_size,
                                                seed=cfg.seed + epoch):
                        schedule.apply(optimizer, step)
                        out = self.model(Tensor(batch.images))
                        loss = cross_entropy(out["class_logits"], batch.class_labels,
                                             label_smoothing=cfg.label_smoothing)
                        attr_loss = _masked_attribute_loss(
                            out, batch, cfg.attribute_loss_weight)
                        if attr_loss is not None:
                            loss = loss + attr_loss
                        self.model.zero_grad()
                        loss.backward()
                        if cfg.grad_clip > 0:
                            clip_grad_norm(self.model.parameters(), cfg.grad_clip)
                        optimizer.step()
                        epoch_loss += loss.item()
                        epoch_acc += accuracy(out["class_logits"], batch.class_labels)
                        batches += 1
                        step += 1
                    obs.count("train.steps", batches)
                    epoch_span.set_attr(loss=epoch_loss / batches)
                record = {
                    "epoch": epoch,
                    "loss": epoch_loss / batches,
                    "train_accuracy": epoch_acc / batches,
                }
                if val_dataset is not None:
                    record.update(evaluate_model(self.model, val_dataset))
                self.history.append(record)
                if cfg.log_every and (epoch % cfg.log_every == 0):
                    print(f"[trainer] epoch {epoch}: {record}")
        self.model.eval()
        return self.history


def evaluate_model(model: VisionTransformer, dataset: WindowDataset,
                   batch_size: int = 64) -> Dict[str, float]:
    """Class accuracy plus mean attribute accuracy over labelled rows."""
    was_training = model.training
    model.eval()
    correct, total = 0, 0
    attr_correct: Dict[str, int] = {}
    attr_total: Dict[str, int] = {}
    with get_registry().span("train.evaluate", examples=len(dataset)), no_grad():
        for batch in batch_iterator(dataset, batch_size, shuffle=False):
            out = model(Tensor(batch.images))
            pred = out["class_logits"].data.argmax(axis=-1)
            correct += int((pred == batch.class_labels).sum())
            total += len(batch)
            for family, logits in out["attributes"].items():
                labels = batch.attribute_labels[family]
                valid = labels >= 0
                if valid.any():
                    hits = (logits.data.argmax(axis=-1)[valid] == labels[valid])
                    attr_correct[family] = attr_correct.get(family, 0) + int(hits.sum())
                    attr_total[family] = attr_total.get(family, 0) + int(valid.sum())
    if was_training:
        model.train()
    metrics = {"val_accuracy": correct / max(total, 1)}
    if attr_total:
        per_family = [attr_correct[f] / attr_total[f] for f in attr_total]
        metrics["val_attribute_accuracy"] = float(np.mean(per_family))
        for family in attr_total:
            metrics[f"val_attr_{family}"] = attr_correct[family] / attr_total[family]
    return metrics
