"""Learning-rate schedules.

Schedules are plain callables ``step -> lr``; :meth:`LRSchedule.apply`
pushes the value into an optimizer.  Keeping them stateless makes the
training loops trivially resumable and easy to property-test.
"""

from __future__ import annotations

import math

from repro.optim.optimizers import Optimizer


class LRSchedule:
    """Base schedule."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, step: int) -> float:
        lr = self(step)
        optimizer.set_lr(lr)
        return lr


class ConstantSchedule(LRSchedule):
    def __init__(self, lr: float) -> None:
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class StepSchedule(LRSchedule):
    """Multiply the base LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.base_lr = float(base_lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def __call__(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineSchedule(LRSchedule):
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, base_lr: float, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.base_lr = float(base_lr)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def __call__(self, step: int) -> float:
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupCosineSchedule(LRSchedule):
    """Linear warmup followed by cosine decay — the ViT training default."""

    def __init__(
        self,
        base_lr: float,
        total_steps: int,
        warmup_steps: int = 0,
        min_lr: float = 0.0,
    ) -> None:
        if warmup_steps < 0 or warmup_steps >= total_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")
        self.base_lr = float(base_lr)
        self.total_steps = int(total_steps)
        self.warmup_steps = int(warmup_steps)
        self.min_lr = float(min_lr)
        self._cosine = CosineSchedule(
            base_lr, total_steps - warmup_steps, min_lr=min_lr
        )

    def __call__(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        return self._cosine(step - self.warmup_steps)
