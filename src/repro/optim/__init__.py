"""Optimizers and learning-rate schedules."""

from repro.optim.optimizers import Optimizer, SGD, Adam, AdamW, clip_grad_norm
from repro.optim.schedules import (
    LRSchedule,
    ConstantSchedule,
    CosineSchedule,
    WarmupCosineSchedule,
    StepSchedule,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "LRSchedule",
    "ConstantSchedule",
    "CosineSchedule",
    "WarmupCosineSchedule",
    "StepSchedule",
]
