"""First-order optimizers operating on :class:`~repro.nn.Parameter` lists."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging / divergence detection).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad.astype(np.float64) ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer: holds the parameter list and shared bookkeeping."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                v = self.momentum * v + grad if v is not None else grad.copy()
                self._velocity[id(p)] = v
                grad = grad + self.momentum * v if self.nesterov else v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, p: Parameter, grad: np.ndarray) -> np.ndarray:
        key = id(p)
        m = self._m.get(key)
        v = self._v.get(key)
        m = self.beta1 * m + (1 - self.beta1) * grad if m is not None else (1 - self.beta1) * grad
        v = (
            self.beta2 * v + (1 - self.beta2) * grad * grad
            if v is not None
            else (1 - self.beta2) * grad * grad
        )
        self._m[key], self._v[key] = m, v
        m_hat = m / (1 - self.beta1 ** self.step_count)
        v_hat = v / (1 - self.beta2 ** self.step_count)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self.step_count += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            p.data = p.data - self.lr * self._update(p, grad)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        self.step_count += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            if self.weight_decay:
                p.data = p.data * (1.0 - self.lr * self.weight_decay)
            p.data = p.data - self.lr * self._update(p, p.grad)
