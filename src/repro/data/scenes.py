"""Scene composition: multi-object images with ground-truth annotations.

A scene is a square canvas tiled into a grid of cells; each cell holds at
most one object (guaranteeing non-overlap, as in the paper's controlled
edge-sensing scenarios) and records a COCO-style annotation: bounding box,
attribute profile, and object category (or ``None`` for distractors that
match no category).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.ontology import (
    OBJECT_CATEGORIES,
    AttributeProfile,
    category_of_profile,
    profile_for_category,
    sample_profile,
)
from repro.data.rendering import (
    WINDOW_SIZE,
    render_background,
    render_clutter,
    render_object,
)


@dataclasses.dataclass
class ObjectInstance:
    """One placed object: ground-truth unit of the detection task."""

    profile: AttributeProfile
    bbox: Tuple[int, int, int, int]  # (x0, y0, x1, y1) in pixels, half-open
    category: Optional[str]
    cell: Tuple[int, int]  # (row, col) grid coordinates

    @property
    def center(self) -> Tuple[float, float]:
        x0, y0, x1, y1 = self.bbox
        return ((x0 + x1) / 2.0, (y0 + y1) / 2.0)


@dataclasses.dataclass
class Scene:
    """Rendered image plus its annotations."""

    image: np.ndarray  # (3, H, W) float32
    objects: List[ObjectInstance]
    grid: int
    cell_size: int

    @property
    def size(self) -> int:
        return self.image.shape[-1]

    def crop(self, bbox: Tuple[int, int, int, int]) -> np.ndarray:
        x0, y0, x1, y1 = bbox
        return self.image[:, y0:y1, x0:x1]

    def cell_bbox(self, row: int, col: int) -> Tuple[int, int, int, int]:
        s = self.cell_size
        return (col * s, row * s, (col + 1) * s, (row + 1) * s)

    def iter_cells(self):
        """Yield ``(row, col, bbox, window)`` for every grid cell."""
        for row in range(self.grid):
            for col in range(self.grid):
                bbox = self.cell_bbox(row, col)
                yield row, col, bbox, self.crop(bbox)


@dataclasses.dataclass(frozen=True)
class SceneConfig:
    """Knobs of the scene distribution.

    ``object_density`` is the probability a cell contains a category
    object; ``distractor_density`` the probability it contains a random
    non-category object; ``clutter_density`` an amorphous blob.  The rest
    of the cells are background.
    """

    grid: int = 3
    cell_size: int = WINDOW_SIZE
    object_density: float = 0.45
    distractor_density: float = 0.2
    clutter_density: float = 0.15
    noise_std: float = 0.02
    category_weights: Optional[Dict[str, float]] = None

    @property
    def image_size(self) -> int:
        return self.grid * self.cell_size

    def __post_init__(self) -> None:
        total = self.object_density + self.distractor_density + self.clutter_density
        if total > 1.0 + 1e-9:
            raise ValueError(f"cell densities sum to {total} > 1")


class SceneGenerator:
    """Deterministic (seeded) generator of annotated scenes."""

    def __init__(self, config: SceneConfig = SceneConfig(), seed: int = 0) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        names = list(OBJECT_CATEGORIES)
        if config.category_weights:
            weights = np.array([config.category_weights.get(n, 0.0) for n in names])
            if weights.sum() <= 0:
                raise ValueError("category_weights assigns no mass to known categories")
        else:
            weights = np.ones(len(names))
        self._category_names = names
        self._category_probs = weights / weights.sum()

    def _sample_category(self) -> str:
        idx = self._rng.choice(len(self._category_names), p=self._category_probs)
        return self._category_names[int(idx)]

    def _sample_distractor(self) -> AttributeProfile:
        """A random profile matching *no* category (rejection sampling)."""
        for _ in range(64):
            profile = sample_profile(self._rng)
            if category_of_profile(profile) is None:
                return profile
        # Extremely unlikely fallback: force a non-category combination.
        return AttributeProfile(
            shape="triangle", color="blue", size="medium",
            texture="dotted", border="thin",
        )

    def generate(self) -> Scene:
        cfg = self.config
        size = cfg.image_size
        rng = self._rng
        image = render_background(rng, size=size, noise_std=cfg.noise_std)
        objects: List[ObjectInstance] = []

        for row in range(cfg.grid):
            for col in range(cfg.grid):
                roll = rng.random()
                x0, y0 = col * cfg.cell_size, row * cfg.cell_size
                bbox = (x0, y0, x0 + cfg.cell_size, y0 + cfg.cell_size)
                cell_bg = image[:, y0:y0 + cfg.cell_size, x0:x0 + cfg.cell_size]
                if roll < cfg.object_density:
                    category = self._sample_category()
                    profile = profile_for_category(category, rng)
                elif roll < cfg.object_density + cfg.distractor_density:
                    profile = self._sample_distractor()
                    category = None
                elif roll < (cfg.object_density + cfg.distractor_density
                             + cfg.clutter_density):
                    image[:, y0:y0 + cfg.cell_size, x0:x0 + cfg.cell_size] = (
                        render_clutter(rng, size=cfg.cell_size)
                    )
                    continue
                else:
                    continue
                window = render_object(
                    profile, rng=rng, size=cfg.cell_size,
                    background=cell_bg, noise_std=cfg.noise_std,
                )
                image[:, y0:y0 + cfg.cell_size, x0:x0 + cfg.cell_size] = window
                objects.append(
                    ObjectInstance(profile=profile, bbox=bbox,
                                   category=category, cell=(row, col))
                )
        return Scene(image=image, objects=objects, grid=cfg.grid,
                     cell_size=cfg.cell_size)

    def generate_batch(self, count: int) -> List[Scene]:
        return [self.generate() for _ in range(count)]
