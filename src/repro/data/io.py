"""Image export without an imaging dependency.

Scenes and windows are ``(3, H, W)`` float arrays in [0, 1]; binary PPM
(P6) is the simplest portable container, viewable by practically every
image tool.  Detections can be burned in as box outlines before export.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


def to_uint8(image: np.ndarray) -> np.ndarray:
    """(3, H, W) float [0,1] → (H, W, 3) uint8."""
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W), got {image.shape}")
    clipped = np.clip(image, 0.0, 1.0)
    return (clipped.transpose(1, 2, 0) * 255.0 + 0.5).astype(np.uint8)


def write_ppm(image: np.ndarray, path: str) -> None:
    """Write a (3, H, W) float image as binary PPM (P6)."""
    pixels = to_uint8(image)
    height, width, _ = pixels.shape
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(pixels.tobytes())


def read_ppm(path: str) -> np.ndarray:
    """Read a binary PPM back into (3, H, W) float [0, 1]."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic != b"P6":
            raise ValueError(f"not a binary PPM file: {path}")
        dims = handle.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(handle.readline())
        data = np.frombuffer(handle.read(width * height * 3), dtype=np.uint8)
    pixels = data.reshape(height, width, 3).astype(np.float32) / maxval
    return pixels.transpose(2, 0, 1)


def draw_box(image: np.ndarray, bbox: Tuple[int, int, int, int],
             color: Tuple[float, float, float] = (1.0, 1.0, 1.0),
             thickness: int = 1) -> np.ndarray:
    """Return a copy of ``image`` with a box outline burned in."""
    out = image.copy()
    x0, y0, x1, y1 = (int(v) for v in bbox)
    height, width = image.shape[1], image.shape[2]
    x0, x1 = max(x0, 0), min(x1, width)
    y0, y1 = max(y0, 0), min(y1, height)
    col = np.asarray(color, dtype=image.dtype).reshape(3, 1, 1)
    t = max(1, thickness)
    out[:, y0:y0 + t, x0:x1] = col
    out[:, max(y1 - t, 0):y1, x0:x1] = col
    out[:, y0:y1, x0:x0 + t] = col
    out[:, y0:y1, max(x1 - t, 0):x1] = col
    return out


def export_scene(scene, path: str, detections: Optional[Iterable] = None) -> None:
    """Export a scene (optionally with detection boxes) as PPM."""
    image = scene.image
    if detections is not None:
        for detection in detections:
            image = draw_box(image, detection.bbox)
    write_ppm(image, path)
