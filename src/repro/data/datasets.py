"""Window-level datasets for training and evaluating the iTask models.

The detection pipeline classifies fixed-size windows (grid cells of a
scene), so training data is generated directly at window granularity:
object windows carry a category label and per-family attribute labels;
background/clutter windows carry the background class and attribute label
``-1`` (masked out of the attribute losses).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.ontology import (
    ATTRIBUTE_FAMILIES,
    AttributeProfile,
    category_names,
    category_of_profile,
    profile_for_category,
    sample_profile,
)
from repro.data.rendering import (
    WINDOW_SIZE,
    render_background,
    render_clutter,
    render_object,
)
from repro.data.tasks import TaskDefinition

BACKGROUND_LABEL_NAME = "background"


def class_names() -> List[str]:
    """Class-head vocabulary: object categories plus a background class."""
    return category_names() + [BACKGROUND_LABEL_NAME]


def num_classes() -> int:
    return len(class_names())


def background_class_id() -> int:
    return len(category_names())


@dataclasses.dataclass
class LabeledWindow:
    """A single training/evaluation window."""

    image: np.ndarray                       # (3, S, S) float32
    class_id: int                           # index into class_names()
    attributes: Dict[str, int]              # family -> index, -1 if background
    profile: Optional[AttributeProfile]     # None for background/clutter
    is_object: bool
    task_relevant: Optional[bool] = None    # set for task-specific datasets


@dataclasses.dataclass
class WindowDataset:
    """Columnar view over a list of windows (what the trainers consume)."""

    images: np.ndarray                       # (N, 3, S, S)
    class_labels: np.ndarray                 # (N,)
    attribute_labels: Dict[str, np.ndarray]  # family -> (N,), -1 = masked
    objectness: np.ndarray                   # (N,) float 0/1
    task_labels: Optional[np.ndarray]        # (N,) float 0/1 or None
    profiles: List[Optional[AttributeProfile]]

    def __len__(self) -> int:
        return self.images.shape[0]

    def subset(self, indices: Sequence[int]) -> "WindowDataset":
        idx = np.asarray(indices, dtype=np.int64)
        return WindowDataset(
            images=self.images[idx],
            class_labels=self.class_labels[idx],
            attribute_labels={k: v[idx] for k, v in self.attribute_labels.items()},
            objectness=self.objectness[idx],
            task_labels=None if self.task_labels is None else self.task_labels[idx],
            profiles=[self.profiles[int(i)] for i in idx],
        )

    @staticmethod
    def from_windows(windows: Sequence[LabeledWindow]) -> "WindowDataset":
        if not windows:
            raise ValueError("cannot build a dataset from zero windows")
        images = np.stack([w.image for w in windows]).astype(np.float32)
        class_labels = np.array([w.class_id for w in windows], dtype=np.int64)
        attribute_labels = {
            family: np.array([w.attributes.get(family, -1) for w in windows],
                             dtype=np.int64)
            for family in ATTRIBUTE_FAMILIES
        }
        objectness = np.array([1.0 if w.is_object else 0.0 for w in windows],
                              dtype=np.float32)
        if any(w.task_relevant is not None for w in windows):
            task_labels = np.array(
                [1.0 if w.task_relevant else 0.0 for w in windows], dtype=np.float32
            )
        else:
            task_labels = None
        return WindowDataset(
            images=images,
            class_labels=class_labels,
            attribute_labels=attribute_labels,
            objectness=objectness,
            task_labels=task_labels,
            profiles=[w.profile for w in windows],
        )


def _object_window(profile: AttributeProfile, rng: np.random.Generator,
                   task: Optional[TaskDefinition] = None) -> LabeledWindow:
    category = category_of_profile(profile)
    class_id = (
        category_names().index(category) if category is not None
        else background_class_id()
    )
    # Distractor objects are "background" for the class head but keep
    # their attribute labels — the KG path must still see their attributes.
    return LabeledWindow(
        image=render_object(profile, rng=rng),
        class_id=class_id,
        attributes=profile.as_indices(),
        profile=profile,
        is_object=True,
        task_relevant=None if task is None else task.matches(profile),
    )


def _background_window(rng: np.random.Generator, clutter: bool,
                       task: Optional[TaskDefinition] = None) -> LabeledWindow:
    image = render_clutter(rng) if clutter else render_background(rng)
    return LabeledWindow(
        image=image,
        class_id=background_class_id(),
        attributes={family: -1 for family in ATTRIBUTE_FAMILIES},
        profile=None,
        is_object=False,
        task_relevant=None if task is None else False,
    )


def build_window_dataset(
    seed: int = 0,
    num_category_objects: int = 400,
    num_distractors: int = 100,
    num_background: int = 100,
    clutter_fraction: float = 0.4,
) -> WindowDataset:
    """General-purpose training distribution over all categories.

    Used to train the teacher and the multi-task student.
    """
    rng = np.random.default_rng(seed)
    windows: List[LabeledWindow] = []
    names = category_names()
    for i in range(num_category_objects):
        category = names[int(rng.integers(len(names)))]
        windows.append(_object_window(profile_for_category(category, rng), rng))
    for _ in range(num_distractors):
        profile = sample_profile(rng)
        windows.append(_object_window(profile, rng))
    for i in range(num_background):
        windows.append(_background_window(rng, clutter=rng.random() < clutter_fraction))
    order = rng.permutation(len(windows))
    return WindowDataset.from_windows([windows[int(i)] for i in order])


def build_task_windows(
    task: TaskDefinition,
    seed: int = 0,
    num_positive: int = 150,
    num_negative: int = 250,
    hard_negative_fraction: float = 0.5,
    near_miss_fraction: float = 0.3,
) -> WindowDataset:
    """Task-conditioned dataset: positives satisfy the mission predicate.

    Negatives come in three tiers of difficulty:

    * **near-miss** — a matching profile with exactly one constrained
      family flipped to a violating value (``near_miss_fraction`` of the
      hard negatives).  These sit right at the predicate boundary and are
      what separates the task-specific from the quantized configuration;
    * **hard** — random object profiles violating the predicate;
    * **easy** — background / clutter windows.

    Used to distill and to evaluate the task-specific configuration.
    """
    rng = np.random.default_rng(seed)
    windows: List[LabeledWindow] = []

    produced = 0
    attempts = 0
    while produced < num_positive:
        attempts += 1
        if attempts > num_positive * 500:
            raise RuntimeError(
                f"could not sample positives for task {task.name!r}; "
                "predicate too restrictive"
            )
        profile = _sample_matching(task, rng)
        if profile is None:
            continue
        windows.append(_object_window(profile, rng, task=task))
        produced += 1

    num_hard = int(num_negative * hard_negative_fraction)
    num_near = int(num_hard * near_miss_fraction)
    produced = 0
    attempts = 0
    while produced < num_near:
        attempts += 1
        if attempts > num_negative * 500:
            break
        profile = _sample_near_miss(task, rng)
        if profile is None:
            continue
        windows.append(_object_window(profile, rng, task=task))
        produced += 1
    attempts = 0
    while produced < num_hard:
        attempts += 1
        if attempts > num_negative * 500:
            break
        profile = sample_profile(rng)
        if task.matches(profile):
            continue
        windows.append(_object_window(profile, rng, task=task))
        produced += 1
    for _ in range(num_negative - produced):
        windows.append(_background_window(rng, clutter=rng.random() < 0.5, task=task))

    order = rng.permutation(len(windows))
    return WindowDataset.from_windows([windows[int(i)] for i in order])


def _sample_near_miss(task: TaskDefinition,
                      rng: np.random.Generator) -> Optional[AttributeProfile]:
    """A profile at the predicate boundary: matches everywhere except one
    constrained family, flipped to a violating value."""
    base = _sample_matching(task, rng)
    if base is None:
        return None
    constrained = task.predicate.constrained_families
    if not constrained:
        return None
    family = constrained[int(rng.integers(len(constrained)))]
    allowed = task.predicate.allowed.get(family)
    forbidden = task.predicate.forbidden.get(family)
    vocab = list(ATTRIBUTE_FAMILIES[family])
    if allowed is not None:
        violating = [v for v in vocab if v not in allowed]
    else:
        violating = sorted(forbidden) if forbidden else []
    if not violating:
        return None
    flipped = base.replace(**{family: violating[int(rng.integers(len(violating)))]})
    return None if task.matches(flipped) else flipped


def _sample_matching(task: TaskDefinition,
                     rng: np.random.Generator) -> Optional[AttributeProfile]:
    """Sample a profile satisfying the task predicate.

    Seeds the constrained families from the predicate's allowed sets, then
    verifies against the full predicate (to honor ``forbidden``).
    """
    fixed = {}
    for family, values in task.predicate.allowed.items():
        choices = sorted(values)
        fixed[family] = choices[int(rng.integers(len(choices)))]
    profile = sample_profile(rng, fixed=fixed)
    return profile if task.matches(profile) else None


def few_shot_split(dataset: WindowDataset, shots: int,
                   seed: int = 0) -> Tuple[WindowDataset, WindowDataset]:
    """Split a task dataset into ``shots`` positive (+ equal negative)
    support windows and the remaining query set.

    Mirrors the paper's limited-sample adaptation setting.
    """
    if dataset.task_labels is None:
        raise ValueError("few_shot_split requires a task-labelled dataset")
    rng = np.random.default_rng(seed)
    positives = np.flatnonzero(dataset.task_labels > 0.5)
    negatives = np.flatnonzero(dataset.task_labels <= 0.5)
    if len(positives) < shots or len(negatives) < shots:
        raise ValueError(
            f"need at least {shots} positives and negatives, have "
            f"{len(positives)}/{len(negatives)}"
        )
    support_idx = np.concatenate([
        rng.choice(positives, size=shots, replace=False),
        rng.choice(negatives, size=shots, replace=False),
    ])
    support_mask = np.zeros(len(dataset), dtype=bool)
    support_mask[support_idx] = True
    query_idx = np.flatnonzero(~support_mask)
    return dataset.subset(support_idx), dataset.subset(query_idx)


def batch_iterator(dataset: WindowDataset, batch_size: int,
                   seed: Optional[int] = None,
                   shuffle: bool = True) -> Iterator[WindowDataset]:
    """Yield mini-batches as :class:`WindowDataset` views."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(dataset))
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
    for start in range(0, len(indices), batch_size):
        yield dataset.subset(indices[start:start + batch_size])
