"""Rasterization of attribute profiles into RGB pixel windows.

The renderer is intentionally simple — coordinate-grid masks, no external
imaging library — but every attribute family produces a visually distinct,
learnable cue:

* ``shape``  — the binary mask geometry,
* ``color``  — the fill RGB,
* ``size``   — the mask radius,
* ``texture``— solid fill, stripe modulation, or dot lattice,
* ``border`` — an outline ring of configurable thickness.

Windows are ``(3, WINDOW_SIZE, WINDOW_SIZE)`` float32 in [0, 1].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.ontology import COLOR_RGB, AttributeProfile

WINDOW_SIZE = 32

_SIZE_RADIUS = {"small": 0.28, "medium": 0.38, "large": 0.47}
_BORDER_WIDTH = {"none": 0.0, "thin": 0.06, "thick": 0.14}


def _shape_mask(shape: str, size: int, radius_frac: float) -> np.ndarray:
    """Binary mask of ``shape`` centred in a ``size``×``size`` grid."""
    coords = (np.arange(size) + 0.5) / size - 0.5  # [-0.5, 0.5)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    r = radius_frac
    if shape == "circle":
        return xx ** 2 + yy ** 2 <= r ** 2
    if shape == "ring":
        dist2 = xx ** 2 + yy ** 2
        return (dist2 <= r ** 2) & (dist2 >= (0.55 * r) ** 2)
    if shape == "square":
        return (np.abs(xx) <= r * 0.9) & (np.abs(yy) <= r * 0.9)
    if shape == "diamond":
        return np.abs(xx) + np.abs(yy) <= r * 1.2
    if shape == "triangle":
        # upward triangle: inside three half-planes
        inside = yy <= r * 0.8
        inside &= yy >= -r * 0.8 + 2.2 * np.abs(xx)
        return inside
    if shape == "cross":
        arm = r * 0.35
        return ((np.abs(xx) <= arm) & (np.abs(yy) <= r)) | (
            (np.abs(yy) <= arm) & (np.abs(xx) <= r)
        )
    raise ValueError(f"unknown shape {shape!r}")


def _texture_field(texture: str, size: int, phase: int = 0) -> np.ndarray:
    """Multiplicative intensity field in [0,1] implementing the texture."""
    if texture == "solid":
        return np.ones((size, size))
    idx = np.arange(size)
    yy, xx = np.meshgrid(idx, idx, indexing="ij")
    if texture == "striped":
        period = max(4, size // 4)
        return np.where(((yy + xx + phase) // (period // 2)) % 2 == 0, 1.0, 0.15)
    if texture == "dotted":
        period = max(4, size // 4)
        on = ((yy + phase) % period < period // 2) & ((xx + phase) % period < period // 2)
        return np.where(on, 1.0, 0.15)
    raise ValueError(f"unknown texture {texture!r}")


def render_object(
    profile: AttributeProfile,
    rng: Optional[np.random.Generator] = None,
    size: int = WINDOW_SIZE,
    background: Optional[np.ndarray] = None,
    noise_std: float = 0.02,
    jitter: float = 0.05,
) -> np.ndarray:
    """Render an attribute profile into a ``(3, size, size)`` window.

    Small random brightness/phase/position jitter (driven by ``rng``)
    provides intra-class appearance variation so the classifier cannot
    memorize exact pixels.
    """
    rng = rng or np.random.default_rng()
    radius = _SIZE_RADIUS[profile.size]
    radius *= 1.0 + float(rng.uniform(-jitter, jitter))
    mask = _shape_mask(profile.shape, size, radius)

    # random sub-pixel-ish shift: roll the mask by up to ±size*jitter
    max_shift = max(1, int(size * jitter))
    dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
    mask = np.roll(np.roll(mask, dy, axis=0), dx, axis=1)

    texture = _texture_field(profile.texture, size, phase=int(rng.integers(0, 7)))
    rgb = np.array(COLOR_RGB[profile.color]).reshape(3, 1, 1)
    brightness = 1.0 + float(rng.uniform(-0.12, 0.12))

    if background is None:
        canvas = render_background(rng, size=size, noise_std=noise_std)
    else:
        canvas = background.copy()

    fill = np.clip(rgb * texture[None] * brightness, 0.0, 1.0)
    canvas = np.where(mask[None], fill, canvas)

    border_width = _BORDER_WIDTH[profile.border]
    if border_width > 0.0:
        erode = max(1, int(round(border_width * size)))
        inner = mask.copy()
        for _ in range(erode):
            inner = (
                inner
                & np.roll(inner, 1, 0) & np.roll(inner, -1, 0)
                & np.roll(inner, 1, 1) & np.roll(inner, -1, 1)
            )
        ring = mask & ~inner
        border_color = np.zeros((3, 1, 1)) if profile.color == "white" else np.ones((3, 1, 1))
        canvas = np.where(ring[None], border_color * 0.95, canvas)

    if noise_std > 0.0:
        canvas = canvas + rng.normal(0.0, noise_std, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0).astype(np.float32)


def render_background(
    rng: Optional[np.random.Generator] = None,
    size: int = WINDOW_SIZE,
    noise_std: float = 0.02,
) -> np.ndarray:
    """Low-intensity textured background with mild spatial gradient."""
    rng = rng or np.random.default_rng()
    base = float(rng.uniform(0.08, 0.22))
    grad_dir = rng.standard_normal(2)
    coords = np.linspace(-0.5, 0.5, size)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    gradient = 0.05 * (grad_dir[0] * yy + grad_dir[1] * xx)
    canvas = np.full((3, size, size), base) + gradient[None]
    canvas += rng.normal(0.0, max(noise_std, 1e-4), size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0).astype(np.float32)


def render_clutter(rng: np.random.Generator, size: int = WINDOW_SIZE) -> np.ndarray:
    """Amorphous low-contrast blob used as a hard-negative distractor."""
    canvas = render_background(rng, size=size)
    coords = (np.arange(size) + 0.5) / size - 0.5
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    cy, cx = rng.uniform(-0.2, 0.2, size=2)
    sigma = float(rng.uniform(0.08, 0.2))
    blob = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma ** 2)))
    tint = rng.uniform(0.15, 0.45, size=(3, 1, 1))
    canvas = np.clip(canvas + blob[None] * tint, 0.0, 1.0)
    return canvas.astype(np.float32)
