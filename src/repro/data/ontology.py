"""Attribute ontology of the synthetic world.

Every rendered object is fully described by an :class:`AttributeProfile`
over five attribute families.  Object *categories* (the labels the class
head predicts) are named regions of attribute space — some attributes are
fixed by the category, others are free — which is what lets a task
generalize: the knowledge graph reasons about attributes, not categories.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

SHAPES: Tuple[str, ...] = ("circle", "square", "triangle", "diamond", "cross", "ring")
COLORS: Tuple[str, ...] = (
    "red", "green", "blue", "yellow", "magenta", "cyan", "orange", "white",
)
SIZES: Tuple[str, ...] = ("small", "medium", "large")
TEXTURES: Tuple[str, ...] = ("solid", "striped", "dotted")
BORDERS: Tuple[str, ...] = ("none", "thin", "thick")

ATTRIBUTE_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "shape": SHAPES,
    "color": COLORS,
    "size": SIZES,
    "texture": TEXTURES,
    "border": BORDERS,
}

COLOR_RGB: Dict[str, Tuple[float, float, float]] = {
    "red": (0.90, 0.10, 0.10),
    "green": (0.10, 0.80, 0.15),
    "blue": (0.15, 0.20, 0.90),
    "yellow": (0.92, 0.90, 0.10),
    "magenta": (0.88, 0.12, 0.85),
    "cyan": (0.10, 0.85, 0.88),
    "orange": (0.95, 0.55, 0.08),
    "white": (0.95, 0.95, 0.95),
}


@dataclasses.dataclass(frozen=True)
class AttributeProfile:
    """A fully specified appearance: one value per attribute family."""

    shape: str
    color: str
    size: str
    texture: str
    border: str

    def __post_init__(self) -> None:
        for family, value in self.as_dict().items():
            if value not in ATTRIBUTE_FAMILIES[family]:
                raise ValueError(f"unknown {family} value {value!r}")

    def as_dict(self) -> Dict[str, str]:
        return {
            "shape": self.shape,
            "color": self.color,
            "size": self.size,
            "texture": self.texture,
            "border": self.border,
        }

    def as_indices(self) -> Dict[str, int]:
        return {family: attribute_index(family, value)
                for family, value in self.as_dict().items()}

    def replace(self, **kwargs: str) -> "AttributeProfile":
        return dataclasses.replace(self, **kwargs)


def attribute_index(family: str, value: str) -> int:
    """Index of ``value`` within its family's vocabulary."""
    try:
        return ATTRIBUTE_FAMILIES[family].index(value)
    except KeyError:
        raise KeyError(f"unknown attribute family {family!r}") from None
    except ValueError:
        raise ValueError(f"unknown {family} value {value!r}") from None


def attribute_value(family: str, index: int) -> str:
    """Inverse of :func:`attribute_index`."""
    return ATTRIBUTE_FAMILIES[family][index]


def attribute_head_spec() -> Tuple[Tuple[str, int], ...]:
    """``(family, cardinality)`` pairs for building ViT attribute heads."""
    return tuple((family, len(values)) for family, values in ATTRIBUTE_FAMILIES.items())


# ----------------------------------------------------------------------
# object categories
# ----------------------------------------------------------------------
# Each category fixes some attribute families and leaves others free
# ("*").  Category semantics are loosely themed after the application
# domains the paper's introduction motivates (driving, healthcare,
# industrial automation).
CategorySpec = Mapping[str, str]

OBJECT_CATEGORIES: Dict[str, CategorySpec] = {
    # driving-themed
    "warning_sign": {"shape": "triangle", "color": "yellow", "texture": "solid"},
    "stop_marker": {"shape": "square", "color": "red"},
    "lane_beacon": {"shape": "circle", "color": "orange", "size": "small"},
    # healthcare-themed
    "med_container": {"shape": "square", "color": "white", "border": "thick"},
    "hazard_vial": {"shape": "diamond", "color": "magenta", "texture": "striped"},
    # industrial-themed
    "valve_wheel": {"shape": "ring", "color": "blue"},
    "control_cross": {"shape": "cross", "color": "green"},
    "cargo_unit": {"shape": "square", "color": "cyan", "texture": "dotted"},
}


def category_names() -> List[str]:
    return list(OBJECT_CATEGORIES)


def category_id(name: str) -> int:
    return category_names().index(name)


def sample_profile(rng: np.random.Generator,
                   fixed: Optional[Mapping[str, str]] = None) -> AttributeProfile:
    """Draw a uniformly random profile, honoring ``fixed`` constraints."""
    fixed = dict(fixed or {})
    values: Dict[str, str] = {}
    for family, vocab in ATTRIBUTE_FAMILIES.items():
        if family in fixed:
            value = fixed[family]
            if value not in vocab:
                raise ValueError(f"unknown {family} value {value!r}")
            values[family] = value
        else:
            values[family] = vocab[int(rng.integers(len(vocab)))]
    return AttributeProfile(**values)


def profile_for_category(name: str, rng: np.random.Generator) -> AttributeProfile:
    """Sample a profile consistent with a category's fixed attributes."""
    if name not in OBJECT_CATEGORIES:
        raise KeyError(f"unknown category {name!r}")
    return sample_profile(rng, fixed=OBJECT_CATEGORIES[name])


def category_of_profile(profile: AttributeProfile) -> Optional[str]:
    """Return the first category whose constraints the profile satisfies.

    Categories are checked in declaration order; profiles matching no
    category are "distractor" objects (returned as None).
    """
    attrs = profile.as_dict()
    for name, spec in OBJECT_CATEGORIES.items():
        if all(attrs[family] == value for family, value in spec.items()):
            return name
    return None
