"""Task definitions: missions expressed as attribute predicates.

A *task* in iTask is a mission like "flag every red hazard marker on the
roadway".  Ground truth for a task is a predicate over attribute profiles;
the natural-language ``mission_text`` is what the (simulated) LLM consumes
to build the task knowledge graph.  Keeping both views on one object lets
the benchmarks measure how faithfully the text→graph→matcher pipeline
recovers the true predicate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.data.ontology import ATTRIBUTE_FAMILIES, AttributeProfile


@dataclasses.dataclass(frozen=True)
class AttributePredicate:
    """Conjunction over attribute families.

    ``allowed`` maps a family to the set of acceptable values (families
    absent from the map are unconstrained); ``forbidden`` maps a family to
    values that must NOT occur.  This covers every mission in the library
    while staying analyzable (the KG matcher's scores can be compared
    against exact predicate evaluation).
    """

    allowed: Mapping[str, FrozenSet[str]] = dataclasses.field(default_factory=dict)
    forbidden: Mapping[str, FrozenSet[str]] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for mapping in (self.allowed, self.forbidden):
            for family, values in mapping.items():
                if family not in ATTRIBUTE_FAMILIES:
                    raise KeyError(f"unknown attribute family {family!r}")
                unknown = set(values) - set(ATTRIBUTE_FAMILIES[family])
                if unknown:
                    raise ValueError(f"unknown {family} values {sorted(unknown)}")

    def matches(self, profile: AttributeProfile) -> bool:
        attrs = profile.as_dict()
        for family, values in self.allowed.items():
            if attrs[family] not in values:
                return False
        for family, values in self.forbidden.items():
            if attrs[family] in values:
                return False
        return True

    @property
    def constrained_families(self) -> List[str]:
        return sorted(set(self.allowed) | set(self.forbidden))


@dataclasses.dataclass(frozen=True)
class TaskDefinition:
    """A named mission: text for the LLM, predicate for ground truth."""

    name: str
    domain: str
    mission_text: str
    predicate: AttributePredicate

    def matches(self, profile: AttributeProfile) -> bool:
        return self.predicate.matches(profile)


def _pred(allowed: Optional[Dict[str, Sequence[str]]] = None,
          forbidden: Optional[Dict[str, Sequence[str]]] = None) -> AttributePredicate:
    return AttributePredicate(
        allowed={k: frozenset(v) for k, v in (allowed or {}).items()},
        forbidden={k: frozenset(v) for k, v in (forbidden or {}).items()},
    )


# ----------------------------------------------------------------------
# the mission library
# ----------------------------------------------------------------------
# Mission texts deliberately mention their attribute constraints with
# natural phrasing; the SimulatedLLM extracts them the way a prompted LLM
# would, including occasional omissions/hallucinations under noise.
TASK_LIBRARY: Dict[str, TaskDefinition] = {
    task.name: task
    for task in [
        TaskDefinition(
            name="roadside_hazards",
            domain="driving",
            mission_text=(
                "Patrol the roadway and flag every hazard indicator: look for "
                "red, orange, or yellow markers of any kind. "
                "Ignore small objects far from the lane."
            ),
            predicate=_pred(
                allowed={"color": ("red", "orange", "yellow")},
                forbidden={"size": ("small",)},
            ),
        ),
        TaskDefinition(
            name="stop_control",
            domain="driving",
            mission_text=(
                "Identify traffic stop control devices. Target red square "
                "signage with a solid fill."
            ),
            predicate=_pred(
                allowed={"color": ("red",), "shape": ("square",),
                         "texture": ("solid",)},
            ),
        ),
        TaskDefinition(
            name="sterile_supplies",
            domain="healthcare",
            mission_text=(
                "Locate sterile supply containers in the ward: white square "
                "boxes with a thick border. Do not report striped packaging."
            ),
            predicate=_pred(
                allowed={"color": ("white",), "shape": ("square",),
                         "border": ("thick",)},
                forbidden={"texture": ("striped",)},
            ),
        ),
        TaskDefinition(
            name="biohazard_sweep",
            domain="healthcare",
            mission_text=(
                "Sweep the lab for biohazard vials: any magenta striped "
                "container is suspect. They are typically diamond shaped."
            ),
            predicate=_pred(
                allowed={"color": ("magenta",), "texture": ("striped",)},
            ),
        ),
        TaskDefinition(
            name="valve_inspection",
            domain="industrial",
            mission_text=(
                "Inspect the pipe gallery and register every valve wheel: "
                "blue ring fixtures of medium or large size."
            ),
            predicate=_pred(
                allowed={"color": ("blue",), "shape": ("ring",),
                         "size": ("medium", "large")},
            ),
        ),
        TaskDefinition(
            name="cargo_audit",
            domain="industrial",
            mission_text=(
                "Audit the storage bay for cargo units: cyan square crates "
                "with a dotted surface pattern."
            ),
            predicate=_pred(
                allowed={"color": ("cyan",), "shape": ("square",),
                         "texture": ("dotted",)},
            ),
        ),
        TaskDefinition(
            name="control_panel_check",
            domain="industrial",
            mission_text=(
                "Check the control wall and find green cross actuators. "
                "Green cross markers only; ignore thin-border replicas."
            ),
            predicate=_pred(
                allowed={"color": ("green",), "shape": ("cross",)},
                forbidden={"border": ("thin",)},
            ),
        ),
        TaskDefinition(
            name="beacon_recovery",
            domain="driving",
            mission_text=(
                "Recover dropped lane beacons: small orange circle markers "
                "anywhere on the route."
            ),
            predicate=_pred(
                allowed={"color": ("orange",), "shape": ("circle",),
                         "size": ("small",)},
            ),
        ),
    ]
}


def get_task(name: str) -> TaskDefinition:
    try:
        return TASK_LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown task {name!r}; available: {sorted(TASK_LIBRARY)}"
        ) from None


def task_names() -> List[str]:
    return list(TASK_LIBRARY)
