"""Synthetic attribute-compositional scene world.

The paper evaluates task-oriented detection on real mission imagery; with
no datasets available offline, this package provides the closest
controlled equivalent: scenes populated with objects whose appearance is
fully determined by a compositional attribute profile (shape, color, size,
texture, border).  Tasks are predicates over those attributes, so
"task-oriented detection" — finding the objects a mission cares about from
a handful of examples — is directly measurable, and the few-shot
generalization claim can be tested by recombining attributes between
train and evaluation.
"""

from repro.data.ontology import (
    ATTRIBUTE_FAMILIES,
    SHAPES,
    COLORS,
    SIZES,
    TEXTURES,
    BORDERS,
    OBJECT_CATEGORIES,
    AttributeProfile,
    attribute_index,
    attribute_value,
    attribute_head_spec,
    category_names,
    sample_profile,
    profile_for_category,
)
from repro.data.rendering import render_object, render_background, WINDOW_SIZE
from repro.data.scenes import ObjectInstance, Scene, SceneGenerator, SceneConfig
from repro.data.tasks import (
    TaskDefinition,
    AttributePredicate,
    TASK_LIBRARY,
    get_task,
    task_names,
)
from repro.data.datasets import (
    LabeledWindow,
    WindowDataset,
    build_window_dataset,
    build_task_windows,
    few_shot_split,
    batch_iterator,
)

__all__ = [
    "ATTRIBUTE_FAMILIES",
    "SHAPES",
    "COLORS",
    "SIZES",
    "TEXTURES",
    "BORDERS",
    "OBJECT_CATEGORIES",
    "AttributeProfile",
    "attribute_index",
    "attribute_value",
    "attribute_head_spec",
    "category_names",
    "sample_profile",
    "profile_for_category",
    "render_object",
    "render_background",
    "WINDOW_SIZE",
    "ObjectInstance",
    "Scene",
    "SceneGenerator",
    "SceneConfig",
    "TaskDefinition",
    "AttributePredicate",
    "TASK_LIBRARY",
    "get_task",
    "task_names",
    "LabeledWindow",
    "WindowDataset",
    "build_window_dataset",
    "build_task_windows",
    "few_shot_split",
    "batch_iterator",
]
