"""repro — reproduction of *iTask: Task-Oriented Object Detection in
Resource-Constrained Environments* (Jeong et al., DAC 2025).

Subpackages
-----------
``repro.tensor``
    numpy-backed reverse-mode autograd engine.
``repro.nn``
    neural-network modules, including the Vision Transformer.
``repro.optim``
    optimizers and learning-rate schedules.
``repro.data``
    synthetic attribute-compositional scene generator and task datasets.
``repro.kg``
    knowledge-graph schema, simulated-LLM graph generation, graph matching.
``repro.distill``
    teacher-student knowledge distillation.
``repro.quant``
    post-training quantization, QAT, integer inference kernels.
``repro.hw``
    cycle-level accelerator simulator, compiler, energy model, GPU baseline.
``repro.detect``
    detection pipeline: proposals, NMS, metrics.
``repro.core``
    the iTask framework: task specs, dual configurations, deployment.
"""

__version__ = "1.0.0"

from repro import (
    tensor, nn, optim, data, kg, distill, quant, hw, detect, core, vlm, stream,
)

__all__ = [
    "tensor",
    "nn",
    "optim",
    "data",
    "kg",
    "distill",
    "quant",
    "hw",
    "detect",
    "core",
    "vlm",
    "stream",
    "__version__",
]
