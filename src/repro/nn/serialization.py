"""Checkpoint (de)serialization for :class:`~repro.nn.Module` state dicts."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Save a state dict as a compressed ``.npz`` archive."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key].copy() for key in archive.files}


def state_dict_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray],
                     atol: float = 0.0) -> bool:
    """Structural + numerical equality of two state dicts."""
    if set(a) != set(b):
        return False
    for key in a:
        left, right = np.asarray(a[key]), np.asarray(b[key])
        if left.shape != right.shape:
            return False
        if atol == 0.0:
            if not np.array_equal(left, right):
                return False
        elif not np.allclose(left, right, atol=atol):
            return False
    return True
