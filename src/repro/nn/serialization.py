"""Checkpoint (de)serialization for :class:`~repro.nn.Module` state dicts.

Writes are *atomic*: the archive is serialized to a temporary file in the
destination directory, fsynced, and :func:`os.replace`-d into place, so a
reader can never observe a half-written ``.npz`` and a crash mid-write
leaves the previous checkpoint (if any) intact.  :func:`save_state_dict`
returns the integrity descriptor (SHA-256, byte size, key set) that the
model registry records next to the weights and re-verifies on load.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Dict, List

import numpy as np


def file_sha256(path: str, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file's contents (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def atomic_write_bytes(data: bytes, path: str) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=f".{os.path.basename(path)}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> Dict[str, object]:
    """Atomically save a state dict as a compressed ``.npz`` archive.

    Returns an integrity descriptor for the written file::

        {"sha256": <hex digest>, "bytes": <file size>, "keys": <sorted keys>}
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=f".{os.path.basename(path)}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **state)
            handle.flush()
            os.fsync(handle.fileno())
        info = {
            "sha256": file_sha256(tmp),
            "bytes": os.path.getsize(tmp),
            "keys": sorted(state),
        }
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return info


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key].copy() for key in archive.files}


def state_dict_keys(path: str) -> List[str]:
    """Sorted key set of an ``.npz`` checkpoint without copying the arrays.

    Raises whatever :func:`np.load` raises on a corrupt/truncated archive —
    callers use that as the cheap structural-integrity probe.
    """
    with np.load(path, allow_pickle=False) as archive:
        return sorted(archive.files)


def state_dict_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray],
                     atol: float = 0.0) -> bool:
    """Structural + numerical equality of two state dicts."""
    if set(a) != set(b):
        return False
    for key in a:
        left, right = np.asarray(a[key]), np.asarray(b[key])
        if left.shape != right.shape:
            return False
        if atol == 0.0:
            if not np.array_equal(left, right):
                return False
        elif not np.allclose(left, right, atol=atol):
            return False
    return True
