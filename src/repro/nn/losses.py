"""Loss functions for supervised training and distillation."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.tensor import Tensor, log_softmax, softmax, sigmoid
from repro.tensor.ops import one_hot


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, Tensor],
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` (B, C) and integer ``targets`` (B,).

    ``label_smoothing`` mixes the one-hot target with the uniform
    distribution, a regularizer the teacher training uses.
    """
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = logits.shape[-1]
    target_dist = one_hot(targets, num_classes).data
    if label_smoothing > 0.0:
        target_dist = (
            target_dist * (1.0 - label_smoothing) + label_smoothing / num_classes
        )
    log_probs = log_softmax(logits, axis=-1)
    per_sample = -(log_probs * Tensor(target_dist)).sum(axis=-1)
    return per_sample.mean()


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target, np.float32))
    diff = prediction - target_t.detach()
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target, np.float32))
    return (prediction - target_t.detach()).abs().mean()


def kl_divergence(student_logits: Tensor, teacher_logits: Union[Tensor, np.ndarray],
                  temperature: float = 1.0) -> Tensor:
    """KL(teacher ‖ student) over softened distributions.

    The gradient flows only through the student; the teacher distribution
    is treated as constant.  Scaled by T² per Hinton et al. so gradient
    magnitudes stay comparable across temperatures.
    """
    teacher_data = teacher_logits.data if isinstance(teacher_logits, Tensor) else np.asarray(teacher_logits)
    t = float(temperature)
    shifted = teacher_data / t
    shifted = shifted - shifted.max(axis=-1, keepdims=True)
    teacher_probs = np.exp(shifted)
    teacher_probs /= teacher_probs.sum(axis=-1, keepdims=True)
    teacher_log = np.log(np.clip(teacher_probs, 1e-12, None))

    student_log = log_softmax(student_logits * (1.0 / t), axis=-1)
    per_sample = (Tensor(teacher_probs) * (Tensor(teacher_log) - student_log)).sum(axis=-1)
    return per_sample.mean() * (t * t)


def soft_target_loss(
    student_logits: Tensor,
    teacher_logits: Union[Tensor, np.ndarray],
    targets: Union[np.ndarray, Tensor],
    temperature: float = 2.0,
    alpha: float = 0.7,
) -> Tensor:
    """Classic distillation objective: α·KD + (1−α)·CE."""
    kd = kl_divergence(student_logits, teacher_logits, temperature=temperature)
    ce = cross_entropy(student_logits, targets)
    return kd * alpha + ce * (1.0 - alpha)


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: Union[np.ndarray, Tensor]) -> Tensor:
    """Numerically stable BCE on raw logits (used by the objectness head)."""
    if isinstance(targets, Tensor):
        targets = targets.data
    targets_t = Tensor(np.asarray(targets, dtype=np.float32))
    probs = sigmoid(logits)
    from repro.tensor import clip, log

    probs = clip(probs, 1e-7, 1.0 - 1e-7)
    loss = -(targets_t * log(probs) + (1.0 - targets_t) * log(1.0 - probs))
    return loss.mean()


def accuracy(logits: Union[Tensor, np.ndarray], targets: Union[np.ndarray, Tensor]) -> float:
    """Top-1 accuracy (plain float, not differentiable)."""
    logits_data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets_data = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    return float((logits_data.argmax(axis=-1) == targets_data).mean())
