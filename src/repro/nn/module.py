"""Module/Parameter system.

A :class:`Module` owns :class:`Parameter` leaves and child modules and
exposes the traversal, mode switching, and (de)serialization machinery the
rest of the library builds on.  The design intentionally mirrors
``torch.nn.Module`` so the training code reads familiarly, but it is a
fresh implementation over :class:`repro.tensor.Tensor`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``."""

    def __init__(self, data, dtype=np.float32, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by the traversal
    methods.  Buffers (non-trainable state such as quantization scales or
    running statistics) are registered via :meth:`register_buffer`.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute interception
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state included in ``state_dict``."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # mode / gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {f"buffer:{n}" for n, _ in self.named_buffers()}
        missing = []
        for name, param in own_params.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name], dtype=param.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: checkpoint {value.shape} vs model {param.shape}"
                )
            param.data = value.copy()
        for key, value in state.items():
            if key.startswith("buffer:"):
                self._load_buffer(key[len("buffer:"):], value, strict=strict)
        if strict:
            unexpected = [
                k for k in state
                if k not in own_params and not k.startswith("buffer:")
            ] + [k for k in state if k.startswith("buffer:") and k not in own_buffers]
            if missing or unexpected:
                raise KeyError(f"missing={missing} unexpected={unexpected}")

    def _load_buffer(self, dotted: str, value: np.ndarray, strict: bool = True) -> None:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            child = module._modules.get(part)
            if child is None:
                if strict:
                    raise KeyError(f"no module path {dotted!r}")
                return
            module = child
        if parts[-1] in module._buffers:
            module.set_buffer(parts[-1], value)
        elif strict:
            raise KeyError(f"no buffer {dotted!r}")

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module.__class__.__name__}" for name, module in self._modules.items()
        ]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"
