"""Elementary layers: Linear, LayerNorm, Dropout, Embedding, Sequential."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, dropout_mask, is_grad_enabled, sqrt
from repro.tensor.ops import embedding as embedding_op


class Identity(Module):
    """Pass-through layer, useful as a configurable no-op."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine projection ``y = x @ W^T + b``.

    Weight shape is ``(out_features, in_features)`` to match the layout the
    quantizer and the accelerator compiler expect (per-output-channel rows).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_features,), rng, -bound, bound)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            # Inference fast path: bias adds in place on the fresh GEMM
            # output, and batched inputs flatten to one big 2D GEMM —
            # np.matmul on (N, T, in) is a stack of N tiny BLAS calls, ~3x
            # slower than the single (N*T, in) call.  2D sgemm is row-wise
            # deterministic regardless of row count, so results do not
            # depend on batch size (sequential == fused detection).
            data = x.data
            if data.ndim > 2:
                flat = data.reshape(-1, data.shape[-1]) @ self.weight.data.T
                out = flat.reshape(data.shape[:-1] + (self.out_features,))
            else:
                out = data @ self.weight.data.T
            if self.bias is not None:
                out += self.bias.data
            return Tensor(out, dtype=x.dtype)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class LayerNorm(Module):
    """Layer normalization over the trailing feature dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            # Inference fast path mirroring the autograd form operation by
            # operation (Tensor.mean is ``sum * (1/n)``, so replicate that
            # exactly); scale/shift run in place on the fresh temporary.
            inv_n = np.asarray(1.0 / x.shape[-1], dtype=x.dtype)
            data = x.data
            mean = data.sum(axis=-1, keepdims=True) * inv_n
            centered = data - mean
            var = (centered * centered).sum(axis=-1, keepdims=True) * inv_n
            centered /= np.sqrt(var + np.asarray(self.eps, dtype=x.dtype))
            centered *= self.weight.data
            centered += self.bias.data
            return Tensor(centered, dtype=x.dtype)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / sqrt(var + self.eps)
        return normalized * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.dim}, eps={self.eps})"


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or with p == 0."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = dropout_mask(x.shape, 1.0 - self.p, rng=self._rng)
        return x * mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Embedding(Module):
    """Lookup table mapping integer ids to learned vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.truncated_normal((num_embeddings, dim), rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_op(self.weight, indices)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
        self._order = [f"layer{i}" for i in range(len(modules))]

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self):
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]
