"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is reproducible end to end — a requirement for the paper's
accuracy comparisons, where teacher/student pairs must be re-creatable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape, rng: np.random.Generator, a: float = np.sqrt(5.0)) -> np.ndarray:
    """He uniform, matching the torch.nn.Linear default (a=sqrt(5))."""
    fan_in, _ = _fan_in_out(tuple(shape))
    gain = np.sqrt(2.0 / (1.0 + a * a))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def truncated_normal(shape, rng: np.random.Generator, std: float = 0.02,
                     bound: float = 2.0) -> np.ndarray:
    """Normal(0, std) with resampling outside ±bound·std (ViT default)."""
    out = rng.standard_normal(shape)
    bad = np.abs(out) > bound
    while bad.any():
        out[bad] = rng.standard_normal(int(bad.sum()))
        bad = np.abs(out) > bound
    return (out * std).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def uniform(shape, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(np.float32)
