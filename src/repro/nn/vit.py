"""Vision Transformer.

The iTask models classify fixed-size image windows (region proposals from
:mod:`repro.detect`) and additionally predict the *attribute profile* of
the window content — one classification head per attribute family (shape,
color, size, texture, border).  The attribute logits are what the
knowledge-graph matcher consumes; the object-class head is used by the
data-only baseline and for evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module, Parameter
from repro.nn.transformer import TransformerEncoder
from repro.tensor import Tensor, cat, gelu, is_grad_enabled


class TaskHead(Module):
    """Two-layer task-relevance head for the task-specific configuration.

    A linear probe on the CLS embedding is too weak for the near-miss
    boundary decisions that define a "specific scenario"; one hidden
    layer is enough.  Kept as two named Linear layers so the quantizer
    and the accelerator compiler can address each GEMM individually.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.fc1 = Linear(dim, dim, rng=rng)
        self.fc2 = Linear(dim, 2, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(gelu(self.fc1(x)))


@dataclasses.dataclass(frozen=True)
class ViTConfig:
    """Hyper-parameters of a :class:`VisionTransformer`.

    The teacher/student pairs of the paper differ only in ``depth``,
    ``dim`` and ``num_heads``; presets below mirror that relationship at a
    laptop-friendly scale.
    """

    image_size: int = 32
    patch_size: int = 8
    in_channels: int = 3
    dim: int = 96
    depth: int = 4
    num_heads: int = 4
    mlp_ratio: float = 2.0
    num_classes: int = 8
    attribute_heads: Tuple[Tuple[str, int], ...] = ()
    dropout: float = 0.0
    attn_dropout: float = 0.0
    # Task-specific configuration: adds a binary task-relevance head that
    # the distiller trains on mission labels — the knowledge graph "baked
    # into" the specialist (paper's task-specific ViT).
    with_task_head: bool = False

    def __post_init__(self) -> None:
        if self.image_size % self.patch_size != 0:
            raise ValueError(
                f"image_size {self.image_size} not divisible by patch_size {self.patch_size}"
            )
        if self.dim % self.num_heads != 0:
            raise ValueError(f"dim {self.dim} not divisible by num_heads {self.num_heads}")

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def num_tokens(self) -> int:
        return self.num_patches + 1  # patches + [CLS]

    @property
    def patch_dim(self) -> int:
        return self.in_channels * self.patch_size * self.patch_size

    @staticmethod
    def teacher(num_classes: int, attribute_heads=()) -> "ViTConfig":
        """Large model used as the distillation teacher.

        Sized so that teacher training stays in the minutes range on a
        single CPU core while keeping a ~6× compute gap to the student —
        the same ratio regime as the paper's teacher/student pair.
        """
        return ViTConfig(
            dim=96, depth=4, num_heads=6, mlp_ratio=3.0,
            num_classes=num_classes, attribute_heads=tuple(attribute_heads),
        )

    @staticmethod
    def student(num_classes: int, attribute_heads=()) -> "ViTConfig":
        """Compact model deployed on the edge device."""
        return ViTConfig(
            dim=48, depth=2, num_heads=4, mlp_ratio=2.0,
            num_classes=num_classes, attribute_heads=tuple(attribute_heads),
        )

    @staticmethod
    def tiny(num_classes: int, attribute_heads=()) -> "ViTConfig":
        """Very small model for fast unit tests."""
        return ViTConfig(
            image_size=16, patch_size=8, dim=32, depth=2, num_heads=2,
            mlp_ratio=2.0, num_classes=num_classes,
            attribute_heads=tuple(attribute_heads),
        )


class PatchEmbedding(Module):
    """Split ``(B, C, H, W)`` images into flattened patches and project.

    Implemented as reshape + linear, which is mathematically identical to
    the strided-convolution formulation and maps directly onto the
    accelerator's GEMM unit.
    """

    def __init__(self, config: ViTConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = config
        self.proj = Linear(config.patch_dim, config.dim, rng=rng)

    def extract_patches(self, images: Tensor) -> Tensor:
        """Rearrange ``(B, C, H, W)`` into ``(B, num_patches, patch_dim)``."""
        cfg = self.config
        batch = images.shape[0]
        grid = cfg.image_size // cfg.patch_size
        x = images.reshape(batch, cfg.in_channels, grid, cfg.patch_size, grid, cfg.patch_size)
        x = x.permute(0, 2, 4, 1, 3, 5)  # (B, gy, gx, C, p, p)
        return x.reshape(batch, grid * grid, cfg.patch_dim)

    def forward(self, images: Tensor) -> Tensor:
        return self.proj(self.extract_patches(images))


class VisionTransformer(Module):
    """ViT classifier with auxiliary attribute heads.

    ``forward`` returns a dict::

        {"class_logits": (B, num_classes),
         "attributes": {name: (B, cardinality), ...},
         "cls_embedding": (B, dim)}
    """

    def __init__(self, config: ViTConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.patch_embed = PatchEmbedding(config, rng=rng)
        self.cls_token = Parameter(init.truncated_normal((1, 1, config.dim), rng))
        self.pos_embed = Parameter(
            init.truncated_normal((1, config.num_tokens, config.dim), rng)
        )
        self.drop = Dropout(config.dropout, rng=rng)
        self.encoder = TransformerEncoder(
            depth=config.depth,
            dim=config.dim,
            num_heads=config.num_heads,
            mlp_ratio=config.mlp_ratio,
            dropout=config.dropout,
            attn_dropout=config.attn_dropout,
            rng=rng,
        )
        self.norm = LayerNorm(config.dim)
        self.head = Linear(config.dim, config.num_classes, rng=rng)
        self._attribute_names: List[str] = []
        for name, cardinality in config.attribute_heads:
            setattr(self, f"attr_head_{name}", Linear(config.dim, cardinality, rng=rng))
            self._attribute_names.append(name)
        if config.with_task_head:
            self.task_head: Optional[TaskHead] = TaskHead(config.dim, rng=rng)
        else:
            self.task_head = None

    @property
    def attribute_names(self) -> List[str]:
        return list(self._attribute_names)

    def embed(self, images: Tensor) -> Tensor:
        """Everything before the heads: returns normalized CLS embedding."""
        tokens = self.patch_embed(images)  # (B, P, D)
        batch = tokens.shape[0]
        if not is_grad_enabled():
            # Inference fast path: assemble [cls | tokens] + pos directly
            # into one buffer instead of broadcast + cat + add temporaries.
            cfg = self.config
            buf = np.empty((batch, cfg.num_tokens, cfg.dim),
                           dtype=tokens.data.dtype)
            pos = self.pos_embed.data
            np.add(self.cls_token.data.reshape(1, 1, cfg.dim), pos[:, :1],
                   out=buf[:, :1])
            np.add(tokens.data, pos[:, 1:], out=buf[:, 1:])
            x = Tensor(buf)
        else:
            cls = self.cls_token.reshape(1, 1, self.config.dim)
            cls = cls + Tensor(np.zeros((batch, 1, self.config.dim), dtype=np.float32))
            x = cat([cls, tokens], axis=1) + self.pos_embed
        x = self.drop(x)
        x = self.encoder(x)
        x = self.norm(x)
        return x[:, 0]

    def forward(self, images: Tensor) -> Dict[str, object]:
        cls_embedding = self.embed(images)
        out: Dict[str, object] = {
            "class_logits": self.head(cls_embedding),
            "cls_embedding": cls_embedding,
        }
        attributes: Dict[str, Tensor] = {}
        for name in self._attribute_names:
            attributes[name] = self._modules[f"attr_head_{name}"](cls_embedding)
        out["attributes"] = attributes
        if self.task_head is not None:
            out["task_logits"] = self.task_head(cls_embedding)
        return out

    def classify(self, images: Tensor) -> np.ndarray:
        """Hard class predictions (inference helper)."""
        from repro.tensor import no_grad

        with no_grad():
            logits = self.forward(images)["class_logits"]
        return logits.data.argmax(axis=-1)

    def flops_per_image(self) -> int:
        """Approximate multiply-accumulate count for one inference.

        Used by the hardware compiler for sanity checks and by the GPU
        roofline model.
        """
        cfg = self.config
        tokens, dim = cfg.num_tokens, cfg.dim
        hidden = int(dim * cfg.mlp_ratio)
        macs = cfg.num_patches * cfg.patch_dim * dim  # patch projection
        per_block = (
            tokens * dim * 3 * dim          # qkv
            + 2 * tokens * tokens * dim     # scores + context
            + tokens * dim * dim            # output proj
            + 2 * tokens * dim * hidden     # mlp
        )
        macs += cfg.depth * per_block
        macs += dim * cfg.num_classes
        for _, cardinality in cfg.attribute_heads:
            macs += dim * cardinality
        if cfg.with_task_head:
            macs += dim * dim + dim * 2
        return int(macs)
