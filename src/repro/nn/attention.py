"""Multi-head self-attention.

Implemented exactly as in the original ViT: a fused qkv projection, scaled
dot-product attention per head, and an output projection.  The attention
probabilities of the last forward pass can be retained for the
attention-transfer distillation loss (:mod:`repro.distill`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, is_grad_enabled, softmax


class MultiHeadSelfAttention(Module):
    """Self-attention over token sequences of shape ``(batch, tokens, dim)``.

    Parameters
    ----------
    dim:
        Embedding dimension; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    attn_dropout / proj_dropout:
        Dropout on attention probabilities / output projection.
    store_attention:
        When True, the attention probability tensor of the most recent
        forward pass is kept in ``last_attention`` (detached) — consumed by
        the attention-transfer distillation loss.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        attn_dropout: float = 0.0,
        proj_dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        store_attention: bool = False,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.qkv = Linear(dim, dim * 3, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.attn_drop = Dropout(attn_dropout, rng=rng)
        self.proj_drop = Dropout(proj_dropout, rng=rng)
        self.store_attention = store_attention
        self.last_attention: Optional[np.ndarray] = None
        self.last_attention_tensor: Optional[Tensor] = None

    def forward(self, x: Tensor) -> Tensor:
        batch, tokens, dim = x.shape
        qkv = self.qkv(x)  # (B, T, 3*D)
        if not is_grad_enabled():
            # Inference fast path: q/k/v as strided views (no contiguous
            # copies), scale and softmax in place on the fresh scores
            # buffer.  Same operations on the same values — bit-identical
            # to the autograd path below.
            parts = np.transpose(
                qkv.data.reshape(batch, tokens, 3, self.num_heads, self.head_dim),
                (2, 0, 3, 1, 4))  # (3, B, H, T, hd)
            q, k, v = parts[0], parts[1], parts[2]
            scores = q @ np.swapaxes(k, -2, -1)  # fresh (B, H, T, T)
            scores *= np.asarray(self.scale, dtype=scores.dtype)
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            attn = Tensor(scores)
            if self.store_attention:
                self.last_attention = attn.data.copy()
                self.last_attention_tensor = attn
            attn = self.attn_drop(attn)
            context = attn.data @ v  # (B, H, T, hd)
            context = np.swapaxes(context, 1, 2).reshape(batch, tokens, dim)
            out = self.proj(Tensor(context))
            return self.proj_drop(out)

        qkv = qkv.reshape(batch, tokens, 3, self.num_heads, self.head_dim)
        qkv = qkv.permute(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.transpose(-2, -1)) * self.scale  # (B, H, T, T)
        attn = softmax(scores, axis=-1)
        if self.store_attention:
            self.last_attention = attn.data.copy()
            self.last_attention_tensor = attn
        attn = self.attn_drop(attn)

        context = attn @ v  # (B, H, T, hd)
        context = context.transpose(1, 2).reshape(batch, tokens, dim)
        out = self.proj(context)
        return self.proj_drop(out)

    def __repr__(self) -> str:
        return f"MultiHeadSelfAttention(dim={self.dim}, heads={self.num_heads})"
