"""Transformer encoder blocks (pre-norm, as in ViT)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, gelu, is_grad_enabled


class FeedForward(Module):
    """Two-layer MLP with GELU, the standard transformer FFN."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(self.drop(gelu(self.fc1(x)))))


class TransformerBlock(Module):
    """Pre-norm encoder block: x + MHSA(LN(x)), then x + FFN(LN(x))."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        attn_dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        store_attention: bool = False,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(
            dim,
            num_heads,
            attn_dropout=attn_dropout,
            proj_dropout=dropout,
            rng=rng,
            store_attention=store_attention,
        )
        self.norm2 = LayerNorm(dim)
        self.mlp = FeedForward(dim, int(dim * mlp_ratio), dropout=dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            # Residuals accumulate in place into the branch outputs (fresh
            # projection results) — addition commutes, so bit-identical.
            attn_out = self.attn(self.norm1(x))
            attn_out.data += x.data
            mlp_out = self.mlp(self.norm2(attn_out))
            mlp_out.data += attn_out.data
            return mlp_out
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class TransformerEncoder(Module):
    """A stack of :class:`TransformerBlock`.

    ``hidden_states`` from the most recent forward pass are retained
    (detached) when ``store_hidden=True`` — consumed by the feature-hint
    distillation loss.
    """

    def __init__(
        self,
        depth: int,
        dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        attn_dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        store_attention: bool = False,
        store_hidden: bool = False,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.depth = depth
        self.store_hidden = store_hidden
        self.hidden_states: List = []
        for i in range(depth):
            setattr(
                self,
                f"block{i}",
                TransformerBlock(
                    dim,
                    num_heads,
                    mlp_ratio=mlp_ratio,
                    dropout=dropout,
                    attn_dropout=attn_dropout,
                    rng=rng,
                    store_attention=store_attention,
                ),
            )

    @property
    def blocks(self) -> List[TransformerBlock]:
        return [self._modules[f"block{i}"] for i in range(self.depth)]

    def forward(self, x: Tensor) -> Tensor:
        self.hidden_states = []
        for block in self.blocks:
            x = block(x)
            if self.store_hidden:
                self.hidden_states.append(x)
        return x
