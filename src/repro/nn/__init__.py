"""Neural-network building blocks on top of :mod:`repro.tensor`.

Provides a compact module system (:class:`Module` / :class:`Parameter`)
plus the layers needed for the iTask models: linear projections, layer
normalization, multi-head self-attention, transformer encoder blocks, and
the :class:`VisionTransformer` used by both model configurations.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, LayerNorm, Dropout, Identity, Sequential, Embedding
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import FeedForward, TransformerBlock, TransformerEncoder
from repro.nn.vit import PatchEmbedding, VisionTransformer, ViTConfig
from repro.nn import losses, init
from repro.nn.losses import (
    cross_entropy,
    mse_loss,
    l1_loss,
    kl_divergence,
    soft_target_loss,
    binary_cross_entropy_with_logits,
)
from repro.nn.serialization import (
    file_sha256,
    load_state_dict,
    save_state_dict,
    state_dict_equal,
    state_dict_keys,
)

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Identity",
    "Sequential",
    "Embedding",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerBlock",
    "TransformerEncoder",
    "PatchEmbedding",
    "VisionTransformer",
    "ViTConfig",
    "losses",
    "init",
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "kl_divergence",
    "soft_target_loss",
    "binary_cross_entropy_with_logits",
    "save_state_dict",
    "load_state_dict",
    "state_dict_equal",
    "state_dict_keys",
    "file_sha256",
]
