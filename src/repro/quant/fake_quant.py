"""Fake quantization with a straight-through estimator.

``fake_quantize`` simulates quantization in the forward pass (round to the
grid, clip to the representable range, dequantize) while letting gradients
flow unchanged through in-range values — the standard STE used for
quantization-aware training.  Out-of-range values receive zero gradient,
which is what teaches QAT to pull activations inside the clip range.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.quant.observers import Observer
from repro.quant.qparams import QuantParams, QuantSpec, fake_quantize_array
from repro.tensor import Tensor


def fake_quantize(x: Tensor, params: QuantParams) -> Tensor:
    """Differentiable (STE) quantize–dequantize of ``x``."""
    spec = params.spec
    scale, zero_point = params._broadcast(x.ndim)
    raw = np.round(x.data.astype(np.float64) / scale) + zero_point
    in_range = (raw >= spec.qmin) & (raw <= spec.qmax)
    clipped = np.clip(raw, spec.qmin, spec.qmax)
    data = ((clipped - zero_point) * scale).astype(np.float32)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * in_range)

    out = Tensor.from_op(data, (x,), backward)
    return out


class FakeQuantize(Module):
    """A fake-quantization point with an attached observer.

    Modes:

    * *observing* (``calibrating=True``): forwards pass through untouched
      while the observer collects statistics;
    * *quantizing* (after :meth:`freeze`): applies STE fake quantization
      with the frozen parameters.
    """

    def __init__(self, observer: Observer) -> None:
        super().__init__()
        self.observer = observer
        self.calibrating = True
        self.params: Optional[QuantParams] = None

    def freeze(self) -> QuantParams:
        """Stop calibrating; compute and pin the quantization parameters."""
        self.params = self.observer.compute()
        self.calibrating = False
        return self.params

    def forward(self, x: Tensor) -> Tensor:
        if self.calibrating:
            self.observer.observe(x.data)
            return x
        if self.params is None:
            raise RuntimeError("FakeQuantize used after calibration without freeze()")
        return fake_quantize(x, self.params)

    def __repr__(self) -> str:
        state = "calibrating" if self.calibrating else f"frozen({self.params.spec.bits}b)"
        return f"FakeQuantize({state})"
