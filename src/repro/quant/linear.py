"""Integer linear layer: the kernel the accelerator executes.

``QuantizedLinear`` stores int weights (per-output-channel symmetric by
default) and quantizes activations on the fly with frozen per-tensor
parameters.  The matmul semantics are integer arithmetic with an int32
accumulator — exactly what the systolic array in :mod:`repro.hw` does —
followed by a float requantization:

    y[n, c] = s_x · s_w[c] · ( Σ_k x_q[n,k] · W_q[c,k]  −  z_x · Σ_k W_q[c,k] ) + b[c]

The zero-point correction term ``z_x · Σ_k W_q`` is precomputed per
channel, as a deployment compiler would.

Execution strategy — exact BLAS-backed GEMMs
--------------------------------------------
numpy integer matmul never dispatches to BLAS: ``int64 @ int64`` runs a
naive inner loop an order of magnitude slower than the float path.  But
quantized codes are *small* integers (|q| ≤ 2¹⁶ for every spec this
repo supports), so the int32 accumulator can be computed **exactly** in
float arithmetic: every product and every partial sum is an integer of
magnitude ≤ K · max|x_q| · max|W_q|, and IEEE floats represent all
integers up to their mantissa capacity (2⁵³ for float64, 2²⁴ for
float32) without rounding.  At construction the layer

* asserts ``2 · K · amax · wmax < 2^53`` from the spec (raising
  ``ValueError`` when a spec/shape combination could overflow the
  float64 accumulator — it cannot for any bit width ≤ 16 at realistic
  K), and
* prepacks the transposed weight as a contiguous float buffer —
  float32 when ``K · amax · wmax ≤ 2^24`` makes the narrower GEMM exact
  too (about 3x faster again), float64 otherwise.

``forward_integer`` then runs one BLAS GEMM over the float codes and
requantizes with constants fused at construction.  The original int64
matmul is kept verbatim as :meth:`forward_integer_reference` — the
bit-exactness oracle that property tests assert against, also
selectable at runtime via ``REPRO_QUANT_EXACT=1`` as an escape hatch.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

import numpy as np

from repro.nn.layers import Linear
from repro.quant.qparams import (
    QuantParams,
    QuantSpec,
    channel_minmax,
    compute_qparams,
    quantize_array,
)

# Largest integer magnitudes exactly accumulable without rounding.
_F64_EXACT_BOUND = 2 ** 53
_F32_EXACT_BOUND = 2 ** 24

# Rows-per-block budget (in elements) for the chunked elementwise
# passes: the float64 quantize/requant intermediates are streamed
# through a ~256 KiB scratch block that stays cache-resident instead of
# being materialised at full batch size, which would round-trip several
# MiB of float64 through memory per site.  Chunking is invisible to the
# results — every pass is elementwise, so blocking cannot change a bit.
_CHUNK_ELEMS = 32 * 1024


def _reference_requested() -> bool:
    """``REPRO_QUANT_EXACT=1`` routes every forward through the int64
    reference kernel (escape hatch; the BLAS path is provably exact)."""
    return os.environ.get("REPRO_QUANT_EXACT", "") == "1"


class QuantizedLinear:
    """Frozen, inference-only quantized affine layer.

    Not a :class:`~repro.nn.Module` — it owns no trainable parameters and
    operates on plain numpy arrays (the quantized model never
    backpropagates).
    """

    def __init__(
        self,
        weight_q: np.ndarray,
        weight_params: QuantParams,
        act_params: QuantParams,
        bias: Optional[np.ndarray],
    ) -> None:
        if weight_q.ndim != 2:
            raise ValueError("weight_q must be (out_features, in_features)")
        if weight_params.spec.per_channel and weight_params.scale.shape[0] != weight_q.shape[0]:
            raise ValueError("per-channel scale count must equal out_features")
        if act_params.spec.per_channel:
            raise ValueError("activation quantization must be per-tensor")
        # Codes live in the spec's storage dtype (int8/uint8/int16/uint16),
        # the footprint a deployment actually ships.
        self.weight_q = np.ascontiguousarray(
            weight_q.astype(weight_params.spec.storage_dtype()))
        self.weight_params = weight_params
        self.act_params = act_params
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        # Precomputed requantization constants.
        self._weight_scale = np.asarray(weight_params.scale, dtype=np.float64).reshape(-1)
        self._act_scale = float(np.asarray(act_params.scale).reshape(()))
        self._act_zero = int(np.asarray(act_params.zero_point).reshape(()))
        self._weight_col_sum = self.weight_q.sum(axis=1, dtype=np.int64)
        # ---- fused requant vectors -----------------------------------
        # y = acc_f · (s_x · s_w)  −  (z_x · Σ_k W_q) · (s_x · s_w) + b,
        # with the subtraction applied on the exact integer accumulator
        # (identical op order to the reference, so outputs are
        # bit-identical).
        self._requant_scale = self._act_scale * self._weight_scale
        self._zp_correction = (
            self._act_zero * self._weight_col_sum).astype(np.float64)
        # ---- exactness bound + prepacked BLAS weight -----------------
        k = self.weight_q.shape[1]
        act_spec = act_params.spec
        amax = max(abs(act_spec.qmin), abs(act_spec.qmax), abs(self._act_zero))
        # The hot path runs the GEMM over zero-point-*shifted* codes
        # (q − z_x), so the accumulator directly equals the corrected sum
        # acc − z_x·ΣW — no requant subtraction pass needed.  Shifted
        # codes can be larger in magnitude than raw ones, so the bound
        # covers both entry points.
        self._shift_qmin = float(act_spec.qmin - self._act_zero)
        self._shift_qmax = float(act_spec.qmax - self._act_zero)
        amax = max(amax, abs(int(self._shift_qmin)), abs(int(self._shift_qmax)))
        wmax = int(np.abs(self.weight_q.astype(np.int64)).max()) if self.weight_q.size else 0
        # GEMM partial sums are ≤ K·amax·wmax; the zero-point correction
        # subtraction doubles the representable range needed.
        if 2 * k * amax * wmax >= _F64_EXACT_BOUND:
            raise ValueError(
                f"quantized GEMM not exactly representable in float64: "
                f"2·K·amax·wmax = 2·{k}·{amax}·{wmax} >= 2^53; "
                f"reduce bit width or in_features")
        self._gemm_dtype = (
            np.float32 if k * amax * wmax <= _F32_EXACT_BOUND else np.float64)
        self._packed_weight = np.ascontiguousarray(
            self.weight_q.T.astype(self._gemm_dtype))
        # Per-thread scratch buffers (codes / accumulator / requant
        # intermediate), keyed by row count.  Cycling three multi-MB
        # allocations per call costs more than the GEMM itself on this
        # machine; reuse keeps the pages hot.  Thread-local because the
        # serving engine may run concurrent workers over one model.
        self._scratch = threading.local()
        # When True, ``__call__`` returns a scratch buffer that the NEXT
        # same-shape call overwrites.  Only safe for callers that fully
        # consume the result before invoking the layer again —
        # :func:`~repro.quant.vit.quantize_vit` enables it for hidden
        # sites (their outputs die inside one ``_vit_forward`` pass) and
        # keeps it off for head sites, whose outputs the detect path
        # accumulates across chunked forwards.
        self.reuse_output = False

    # ------------------------------------------------------------------
    @property
    def out_features(self) -> int:
        return self.weight_q.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight_q.shape[1]

    @property
    def weight_bits(self) -> int:
        return self.weight_params.spec.bits

    @property
    def act_bits(self) -> int:
        return self.act_params.spec.bits

    def dequantized_weight(self) -> np.ndarray:
        """Float reconstruction of the stored weights (for error analysis)."""
        scale = self._weight_scale
        if self.weight_params.spec.per_channel:
            return (self.weight_q * scale[:, None]).astype(np.float32)
        return (self.weight_q * scale).astype(np.float32)

    # ------------------------------------------------------------------
    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Activations → integer codes with the frozen act parameters."""
        return quantize_array(x, self.act_params)

    def _scratch_for(self, m: int) -> dict:
        """Reusable per-thread buffers for ``m``-row forwards.

        ``q`` (float64 codes), ``codes`` (float32 codes, narrow-GEMM path
        only), ``acc`` (GEMM output), ``y`` (float64 requant
        intermediate) and ``out`` (float32 result, handed out only under
        :attr:`reuse_output`).  Every buffer is fully overwritten before
        it is read on each call, so reuse cannot leak state between
        batches — outputs stay bit-identical and batch-invariant.
        """
        store = self._scratch.__dict__.setdefault("buffers", {})
        bufs = store.get(m)
        if bufs is None:
            if len(store) >= 8:   # bound memory if callers vary shapes
                store.clear()
            n, k = self.weight_q.shape
            narrow = self._gemm_dtype is np.float32
            # On the narrow path the float64 intermediates are
            # chunk-sized scratch blocks (see ``_CHUNK_ELEMS``); on the
            # wide path ``q`` feeds the GEMM directly and must hold the
            # whole batch.
            q_rows = min(m, max(1, _CHUNK_ELEMS // k)) if narrow else m
            y_rows = min(m, max(1, _CHUNK_ELEMS // n))
            bufs = {
                "q": np.empty((q_rows, k), dtype=np.float64),
                "codes": np.empty((m, k), dtype=np.float32) if narrow else None,
                "acc": np.empty((m, n), dtype=self._gemm_dtype),
                "y": np.empty((y_rows, n), dtype=np.float64) if narrow else None,
                "out": np.empty((m, n), dtype=np.float32),
            }
            store[m] = bufs
        return bufs

    def _quantize_codes_shifted(self, x: np.ndarray) -> np.ndarray:
        """Activations → zero-point-shifted codes (q − z_x) in the GEMM's
        float dtype.

        Same float64 round/clip arithmetic as :func:`quantize_array`
        (codes equal :meth:`quantize_input` minus ``z_x``, bit for bit),
        but with the zero-point folded into the clip bounds so the hot
        path needs no add pass, no integer-storage round trip — and the
        GEMM over shifted codes needs no correction subtraction at all.
        """
        bufs = self._scratch_for(x.shape[0])
        if self._gemm_dtype is np.float32:
            # Fuse the float32 cast into the rint pass: rounded codes
            # within the clip range are integers ≤ 2^24, exact in
            # float32; values outside round to something still outside,
            # which the clip maps to the same bound either way.  The
            # float64 quotient only ever lives in a cache-resident
            # chunk; rint/clip run while that block is hot.
            codes = bufs["codes"]
            scratch = bufs["q"]
            step = scratch.shape[0]
            for start in range(0, x.shape[0], step):
                stop = min(start + step, x.shape[0])
                block = scratch[: stop - start]
                np.divide(x[start:stop], self._act_scale, out=block,
                          dtype=np.float64)
                rounded = codes[start:stop]
                np.rint(block, out=rounded, casting="same_kind")
                np.clip(rounded, self._shift_qmin, self._shift_qmax,
                        out=rounded)
            return codes
        q = np.divide(x, self._act_scale, out=bufs["q"], dtype=np.float64)
        np.rint(q, out=q)
        np.clip(q, self._shift_qmin, self._shift_qmax, out=q)
        return q

    def _forward_shifted(self, q: np.ndarray) -> np.ndarray:
        """GEMM + requantization over zero-point-shifted float codes.

        The accumulator over ``q − z_x`` is exactly the corrected integer
        ``acc − z_x·Σ_k W_q`` (every partial sum is an integer within the
        construction-time bound, hence exact in the GEMM dtype), so the
        result is bit-identical to the reference:  the fused multiply
        casts the exact integer accumulator to float64 and scales it in
        one pass, matching the reference's op order.
        """
        bufs = self._scratch_for(q.shape[0])
        acc = np.matmul(q, self._packed_weight, out=bufs["acc"])
        out = (bufs["out"] if self.reuse_output
               else np.empty(acc.shape, dtype=np.float32))
        # Every multiply/add below computes in float64 (ufunc type
        # resolution ignores the float32 ``out``) and casts on store, so
        # the op order — and therefore every bit — matches the
        # reference's astype(float64)·scale + bias → float32 chain.
        if acc.dtype != np.float64:
            if self.bias is None:
                np.multiply(acc, self._requant_scale, out=out,
                            casting="same_kind")
            else:
                scratch = bufs["y"]
                step = scratch.shape[0]
                for start in range(0, acc.shape[0], step):
                    stop = min(start + step, acc.shape[0])
                    block = scratch[: stop - start]
                    np.multiply(acc[start:stop], self._requant_scale,
                                out=block)
                    np.add(block, self.bias, out=out[start:stop],
                           casting="same_kind")
        elif self.bias is None:
            np.multiply(acc, self._requant_scale, out=out,
                        casting="same_kind")
        else:
            acc *= self._requant_scale
            np.add(acc, self.bias, out=out, casting="same_kind")
        return out

    def forward_integer(self, x_q: np.ndarray) -> np.ndarray:
        """Integer GEMM + requantization from pre-quantized activations.

        ``x_q`` has shape (..., in_features), values already clipped to
        the activation grid.  Runs the exact BLAS-backed kernel; set
        ``REPRO_QUANT_EXACT=1`` to route through the int64 reference.
        """
        if _reference_requested():
            return self.forward_integer_reference(x_q)
        if x_q.ndim != 2:
            acc = x_q.astype(self._gemm_dtype, copy=False) @ self._packed_weight
            if acc.dtype != np.float64:
                acc = acc.astype(np.float64)  # exact: integer-valued floats
            acc -= self._zp_correction
            acc *= self._requant_scale
            if self.bias is not None:
                acc += self.bias
            return acc.astype(np.float32)
        bufs = self._scratch_for(x_q.shape[0])
        narrow = self._gemm_dtype is np.float32
        codes = bufs["codes"] if narrow else bufs["q"]
        codes[...] = x_q    # integer storage → exact float codes
        acc = np.matmul(codes, self._packed_weight, out=bufs["acc"])
        out = np.empty(acc.shape, dtype=np.float32)
        if narrow:
            scratch = bufs["y"]
            step = scratch.shape[0]
            for start in range(0, acc.shape[0], step):
                stop = min(start + step, acc.shape[0])
                y = scratch[: stop - start]
                y[...] = acc[start:stop]    # exact: integer-valued floats
                y -= self._zp_correction
                y *= self._requant_scale
                if self.bias is None:
                    out[start:stop] = y
                else:
                    np.add(y, self.bias, out=out[start:stop],
                           casting="same_kind")
            return out
        y = acc
        y -= self._zp_correction
        y *= self._requant_scale
        if self.bias is None:
            out[...] = y
        else:
            np.add(y, self.bias, out=out, casting="same_kind")
        return out

    def forward_integer_reference(self, x_q: np.ndarray) -> np.ndarray:
        """The seed int64 kernel, kept as the bit-exactness oracle.

        Tests assert ``forward_integer`` reproduces this bit for bit;
        it is also what ``REPRO_QUANT_EXACT=1`` deploys.
        """
        acc = x_q.astype(np.int64) @ self.weight_q.T.astype(np.int64)  # int accumulate
        acc = acc - self._act_zero * self._weight_col_sum
        y = acc.astype(np.float64) * (self._act_scale * self._weight_scale)
        if self.bias is not None:
            y = y + self.bias
        return y.astype(np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Float in → float out, with integer compute in the middle."""
        original_shape = x.shape
        flat = x.reshape(-1, original_shape[-1])
        if _reference_requested():
            y = self.forward_integer_reference(self.quantize_input(flat))
        else:
            y = self._forward_shifted(self._quantize_codes_shifted(flat))
        return y.reshape(*original_shape[:-1], self.out_features)

    # ------------------------------------------------------------------
    @staticmethod
    def from_linear(
        linear: Linear,
        act_params: QuantParams,
        weight_spec: QuantSpec = QuantSpec(bits=8, symmetric=True,
                                           per_channel=True, axis=0),
    ) -> "QuantizedLinear":
        """Quantize a trained float :class:`~repro.nn.Linear`."""
        weight = linear.weight.data
        if weight_spec.per_channel:
            lo, hi = channel_minmax(weight, weight_spec.axis)
        else:
            lo, hi = weight.min(), weight.max()
        weight_params = compute_qparams(lo, hi, weight_spec)
        weight_q = quantize_array(weight, weight_params)
        bias = None if linear.bias is None else linear.bias.data
        return QuantizedLinear(weight_q, weight_params, act_params, bias)

    def __repr__(self) -> str:
        return (
            f"QuantizedLinear(in={self.in_features}, out={self.out_features}, "
            f"w{self.weight_bits}a{self.act_bits})"
        )
