"""Integer linear layer: the kernel the accelerator executes.

``QuantizedLinear`` stores int weights (per-output-channel symmetric by
default) and quantizes activations on the fly with frozen per-tensor
parameters.  The matmul itself runs in integer arithmetic with an int32
accumulator — exactly what the systolic array in :mod:`repro.hw` does —
followed by a float requantization:

    y[n, c] = s_x · s_w[c] · ( Σ_k x_q[n,k] · W_q[c,k]  −  z_x · Σ_k W_q[c,k] ) + b[c]

The zero-point correction term ``z_x · Σ_k W_q`` is precomputed per
channel, as a deployment compiler would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear
from repro.quant.qparams import (
    QuantParams,
    QuantSpec,
    channel_minmax,
    compute_qparams,
    quantize_array,
)


class QuantizedLinear:
    """Frozen, inference-only quantized affine layer.

    Not a :class:`~repro.nn.Module` — it owns no trainable parameters and
    operates on plain numpy arrays (the quantized model never
    backpropagates).
    """

    def __init__(
        self,
        weight_q: np.ndarray,
        weight_params: QuantParams,
        act_params: QuantParams,
        bias: Optional[np.ndarray],
    ) -> None:
        if weight_q.ndim != 2:
            raise ValueError("weight_q must be (out_features, in_features)")
        if weight_params.spec.per_channel and weight_params.scale.shape[0] != weight_q.shape[0]:
            raise ValueError("per-channel scale count must equal out_features")
        if act_params.spec.per_channel:
            raise ValueError("activation quantization must be per-tensor")
        self.weight_q = weight_q.astype(np.int32)
        self.weight_params = weight_params
        self.act_params = act_params
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        # Precomputed requantization constants.
        self._weight_scale = np.asarray(weight_params.scale, dtype=np.float64).reshape(-1)
        self._act_scale = float(np.asarray(act_params.scale).reshape(()))
        self._act_zero = int(np.asarray(act_params.zero_point).reshape(()))
        self._weight_col_sum = self.weight_q.sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def out_features(self) -> int:
        return self.weight_q.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight_q.shape[1]

    @property
    def weight_bits(self) -> int:
        return self.weight_params.spec.bits

    @property
    def act_bits(self) -> int:
        return self.act_params.spec.bits

    def dequantized_weight(self) -> np.ndarray:
        """Float reconstruction of the stored weights (for error analysis)."""
        scale = self._weight_scale
        if self.weight_params.spec.per_channel:
            return (self.weight_q * scale[:, None]).astype(np.float32)
        return (self.weight_q * scale).astype(np.float32)

    # ------------------------------------------------------------------
    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Activations → integer codes with the frozen act parameters."""
        return quantize_array(x, self.act_params).astype(np.int32)

    def forward_integer(self, x_q: np.ndarray) -> np.ndarray:
        """Integer GEMM + requantization from pre-quantized activations.

        ``x_q`` has shape (..., in_features), values already clipped to
        the activation grid.
        """
        acc = x_q.astype(np.int64) @ self.weight_q.T.astype(np.int64)  # int accumulate
        acc = acc - self._act_zero * self._weight_col_sum
        y = acc.astype(np.float64) * (self._act_scale * self._weight_scale)
        if self.bias is not None:
            y = y + self.bias
        return y.astype(np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Float in → float out, with integer compute in the middle."""
        original_shape = x.shape
        flat = x.reshape(-1, original_shape[-1])
        y = self.forward_integer(self.quantize_input(flat))
        return y.reshape(*original_shape[:-1], self.out_features)

    # ------------------------------------------------------------------
    @staticmethod
    def from_linear(
        linear: Linear,
        act_params: QuantParams,
        weight_spec: QuantSpec = QuantSpec(bits=8, symmetric=True,
                                           per_channel=True, axis=0),
    ) -> "QuantizedLinear":
        """Quantize a trained float :class:`~repro.nn.Linear`."""
        weight = linear.weight.data
        if weight_spec.per_channel:
            lo, hi = channel_minmax(weight, weight_spec.axis)
        else:
            lo, hi = weight.min(), weight.max()
        weight_params = compute_qparams(lo, hi, weight_spec)
        weight_q = quantize_array(weight, weight_params)
        bias = None if linear.bias is None else linear.bias.data
        return QuantizedLinear(weight_q, weight_params, act_params, bias)

    def __repr__(self) -> str:
        return (
            f"QuantizedLinear(in={self.in_features}, out={self.out_features}, "
            f"w{self.weight_bits}a{self.act_bits})"
        )
