"""Quantization-aware training (QAT).

PTQ is enough at 8 bits (E6), but at 4 bits and below accuracy collapses;
QAT recovers most of it.  The flow mirrors deployment exactly:

1. wrap every GEMM site of a trained ViT with fake quantization on both
   its input activations and its weights (:class:`QATLinear`);
2. calibrate the activation observers with a few forward batches;
3. freeze quantization parameters and fine-tune with the straight-through
   estimator;
4. export with :func:`repro.quant.quantize_vit`-compatible integer
   kernels via :meth:`QATVisionTransformer.export`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.data.datasets import WindowDataset, batch_iterator
from repro.nn import Linear, VisionTransformer, cross_entropy
from repro.nn.module import Module
from repro.optim import AdamW, clip_grad_norm
from repro.quant.fake_quant import FakeQuantize, fake_quantize
from repro.quant.linear import QuantizedLinear
from repro.quant.observers import MinMaxObserver, MovingAverageObserver
from repro.quant.qparams import QuantSpec, channel_minmax, compute_qparams
from repro.quant.vit import QuantizedVisionTransformer, _model_sites, _site_linear
from repro.tensor import Tensor, no_grad


class QATLinear(Module):
    """A Linear layer with fake-quantized weights and input activations.

    The wrapped float layer's parameters are trained; weight quantization
    parameters are recomputed from the live weights every forward (per
    standard QAT practice), activation parameters come from the attached
    observer and are frozen after calibration.
    """

    def __init__(self, inner: Linear, weight_spec: QuantSpec,
                 act_observer: FakeQuantize) -> None:
        super().__init__()
        self.inner = inner
        self.weight_spec = weight_spec
        self.act_fq = act_observer

    def _weight_params(self):
        weight = self.inner.weight.data
        if self.weight_spec.per_channel:
            lo, hi = channel_minmax(weight, self.weight_spec.axis)
        else:
            lo, hi = weight.min(), weight.max()
        return compute_qparams(lo, hi, self.weight_spec)

    def forward(self, x: Tensor) -> Tensor:
        x = self.act_fq(x)
        weight_q = fake_quantize(self.inner.weight, self._weight_params())
        out = x @ weight_q.T
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out


@dataclasses.dataclass
class QATConfig:
    epochs: int = 5
    batch_size: int = 48
    learning_rate: float = 5e-4
    weight_decay: float = 0.0
    grad_clip: float = 1.0
    calibration_batches: int = 4
    seed: int = 0


class QATVisionTransformer(Module):
    """A trained ViT with every GEMM site wrapped for QAT."""

    def __init__(self, model: VisionTransformer,
                 weight_spec: QuantSpec = QuantSpec(bits=4, symmetric=True,
                                                    per_channel=True, axis=0),
                 act_spec: QuantSpec = QuantSpec(bits=8, symmetric=False)) -> None:
        super().__init__()
        self.model = model
        self.weight_spec = weight_spec
        self.act_spec = act_spec
        self._sites = _model_sites(model)
        self._originals: Dict[str, Linear] = {}
        for site in self._sites:
            inner = _site_linear(model, site)
            self._originals[site] = inner
            wrapper = QATLinear(
                inner, weight_spec,
                FakeQuantize(MovingAverageObserver(act_spec)),
            )
            self._swap(site, wrapper)

    def _swap(self, site: str, layer) -> None:
        """Replace the model's Linear at ``site`` with ``layer``."""
        owner, attr = self._resolve(site)
        setattr(owner, attr, layer)

    def _resolve(self, site: str):
        model = self.model
        if site == "patch_proj":
            return model.patch_embed, "proj"
        if site == "head":
            return model, "head"
        if site.startswith("task_head."):
            return model.task_head, site.split(".", 1)[1]
        if site.startswith("attr_head_"):
            return model, site
        block_name, layer = site.split(".")
        block = model.encoder._modules[block_name]
        if layer in ("qkv", "proj"):
            return block.attn, layer
        return block.mlp, layer

    def forward(self, images: Tensor):
        return self.model(images)

    # ------------------------------------------------------------------
    def calibrate(self, images: np.ndarray, batches: int = 4,
                  batch_size: int = 48) -> None:
        """Feed calibration batches, then freeze activation parameters."""
        with no_grad():
            for start in range(0, min(batches * batch_size, images.shape[0]),
                               batch_size):
                self.model(Tensor(images[start:start + batch_size]))
        for site in self._sites:
            owner, attr = self._resolve(site)
            wrapper: QATLinear = getattr(owner, attr)
            wrapper.act_fq.freeze()

    def export(self) -> QuantizedVisionTransformer:
        """Unwrap and convert to true-integer inference."""
        wrappers: Dict[str, QATLinear] = {}
        for site in self._sites:
            owner, attr = self._resolve(site)
            wrapper: QATLinear = getattr(owner, attr)
            if wrapper.act_fq.params is None:
                raise RuntimeError("export before calibrate()")
            wrappers[site] = wrapper
        layers: Dict[str, QuantizedLinear] = {}
        for site, wrapper in wrappers.items():
            owner, attr = self._resolve(site)
            layers[site] = QuantizedLinear.from_linear(
                wrapper.inner, wrapper.act_fq.params, self.weight_spec)
            setattr(owner, attr, wrapper.inner)  # restore the float layer
        return QuantizedVisionTransformer(model=self.model, layers=layers)


def train_qat(
    model: VisionTransformer,
    dataset: WindowDataset,
    weight_spec: QuantSpec = QuantSpec(bits=4, symmetric=True,
                                       per_channel=True, axis=0),
    act_spec: QuantSpec = QuantSpec(bits=8, symmetric=False),
    config: QATConfig = QATConfig(),
) -> QuantizedVisionTransformer:
    """Full QAT flow: wrap → calibrate → fine-tune → export.

    ``model`` is fine-tuned in place (its weights move); export restores
    the plain Linear layers and returns the integer model.
    """
    qat = QATVisionTransformer(model, weight_spec=weight_spec,
                               act_spec=act_spec)
    qat.calibrate(dataset.images, batches=config.calibration_batches,
                  batch_size=config.batch_size)
    optimizer = AdamW(model.parameters(), lr=config.learning_rate,
                      weight_decay=config.weight_decay)
    model.train()
    for epoch in range(config.epochs):
        for batch in batch_iterator(dataset, config.batch_size,
                                    seed=config.seed + epoch):
            out = model(Tensor(batch.images))
            loss = cross_entropy(out["class_logits"], batch.class_labels)
            model.zero_grad()
            loss.backward()
            if config.grad_clip > 0:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
    model.eval()
    return qat.export()
