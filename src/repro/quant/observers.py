"""Calibration observers.

An observer watches tensors flowing through a point in the network during
calibration and, when asked, produces :class:`~repro.quant.QuantParams`.
Four strategies are provided, matching the PTQ literature's standard menu:

* :class:`MinMaxObserver` — exact running min/max; simple, outlier-prone;
* :class:`MovingAverageObserver` — EMA of per-batch min/max; smoother;
* :class:`PercentileObserver` — clips the tails (e.g. 99.9th percentile);
* :class:`MSEObserver` — grid-searches the clipping range minimizing the
  quantization MSE (the strongest of the four, used as default for
  activations in the bit-width sweep).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.qparams import (
    QuantParams,
    QuantSpec,
    channel_minmax,
    compute_qparams,
    fake_quantize_array,
)


class Observer:
    """Base observer: accumulate statistics, emit qparams."""

    def __init__(self, spec: QuantSpec) -> None:
        self.spec = spec
        self.num_batches = 0

    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def compute(self) -> QuantParams:
        raise NotImplementedError

    def reset(self) -> None:
        self.num_batches = 0

    def _require_data(self) -> None:
        if self.num_batches == 0:
            raise RuntimeError(
                f"{type(self).__name__}.compute() called before any observe()"
            )


class MinMaxObserver(Observer):
    """Running global (or per-channel) min/max."""

    def __init__(self, spec: QuantSpec) -> None:
        super().__init__(spec)
        self.min_val: Optional[np.ndarray] = None
        self.max_val: Optional[np.ndarray] = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        if self.spec.per_channel:
            lo, hi = channel_minmax(x, self.spec.axis)
        else:
            lo, hi = np.asarray(x.min()), np.asarray(x.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo.astype(np.float64), hi.astype(np.float64)
        else:
            self.min_val = np.minimum(self.min_val, lo)
            self.max_val = np.maximum(self.max_val, hi)
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        return compute_qparams(self.min_val, self.max_val, self.spec)

    def reset(self) -> None:
        super().reset()
        self.min_val = None
        self.max_val = None


class MovingAverageObserver(Observer):
    """EMA of per-batch min/max (torch's default for activations)."""

    def __init__(self, spec: QuantSpec, momentum: float = 0.9) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        super().__init__(spec)
        self.momentum = momentum
        self.min_val: Optional[np.ndarray] = None
        self.max_val: Optional[np.ndarray] = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        if self.spec.per_channel:
            lo, hi = channel_minmax(x, self.spec.axis)
        else:
            lo, hi = np.asarray(x.min()), np.asarray(x.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo.astype(np.float64), hi.astype(np.float64)
        else:
            m = self.momentum
            self.min_val = m * self.min_val + (1 - m) * lo
            self.max_val = m * self.max_val + (1 - m) * hi
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        return compute_qparams(self.min_val, self.max_val, self.spec)

    def reset(self) -> None:
        super().reset()
        self.min_val = None
        self.max_val = None


class PercentileObserver(Observer):
    """Range from percentiles of the pooled calibration sample.

    Keeps a bounded reservoir of observed values to avoid unbounded
    memory; adequate for the calibration-set sizes used here.
    """

    def __init__(self, spec: QuantSpec, percentile: float = 99.9,
                 max_samples: int = 2_000_000, seed: int = 0) -> None:
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        if spec.per_channel:
            raise ValueError("PercentileObserver supports per-tensor specs only")
        super().__init__(spec)
        self.percentile = percentile
        self.max_samples = max_samples
        self._samples: list = []
        self._count = 0
        self._rng = np.random.default_rng(seed)

    def observe(self, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        budget = self.max_samples - self._count
        if budget <= 0:
            # Reservoir-style: random subsample replaces nothing; simply
            # subsample the incoming batch at the same global rate.
            keep = self._rng.random(flat.size) < (self.max_samples / max(self._count, 1)) * 0.1
            flat = flat[keep]
        elif flat.size > budget:
            flat = self._rng.choice(flat, size=budget, replace=False)
        if flat.size:
            self._samples.append(flat)
            self._count += flat.size
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        pooled = np.concatenate(self._samples)
        lower = np.percentile(pooled, 100.0 - self.percentile)
        upper = np.percentile(pooled, self.percentile)
        return compute_qparams(lower, upper, self.spec)

    def reset(self) -> None:
        super().reset()
        self._samples = []
        self._count = 0


class MSEObserver(Observer):
    """Grid search over symmetric range shrinkage minimizing quant MSE."""

    def __init__(self, spec: QuantSpec, num_candidates: int = 20,
                 max_samples: int = 500_000, seed: int = 0) -> None:
        if spec.per_channel:
            raise ValueError("MSEObserver supports per-tensor specs only")
        super().__init__(spec)
        self.num_candidates = num_candidates
        self.max_samples = max_samples
        self._samples: list = []
        self._count = 0
        self._rng = np.random.default_rng(seed)

    def observe(self, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        budget = self.max_samples - self._count
        if budget > 0:
            if flat.size > budget:
                flat = self._rng.choice(flat, size=budget, replace=False)
            self._samples.append(flat)
            self._count += flat.size
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        pooled = np.concatenate(self._samples)
        lo_full, hi_full = float(pooled.min()), float(pooled.max())
        best_params: Optional[QuantParams] = None
        best_err = np.inf
        for i in range(self.num_candidates):
            shrink = 1.0 - 0.8 * i / self.num_candidates  # 1.0 → 0.2
            candidate = compute_qparams(lo_full * shrink, hi_full * shrink, self.spec)
            err = float(np.mean((pooled - fake_quantize_array(pooled, candidate)) ** 2))
            if err < best_err:
                best_err, best_params = err, candidate
        assert best_params is not None
        return best_params

    def reset(self) -> None:
        super().reset()
        self._samples = []
        self._count = 0


def make_observer(kind: str, spec: QuantSpec, **kwargs) -> Observer:
    """Factory by name: minmax | moving_average | percentile | mse."""
    registry = {
        "minmax": MinMaxObserver,
        "moving_average": MovingAverageObserver,
        "percentile": PercentileObserver,
        "mse": MSEObserver,
    }
    try:
        return registry[kind](spec, **kwargs)
    except KeyError:
        raise KeyError(f"unknown observer kind {kind!r}; choose from {sorted(registry)}") from None
