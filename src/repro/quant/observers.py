"""Calibration observers.

An observer watches tensors flowing through a point in the network during
calibration and, when asked, produces :class:`~repro.quant.QuantParams`.
Four strategies are provided, matching the PTQ literature's standard menu:

* :class:`MinMaxObserver` — exact running min/max; simple, outlier-prone;
* :class:`MovingAverageObserver` — EMA of per-batch min/max; smoother;
* :class:`PercentileObserver` — clips the tails (e.g. 99.9th percentile);
* :class:`MSEObserver` — grid-searches the clipping range minimizing the
  quantization MSE (the strongest of the four, used as default for
  activations in the bit-width sweep).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.qparams import (
    QuantParams,
    QuantSpec,
    channel_minmax,
    compute_qparams,
    fake_quantize_array,
)


class Observer:
    """Base observer: accumulate statistics, emit qparams."""

    def __init__(self, spec: QuantSpec) -> None:
        self.spec = spec
        self.num_batches = 0

    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def compute(self) -> QuantParams:
        raise NotImplementedError

    def reset(self) -> None:
        self.num_batches = 0

    def _require_data(self) -> None:
        if self.num_batches == 0:
            raise RuntimeError(
                f"{type(self).__name__}.compute() called before any observe()"
            )


class MinMaxObserver(Observer):
    """Running global (or per-channel) min/max."""

    def __init__(self, spec: QuantSpec) -> None:
        super().__init__(spec)
        self.min_val: Optional[np.ndarray] = None
        self.max_val: Optional[np.ndarray] = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        if self.spec.per_channel:
            lo, hi = channel_minmax(x, self.spec.axis)
        else:
            lo, hi = np.asarray(x.min()), np.asarray(x.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo.astype(np.float64), hi.astype(np.float64)
        else:
            self.min_val = np.minimum(self.min_val, lo)
            self.max_val = np.maximum(self.max_val, hi)
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        return compute_qparams(self.min_val, self.max_val, self.spec)

    def reset(self) -> None:
        super().reset()
        self.min_val = None
        self.max_val = None


class MovingAverageObserver(Observer):
    """EMA of per-batch min/max (torch's default for activations)."""

    def __init__(self, spec: QuantSpec, momentum: float = 0.9) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        super().__init__(spec)
        self.momentum = momentum
        self.min_val: Optional[np.ndarray] = None
        self.max_val: Optional[np.ndarray] = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        if self.spec.per_channel:
            lo, hi = channel_minmax(x, self.spec.axis)
        else:
            lo, hi = np.asarray(x.min()), np.asarray(x.max())
        if self.min_val is None:
            self.min_val, self.max_val = lo.astype(np.float64), hi.astype(np.float64)
        else:
            m = self.momentum
            self.min_val = m * self.min_val + (1 - m) * lo
            self.max_val = m * self.max_val + (1 - m) * hi
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        return compute_qparams(self.min_val, self.max_val, self.spec)

    def reset(self) -> None:
        super().reset()
        self.min_val = None
        self.max_val = None


class PercentileObserver(Observer):
    """Range from percentiles of a uniform reservoir over the stream.

    Memory is bounded by a fixed ``max_samples`` reservoir maintained
    with vectorized Algorithm R: once full, the ``t``-th observed value
    is accepted with probability ``max_samples / t`` and overwrites a
    uniformly random slot, so every element of the stream ends up in the
    reservoir with (asymptotically) equal probability — unlike the seed
    implementation, whose post-budget acceptance rate was neither a true
    reservoir nor rate-consistent and whose sample list kept growing
    past the budget.
    """

    def __init__(self, spec: QuantSpec, percentile: float = 99.9,
                 max_samples: int = 2_000_000, seed: int = 0) -> None:
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        if spec.per_channel:
            raise ValueError("PercentileObserver supports per-tensor specs only")
        super().__init__(spec)
        self.percentile = percentile
        self.max_samples = max_samples
        self._reservoir = np.empty(max_samples, dtype=np.float64)
        self._filled = 0
        self._count = 0          # total stream length seen so far
        self._rng = np.random.default_rng(seed)

    def observe(self, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        take = min(self.max_samples - self._filled, flat.size)
        if take:
            self._reservoir[self._filled:self._filled + take] = flat[:take]
            self._filled += take
        rest = flat[take:]
        if rest.size:
            # 1-based global indices of the post-fill elements; element t
            # is kept with probability max_samples / t (Algorithm R) and
            # lands on a uniform slot.  Processing acceptances in chunk
            # order keeps later duplicates winning, as sequential
            # replacement would.
            t = self._count + take + 1 + np.arange(rest.size)
            accept = self._rng.random(rest.size) < self.max_samples / t
            kept = rest[accept]
            if kept.size:
                slots = self._rng.integers(0, self.max_samples, size=kept.size)
                self._reservoir[slots] = kept
        self._count += flat.size
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        pooled = self._reservoir[:self._filled]
        lower = np.percentile(pooled, 100.0 - self.percentile)
        upper = np.percentile(pooled, self.percentile)
        return compute_qparams(lower, upper, self.spec)

    def reset(self) -> None:
        super().reset()
        self._filled = 0
        self._count = 0


class MSEObserver(Observer):
    """Grid search over symmetric range shrinkage minimizing quant MSE."""

    def __init__(self, spec: QuantSpec, num_candidates: int = 20,
                 max_samples: int = 500_000, seed: int = 0) -> None:
        if spec.per_channel:
            raise ValueError("MSEObserver supports per-tensor specs only")
        super().__init__(spec)
        self.num_candidates = num_candidates
        self.max_samples = max_samples
        self._samples: list = []
        self._count = 0
        self._rng = np.random.default_rng(seed)

    def observe(self, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        budget = self.max_samples - self._count
        if budget > 0:
            if flat.size > budget:
                flat = self._rng.choice(flat, size=budget, replace=False)
            self._samples.append(flat)
            self._count += flat.size
        self.num_batches += 1

    def compute(self) -> QuantParams:
        self._require_data()
        pooled = np.concatenate(self._samples)
        lo_full, hi_full = float(pooled.min()), float(pooled.max())
        # Endpoint-inclusive shrink grid: 1.0 → 0.2 exactly (the seed's
        # 1.0 - 0.8*i/n never reached the documented 0.2 endpoint).
        shrink = np.linspace(1.0, 0.2, self.num_candidates)
        candidates = compute_qparams(lo_full * shrink, hi_full * shrink, self.spec)
        scale = np.asarray(candidates.scale, dtype=np.float64).reshape(-1)
        zero_point = np.asarray(candidates.zero_point, dtype=np.int64).reshape(-1)
        qmin, qmax = self.spec.qmin, self.spec.qmax
        # Candidate search with a lean in-place fake-quantize kernel: the
        # same round/clip/dequantize arithmetic as fake_quantize_array
        # (so the winning candidate matches the reference loop bit for
        # bit) minus its integer-storage round trips and temporary
        # copies — ~2x faster at the default 500k-sample budget.  A full
        # (num_candidates, samples) broadcast matrix measures *slower*
        # here: each elementwise pass re-streams the matrix from main
        # memory, while one candidate row stays cache-resident.
        errs = np.empty(self.num_candidates, dtype=np.float64)
        for i in range(self.num_candidates):
            s, z = float(scale[i]), int(zero_point[i])
            q = np.round(pooled / s)
            q += z
            np.clip(q, qmin, qmax, out=q)
            q -= z
            q *= s
            err = pooled - q.astype(np.float32)
            np.square(err, out=err)
            errs[i] = err.mean()
        best = int(np.argmin(errs))  # first minimum, like the loop's strict <
        return compute_qparams(lo_full * float(shrink[best]),
                               hi_full * float(shrink[best]), self.spec)

    def reset(self) -> None:
        super().reset()
        self._samples = []
        self._count = 0


def make_observer(kind: str, spec: QuantSpec, **kwargs) -> Observer:
    """Factory by name: minmax | moving_average | percentile | mse."""
    registry = {
        "minmax": MinMaxObserver,
        "moving_average": MovingAverageObserver,
        "percentile": PercentileObserver,
        "mse": MSEObserver,
    }
    try:
        return registry[kind](spec, **kwargs)
    except KeyError:
        raise KeyError(f"unknown observer kind {kind!r}; choose from {sorted(registry)}") from None
