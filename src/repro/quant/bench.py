"""Quantized-inference benchmark workloads (E12).

Shared by ``benchmarks/bench_e12_quant_inference.py`` (which persists
telemetry and gates CI) and the ``repro quant bench`` CLI subcommand.
Three workloads cover the integer stack bottom-up:

* :func:`run_kernel_latency` — per-site GEMM latency of the exact
  BLAS-backed :meth:`~repro.quant.QuantizedLinear.forward_integer`
  against the int64 :meth:`forward_integer_reference`, asserting the
  outputs are **bit-identical** before anything is timed;
* :func:`run_forward_latency` — the whole quantized network end to end
  (patch projection → blocks → heads) at serving batch size, BLAS
  kernels vs the ``REPRO_QUANT_EXACT=1`` reference, gated on
  bit-identical outputs — the ≥5x acceptance measurement;
* :func:`run_e2e_forward` — quantized scenes/sec through the full
  detect path (``TaskDetector.detect_batch`` over a scene stream,
  window extraction and NMS included), again gated on bit-identical
  detections;
* :func:`repro.serve.bench.compare_engine_configurations` — float
  specialist vs quantized engine throughput (re-exported here for the
  benchmark's third table).

Timing rounds are round-robined across modes so single-core machine
drift cancels out of every reported speedup; the model-level workloads
additionally time each mode in steady state (see
:func:`_steady_state_rounds`) rather than on the other mode's evicted
cache.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data import SceneConfig, SceneGenerator, attribute_head_spec
from repro.data.datasets import num_classes
from repro.nn import VisionTransformer, ViTConfig
from repro.quant.qparams import QuantSpec
from repro.quant.vit import QuantizedVisionTransformer, quantize_vit
from repro.serve.bench import _interleaved_rounds, compare_engine_configurations

__all__ = [
    "build_quantized_student",
    "run_kernel_latency",
    "run_forward_latency",
    "run_e2e_forward",
    "compare_engine_configurations",
    "reference_mode",
]


@contextlib.contextmanager
def reference_mode() -> Iterator[None]:
    """Force every quantized forward through the int64 reference kernel
    (scoped ``REPRO_QUANT_EXACT=1``)."""
    prev = os.environ.get("REPRO_QUANT_EXACT")
    os.environ["REPRO_QUANT_EXACT"] = "1"
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_QUANT_EXACT", None)
        else:
            os.environ["REPRO_QUANT_EXACT"] = prev


def build_quantized_student(
    weight_bits: int = 8,
    act_bits: int = 8,
    calibration_images: int = 32,
    seed: int = 0,
) -> QuantizedVisionTransformer:
    """Fresh student ViT, post-training quantized at the given widths.

    Weights are untrained (timing does not depend on values), so the
    workload is stateless — no artifact cache involved.
    """
    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(seed))
    calibration = np.random.default_rng(seed + 1).random(
        (calibration_images, config.in_channels,
         config.image_size, config.image_size)).astype(np.float32)
    return quantize_vit(
        model, calibration,
        weight_spec=QuantSpec(bits=weight_bits, symmetric=True,
                              per_channel=True, axis=0),
        act_spec=QuantSpec(bits=act_bits, symmetric=False),
    )


def run_kernel_latency(
    rows_per_gemm: int = 4096,
    repeats: int = 5,
    weight_bits: int = 8,
    act_bits: int = 8,
    seed: int = 0,
    sites: Optional[List[str]] = None,
) -> List[Dict]:
    """Per-site GEMM latency: BLAS fast path vs int64 reference.

    Every site of the quantized student is fed the same pre-quantized
    activation codes; both kernels must agree **bit for bit** (asserted)
    before they are timed with interleaved rounds.  Returns one row per
    site with shapes, the GEMM dtype the exactness bound selected, both
    latencies, and the speedup.
    """
    quantized = build_quantized_student(weight_bits, act_bits, seed=seed)
    rng = np.random.default_rng(seed + 2)
    rows: List[Dict] = []
    for site, layer in quantized.layers.items():
        if sites is not None and site not in sites:
            continue
        x = rng.standard_normal(
            (rows_per_gemm, layer.in_features)).astype(np.float32)
        x_q = layer.quantize_input(x)

        fast = layer.forward_integer(x_q)
        reference = layer.forward_integer_reference(x_q)
        assert fast.dtype == reference.dtype == np.float32
        if not np.array_equal(fast, reference):
            raise AssertionError(
                f"{site}: BLAS kernel diverged from int64 reference")

        samples = _interleaved_rounds(repeats, [
            lambda layer=layer, x_q=x_q: layer.forward_integer(x_q),
            lambda layer=layer, x_q=x_q: layer.forward_integer_reference(x_q),
        ])
        fast_s, ref_s = min(samples[0]), min(samples[1])
        rows.append({
            "site": site,
            "m": rows_per_gemm,
            "k": layer.in_features,
            "n": layer.out_features,
            "gemm_dtype": np.dtype(layer._gemm_dtype).name,
            "fast_ms": fast_s * 1e3,
            "reference_ms": ref_s * 1e3,
            "speedup": ref_s / fast_s,
        })
    return rows


def _steady_state_rounds(repeats: int, tasks, inner: int = 2):
    """Per-task steady-state samples, with task blocks round-robined.

    Like :func:`repro.serve.bench._interleaved_rounds` (alternation keeps
    per-round ratios immune to machine drift), but each round re-enters a
    task's cache regime with one untimed call before timing ``inner``
    back-to-back calls.  Strict call-by-call alternation would time every
    mode on the *other* mode's evicted cache — a regime no deployment
    runs in, and one that understates the fast path (its working set fits
    where the int64 reference's cannot).
    """
    samples: List[List[float]] = [[] for _ in tasks]
    for _ in range(repeats):
        for i, fn in enumerate(tasks):
            fn()
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            samples[i].append((time.perf_counter() - start) / inner)
    return samples


def _outputs_equal(left, right) -> bool:
    if isinstance(left, dict):
        return set(left) == set(right) and all(
            _outputs_equal(left[key], right[key]) for key in left)
    return np.array_equal(np.asarray(left), np.asarray(right))


def run_forward_latency(
    batch_images: int = 256,
    repeats: int = 5,
    weight_bits: int = 8,
    act_bits: int = 8,
    seed: int = 11,
) -> Tuple[List[Dict], float]:
    """End-to-end quantized network forward, BLAS kernels vs reference.

    One fused batch of ``batch_images`` images through the *whole*
    quantized model — patch projection, both transformer blocks, and
    every head — once on the exact BLAS kernels and once under
    ``REPRO_QUANT_EXACT=1``.  Every output head (logits, attributes,
    CLS embedding) must match **bit for bit** (asserted before timing).
    Returns (rows, speedup) with the drift-cancelled fast-over-reference
    speedup (each mode's best steady-state round, rounds interleaved) —
    the number the E12 acceptance gate checks.
    """
    quantized = build_quantized_student(weight_bits, act_bits, seed=seed)
    config = quantized.model.config
    images = np.random.default_rng(seed + 1).random(
        (batch_images, config.in_channels,
         config.image_size, config.image_size)).astype(np.float32)

    fast_out = quantized(images)
    with reference_mode():
        ref_out = quantized(images)
    if not _outputs_equal(fast_out, ref_out):
        raise AssertionError(
            "BLAS forward diverged from the int64 reference")

    def run_fast() -> None:
        quantized(images)

    def run_reference() -> None:
        with reference_mode():
            quantized(images)

    samples = _steady_state_rounds(repeats, [run_fast, run_reference])
    fast_rounds, ref_rounds = samples
    # Min over interleaved rounds for each mode (the same estimator
    # run_kernel_latency uses): the least-noise steady-state latency,
    # with round-robined rounds exposing both modes to the same drift.
    speedup = min(ref_rounds) / min(fast_rounds)
    images_per_s = batch_images / min(fast_rounds)
    rows = [
        {"mode": "blas_fast", "batch_images": batch_images,
         "images_per_s": images_per_s,
         "ms_per_batch": min(fast_rounds) * 1e3,
         "speedup_vs_reference": speedup},
        {"mode": "int64_reference", "batch_images": batch_images,
         "images_per_s": batch_images / min(ref_rounds),
         "ms_per_batch": min(ref_rounds) * 1e3,
         "speedup_vs_reference": 1.0},
    ]
    return rows, speedup


def _detections_equal(left, right) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        for da, db in zip(a, b):
            if da.bbox != db.bbox or da.score != db.score \
                    or da.class_id != db.class_id:
                return False
    return True


def run_e2e_forward(
    num_scenes: int = 32,
    grid: int = 3,
    repeats: int = 3,
    weight_bits: int = 8,
    act_bits: int = 8,
    seed: int = 7,
) -> Tuple[List[Dict], float]:
    """End-to-end quantized detection throughput, BLAS vs reference.

    Streams ``num_scenes`` scenes through the quantized serving pipeline
    (``MissionSession.detect_batch`` — fused multi-scene forwards) twice:
    once on the exact BLAS kernels, once under ``REPRO_QUANT_EXACT=1``.
    Detections must match **bit for bit** (bbox, score, class — asserted
    before timing).  Returns (rows, speedup): one row per execution mode
    with scenes/sec, and the drift-cancelled fast-over-reference speedup
    (each mode's best steady-state round, rounds interleaved).
    """
    from repro.serve.bench import build_workload

    if (weight_bits, act_bits) == (8, 8):
        pipeline, spec, scenes = build_workload(num_scenes, grid, seed,
                                                configuration="quantized")
        session = pipeline.session(spec)
        detect = lambda: session.detect_batch(scenes)  # noqa: E731
    else:
        # Non-default widths: drive the detector directly (the serving
        # workload pins w8a8, the deployment default).
        from repro.detect.pipeline import TaskDetector

        quantized = build_quantized_student(weight_bits, act_bits, seed=seed)
        detector = TaskDetector(model=quantized, matcher=None)
        scenes = list(SceneGenerator(SceneConfig(grid=grid),
                                     seed=seed).generate_batch(num_scenes))
        detect = lambda: detector.detect_batch(scenes)  # noqa: E731

    fast_out = detect()
    with reference_mode():
        ref_out = detect()
    if not _detections_equal(fast_out, ref_out):
        raise AssertionError(
            "BLAS detect path diverged from the int64 reference")

    def run_reference() -> None:
        with reference_mode():
            detect()

    samples = _steady_state_rounds(repeats, [detect, run_reference])
    fast_rounds, ref_rounds = samples
    speedup = min(ref_rounds) / min(fast_rounds)
    rows = [
        {"mode": "blas_fast", "scenes": num_scenes,
         "scenes_per_s": num_scenes / min(fast_rounds),
         "ms_per_scene": min(fast_rounds) / num_scenes * 1e3,
         "speedup_vs_reference": speedup},
        {"mode": "int64_reference", "scenes": num_scenes,
         "scenes_per_s": num_scenes / min(ref_rounds),
         "ms_per_scene": min(ref_rounds) / num_scenes * 1e3,
         "speedup_vs_reference": 1.0},
    ]
    return rows, speedup
