"""Whole-model quantization of the Vision Transformer.

The quantized configuration runs every GEMM (patch projection, QKV,
attention output, MLP, heads) in integer arithmetic via
:class:`~repro.quant.QuantizedLinear`, while LayerNorm, softmax, and GELU
stay in float — the standard int8 ViT deployment recipe, and exactly the
split the hardware accelerator implements (GEMMs on the systolic array,
the rest on the vector unit).

One forward implementation (:func:`_vit_forward`) serves both calibration
(float projections + observers at every GEMM input) and quantized
inference (integer projections), so the calibration points can never
drift from the deployed graph.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import special as _special

from repro.nn import Linear, VisionTransformer
from repro.obs import get_registry
from repro.quant.linear import QuantizedLinear
from repro.quant.observers import Observer, make_observer
from repro.quant.qparams import QuantParams, QuantSpec

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))

ProjFn = Callable[[np.ndarray], np.ndarray]


def _layernorm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
               eps: float = 1e-5) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    return centered / np.sqrt(var + eps) * weight + bias


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def _gelu_tanh(x: np.ndarray) -> np.ndarray:
    """tanh-approximated GELU — matches the hardware vector unit's LUT."""
    return 0.5 * x * (1.0 + np.tanh(_SQRT_2_OVER_PI * (x + 0.044715 * x ** 3)))


def gemm_sites(depth: int, attribute_names: List[str],
               with_task_head: bool = False) -> List[str]:
    """Names of every GEMM input site, in execution order."""
    sites = ["patch_proj"]
    for i in range(depth):
        sites += [f"block{i}.qkv", f"block{i}.proj", f"block{i}.fc1", f"block{i}.fc2"]
    sites.append("head")
    sites += [f"attr_head_{name}" for name in attribute_names]
    if with_task_head:
        sites += ["task_head.fc1", "task_head.fc2"]
    return sites


def _model_sites(model: VisionTransformer) -> List[str]:
    return gemm_sites(model.config.depth, model.attribute_names,
                      with_task_head=model.task_head is not None)


def _float_proj(linear: Linear) -> ProjFn:
    weight = linear.weight.data
    bias = None if linear.bias is None else linear.bias.data

    def apply(x: np.ndarray) -> np.ndarray:
        y = x @ weight.T
        return y if bias is None else y + bias

    return apply


def _vit_forward(
    model: VisionTransformer,
    images: np.ndarray,
    projections: Mapping[str, ProjFn],
    observers: Optional[Mapping[str, Observer]] = None,
) -> Dict[str, np.ndarray]:
    """Shared ViT inference over pluggable projection kernels."""
    cfg = model.config
    batch = images.shape[0]
    grid = cfg.image_size // cfg.patch_size

    def project(site: str, x: np.ndarray) -> np.ndarray:
        if observers is not None and site in observers:
            observers[site].observe(x)
        return projections[site](x)

    patches = images.reshape(
        batch, cfg.in_channels, grid, cfg.patch_size, grid, cfg.patch_size
    ).transpose(0, 2, 4, 1, 3, 5).reshape(batch, grid * grid, cfg.patch_dim)
    tokens = project("patch_proj", patches)

    cls = np.broadcast_to(model.cls_token.data.reshape(1, 1, cfg.dim),
                          (batch, 1, cfg.dim))
    x = np.concatenate([cls, tokens], axis=1) + model.pos_embed.data

    num_heads, head_dim = cfg.num_heads, cfg.dim // cfg.num_heads
    scale = 1.0 / np.sqrt(head_dim)
    seq = cfg.num_tokens

    for i, block in enumerate(model.encoder.blocks):
        normed = _layernorm(x, block.norm1.weight.data, block.norm1.bias.data)
        qkv = project(f"block{i}.qkv", normed)
        qkv = qkv.reshape(batch, seq, 3, num_heads, head_dim).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        attn = _softmax((q @ k.transpose(0, 1, 3, 2)) * scale)
        context = (attn @ v).transpose(0, 2, 1, 3).reshape(batch, seq, cfg.dim)
        x = x + project(f"block{i}.proj", context)

        normed = _layernorm(x, block.norm2.weight.data, block.norm2.bias.data)
        hidden = _gelu_tanh(project(f"block{i}.fc1", normed))
        x = x + project(f"block{i}.fc2", hidden)

    x = _layernorm(x, model.norm.weight.data, model.norm.bias.data)
    cls_embedding = x[:, 0]
    out: Dict[str, np.ndarray] = {
        "class_logits": project("head", cls_embedding),
        "cls_embedding": cls_embedding,
    }
    out["attributes"] = {
        name: project(f"attr_head_{name}", cls_embedding)
        for name in model.attribute_names
    }
    if model.task_head is not None:
        hidden = _gelu_tanh(project("task_head.fc1", cls_embedding))
        out["task_logits"] = project("task_head.fc2", hidden)
    return out


def _site_linear(model: VisionTransformer, site: str) -> Linear:
    """Resolve a GEMM site name to the model's Linear layer."""
    if site == "patch_proj":
        return model.patch_embed.proj
    if site == "head":
        return model.head
    if site.startswith("task_head."):
        if model.task_head is None:
            raise KeyError("model has no task head")
        return getattr(model.task_head, site.split(".", 1)[1])
    if site.startswith("attr_head_"):
        return model._modules[site]
    block_name, layer = site.split(".")
    block = model.encoder._modules[block_name]
    if layer == "qkv":
        return block.attn.qkv
    if layer == "proj":
        return block.attn.proj
    if layer in ("fc1", "fc2"):
        return getattr(block.mlp, layer)
    raise KeyError(f"unknown GEMM site {site!r}")


def calibrate_observers(
    model: VisionTransformer,
    calibration_images: np.ndarray,
    act_spec: QuantSpec = QuantSpec(bits=8, symmetric=False),
    observer_kind: str = "minmax",
    batch_size: int = 64,
) -> Dict[str, QuantParams]:
    """Run float inference over the calibration set, observing every GEMM
    input, and return frozen activation quantization parameters."""
    sites = _model_sites(model)
    with get_registry().span(
        "quant.calibrate", sites=len(sites), observer=observer_kind,
        images=int(calibration_images.shape[0]),
    ):
        observers = {site: make_observer(observer_kind, act_spec) for site in sites}
        projections = {site: _float_proj(_site_linear(model, site)) for site in sites}
        for start in range(0, calibration_images.shape[0], batch_size):
            chunk = calibration_images[start:start + batch_size]
            _vit_forward(model, chunk, projections, observers)
        return {site: obs.compute() for site, obs in observers.items()}


@dataclasses.dataclass
class QuantizedVisionTransformer:
    """Inference-only quantized ViT (the paper's quantized configuration)."""

    model: VisionTransformer                 # float parameters for LN/pos/cls
    layers: Dict[str, QuantizedLinear]       # site -> integer kernel

    def forward(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        projections: Dict[str, ProjFn] = dict(self.layers)
        return _vit_forward(self.model, np.asarray(images, np.float32), projections)

    __call__ = forward

    def classify(self, images: np.ndarray) -> np.ndarray:
        return self.forward(images)["class_logits"].argmax(axis=-1)

    @property
    def config(self):
        return self.model.config

    @property
    def attribute_names(self) -> List[str]:
        return self.model.attribute_names

    def weight_bits(self) -> int:
        return next(iter(self.layers.values())).weight_bits

    def model_size_bytes(self) -> int:
        """Deployed parameter footprint: int weights + float aux params."""
        total = 0
        for layer in self.layers.values():
            total += layer.weight_q.size * layer.weight_bits // 8
            if layer.bias is not None:
                total += layer.bias.size * 4
        # LayerNorm / cls / pos parameters stay fp32 (they are tiny).
        quantized_names = {"weight", "bias"}
        for name, param in self.model.named_parameters():
            leaf = name.rsplit(".", 1)[-1]
            if leaf not in quantized_names or "norm" in name:
                total += param.size * 4
        return total


def quantize_vit(
    model: VisionTransformer,
    calibration_images: np.ndarray,
    weight_spec: QuantSpec = QuantSpec(bits=8, symmetric=True,
                                       per_channel=True, axis=0),
    act_spec: QuantSpec = QuantSpec(bits=8, symmetric=False),
    observer_kind: str = "minmax",
) -> QuantizedVisionTransformer:
    """Post-training quantization: calibrate, convert every GEMM."""
    act_params = calibrate_observers(
        model, np.asarray(calibration_images, np.float32),
        act_spec=act_spec, observer_kind=observer_kind,
    )
    sites = _model_sites(model)
    with get_registry().span("quant.convert", sites=len(sites),
                             weight_bits=weight_spec.bits):
        layers = {
            site: QuantizedLinear.from_linear(
                _site_linear(model, site), act_params[site], weight_spec,
            )
            for site in sites
        }
    return QuantizedVisionTransformer(model=model, layers=layers)
