"""Whole-model quantization of the Vision Transformer.

The quantized configuration runs every GEMM (patch projection, QKV,
attention output, MLP, heads) in integer arithmetic via
:class:`~repro.quant.QuantizedLinear`, while LayerNorm, softmax, and GELU
stay in float — the standard int8 ViT deployment recipe, and exactly the
split the hardware accelerator implements (GEMMs on the systolic array,
the rest on the vector unit).

One forward implementation (:func:`_vit_forward`) serves both calibration
(float projections + observers at every GEMM input) and quantized
inference (integer projections), so the calibration points can never
drift from the deployed graph.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import special as _special

from repro.nn import Linear, VisionTransformer
from repro.obs import get_registry
from repro.quant.linear import QuantizedLinear
from repro.quant.observers import Observer, make_observer
from repro.quant.qparams import QuantParams, QuantSpec

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))

ProjFn = Callable[[np.ndarray], np.ndarray]


def _row_sum(flat: np.ndarray) -> np.ndarray:
    # Row sums over a short trailing axis.  ``einsum`` is within 2x of a
    # BLAS matvec here and — unlike GEMV, whose accumulation order
    # changes with the row *count* — reduces each row in an order that
    # depends only on the row length, so fused batches stay bit-identical
    # to per-scene execution (asserted by the batch-invariance tests).
    # Native ``sum(axis=-1)`` pays one C call per row: ~4x slower.
    return np.einsum("ij->i", flat)


def _layernorm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
               eps: float = 1e-5) -> np.ndarray:
    # In-place on the fresh ``centered`` temporary; all reductions are
    # row-wise (batch-invariant), with 1-D/column broadcasts — several
    # times faster than ``keepdims`` reductions over a short trailing
    # axis.
    dim = x.shape[-1]
    flat = x.reshape(-1, dim)
    mean = _row_sum(flat) / dim
    centered = flat - mean[:, None]
    # einsum contracts the squares without materialising centered²
    # (row-local reduction order, so still batch-invariant).
    var = np.einsum("ij,ij->i", centered, centered) / dim
    centered /= np.sqrt(var + eps)[:, None]
    centered *= weight
    centered += bias
    return centered.reshape(x.shape)


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax computed **in place** on ``x`` (callers here always pass a
    fresh scores buffer that is dead after the call)."""
    if axis != -1:
        shifted = x - x.max(axis=axis, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=axis, keepdims=True)
        return shifted
    # Row-wise over the trailing axis with 1-D/column broadcasts (several
    # times faster than ``keepdims`` reductions over a short trailing
    # axis); the max reduce and the ``_row_sum`` normalizer are both
    # row-local, keeping fused batches bit-identical to per-scene runs.
    flat = x.reshape(-1, x.shape[-1])
    flat -= flat.max(axis=1)[:, None]
    np.exp(flat, out=flat)
    flat /= _row_sum(flat)[:, None]
    return flat.reshape(x.shape)


def _gelu_tanh(x: np.ndarray) -> np.ndarray:
    """tanh-approximated GELU — matches the hardware vector unit's LUT."""
    inner = x * x
    inner *= x
    inner *= 0.044715
    inner += x
    inner *= _SQRT_2_OVER_PI
    np.tanh(inner, out=inner)
    inner += 1.0
    inner *= x
    inner *= 0.5
    return inner


def gemm_sites(depth: int, attribute_names: List[str],
               with_task_head: bool = False) -> List[str]:
    """Names of every GEMM input site, in execution order."""
    sites = ["patch_proj"]
    for i in range(depth):
        sites += [f"block{i}.qkv", f"block{i}.proj", f"block{i}.fc1", f"block{i}.fc2"]
    sites.append("head")
    sites += [f"attr_head_{name}" for name in attribute_names]
    if with_task_head:
        sites += ["task_head.fc1", "task_head.fc2"]
    return sites


def _model_sites(model: VisionTransformer) -> List[str]:
    return gemm_sites(model.config.depth, model.attribute_names,
                      with_task_head=model.task_head is not None)


def _float_proj(linear: Linear) -> ProjFn:
    # Prepack the transposed weight contiguously once — calibration runs
    # many batches through every site, and a C-contiguous operand keeps
    # each GEMM on the fastest BLAS route.
    weight_t = np.ascontiguousarray(linear.weight.data.T)
    bias = None if linear.bias is None else linear.bias.data

    def apply(x: np.ndarray) -> np.ndarray:
        y = x @ weight_t
        return y if bias is None else y + bias

    return apply


def _traced_proj(site: str, kernel: ProjFn) -> ProjFn:
    """Wrap a projection so each call records a ``quant.forward.<site>``
    span (a child of whatever span the caller holds, e.g. the detect
    pipeline's ``detect.model_forward``)."""
    stage = f"quant.forward.{site}"

    def apply(x: np.ndarray) -> np.ndarray:
        with get_registry().time(stage):
            return kernel(x)

    return apply


def _vit_forward(
    model: VisionTransformer,
    images: np.ndarray,
    projections: Mapping[str, ProjFn],
    observers: Optional[Mapping[str, Observer]] = None,
) -> Dict[str, np.ndarray]:
    """Shared ViT inference over pluggable projection kernels."""
    cfg = model.config
    batch = images.shape[0]
    grid = cfg.image_size // cfg.patch_size

    def project(site: str, x: np.ndarray) -> np.ndarray:
        if observers is not None and site in observers:
            observers[site].observe(x)
        return projections[site](x)

    patches = images.reshape(
        batch, cfg.in_channels, grid, cfg.patch_size, grid, cfg.patch_size
    ).transpose(0, 2, 4, 1, 3, 5).reshape(batch, grid * grid, cfg.patch_dim)
    tokens = project("patch_proj", patches)

    x = np.empty((batch, cfg.num_tokens, cfg.dim), dtype=tokens.dtype)
    x[:, :1] = model.cls_token.data.reshape(1, 1, cfg.dim)
    x[:, 1:] = tokens
    x += model.pos_embed.data

    num_heads, head_dim = cfg.num_heads, cfg.dim // cfg.num_heads
    scale = 1.0 / np.sqrt(head_dim)
    seq = cfg.num_tokens

    for i, block in enumerate(model.encoder.blocks):
        normed = _layernorm(x, block.norm1.weight.data, block.norm1.bias.data)
        qkv = project(f"block{i}.qkv", normed)
        qkv = qkv.reshape(batch, seq, 3, num_heads, head_dim).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = q @ k.transpose(0, 1, 3, 2)
        scores *= scale
        attn = _softmax(scores)
        context = (attn @ v).transpose(0, 2, 1, 3).reshape(batch, seq, cfg.dim)
        x += project(f"block{i}.proj", context)

        normed = _layernorm(x, block.norm2.weight.data, block.norm2.bias.data)
        hidden = _gelu_tanh(project(f"block{i}.fc1", normed))
        x += project(f"block{i}.fc2", hidden)

    # Only the CLS token feeds the heads: normalize that row alone
    # (LayerNorm is row-wise, so this is bit-identical to normalizing
    # the full sequence and slicing afterwards).
    cls_embedding = _layernorm(x[:, 0], model.norm.weight.data,
                               model.norm.bias.data)
    out: Dict[str, np.ndarray] = {
        "class_logits": project("head", cls_embedding),
        "cls_embedding": cls_embedding,
    }
    out["attributes"] = {
        name: project(f"attr_head_{name}", cls_embedding)
        for name in model.attribute_names
    }
    if model.task_head is not None:
        hidden = _gelu_tanh(project("task_head.fc1", cls_embedding))
        out["task_logits"] = project("task_head.fc2", hidden)
    return out


def _site_linear(model: VisionTransformer, site: str) -> Linear:
    """Resolve a GEMM site name to the model's Linear layer."""
    if site == "patch_proj":
        return model.patch_embed.proj
    if site == "head":
        return model.head
    if site.startswith("task_head."):
        if model.task_head is None:
            raise KeyError("model has no task head")
        return getattr(model.task_head, site.split(".", 1)[1])
    if site.startswith("attr_head_"):
        return model._modules[site]
    block_name, layer = site.split(".")
    block = model.encoder._modules[block_name]
    if layer == "qkv":
        return block.attn.qkv
    if layer == "proj":
        return block.attn.proj
    if layer in ("fc1", "fc2"):
        return getattr(block.mlp, layer)
    raise KeyError(f"unknown GEMM site {site!r}")


def calibrate_observers(
    model: VisionTransformer,
    calibration_images: np.ndarray,
    act_spec: QuantSpec = QuantSpec(bits=8, symmetric=False),
    observer_kind: str = "minmax",
    batch_size: int = 64,
) -> Dict[str, QuantParams]:
    """Run float inference over the calibration set, observing every GEMM
    input, and return frozen activation quantization parameters."""
    sites = _model_sites(model)
    with get_registry().span(
        "quant.calibrate", sites=len(sites), observer=observer_kind,
        images=int(calibration_images.shape[0]),
    ):
        observers = {site: make_observer(observer_kind, act_spec) for site in sites}
        projections = {site: _float_proj(_site_linear(model, site)) for site in sites}
        for start in range(0, calibration_images.shape[0], batch_size):
            chunk = calibration_images[start:start + batch_size]
            _vit_forward(model, chunk, projections, observers)
        return {site: obs.compute() for site, obs in observers.items()}


@dataclasses.dataclass
class QuantizedVisionTransformer:
    """Inference-only quantized ViT (the paper's quantized configuration).

    The projection table handed to :func:`_vit_forward` is built once at
    construction (each site wrapped in a ``quant.forward.<site>`` span),
    not per forward — the integer kernels are frozen, so there is
    nothing to rebuild on the hot path.
    """

    model: VisionTransformer                 # float parameters for LN/pos/cls
    layers: Dict[str, QuantizedLinear]       # site -> integer kernel

    def __post_init__(self) -> None:
        self._projections: Dict[str, ProjFn] = {
            site: _traced_proj(site, layer)
            for site, layer in self.layers.items()
        }

    def forward(self, images: np.ndarray) -> Dict[str, np.ndarray]:
        images = np.asarray(images, np.float32)
        with get_registry().span("quant.forward", batch=int(images.shape[0])):
            return _vit_forward(self.model, images, self._projections)

    __call__ = forward

    def classify(self, images: np.ndarray) -> np.ndarray:
        return self.forward(images)["class_logits"].argmax(axis=-1)

    @property
    def config(self):
        return self.model.config

    @property
    def attribute_names(self) -> List[str]:
        return self.model.attribute_names

    def weight_bits(self) -> int:
        return next(iter(self.layers.values())).weight_bits

    def model_size_bytes(self) -> int:
        """Deployed parameter footprint: packed int weights + float aux.

        Sub-byte weights (2/4-bit) pack multiple codes per byte, so each
        layer contributes ``ceil(size · bits / 8)`` bytes — rounding up
        the trailing partial byte a real container would still ship.
        """
        total = 0
        for layer in self.layers.values():
            total += (layer.weight_q.size * layer.weight_bits + 7) // 8
            if layer.bias is not None:
                total += layer.bias.size * 4
        # LayerNorm / cls / pos parameters stay fp32 (they are tiny).
        quantized_names = {"weight", "bias"}
        for name, param in self.model.named_parameters():
            leaf = name.rsplit(".", 1)[-1]
            if leaf not in quantized_names or "norm" in name:
                total += param.size * 4
        return total


def quantize_vit(
    model: VisionTransformer,
    calibration_images: np.ndarray,
    weight_spec: QuantSpec = QuantSpec(bits=8, symmetric=True,
                                       per_channel=True, axis=0),
    act_spec: QuantSpec = QuantSpec(bits=8, symmetric=False),
    observer_kind: str = "minmax",
) -> QuantizedVisionTransformer:
    """Post-training quantization: calibrate, convert every GEMM."""
    act_params = calibrate_observers(
        model, np.asarray(calibration_images, np.float32),
        act_spec=act_spec, observer_kind=observer_kind,
    )
    sites = _model_sites(model)
    with get_registry().span("quant.convert", sites=len(sites),
                             weight_bits=weight_spec.bits):
        layers = {
            site: QuantizedLinear.from_linear(
                _site_linear(model, site), act_params[site], weight_spec,
            )
            for site in sites
        }
        for site, layer in layers.items():
            # Hidden-site outputs die inside one ``_vit_forward`` pass,
            # so those kernels may hand out reusable scratch buffers.
            # Head outputs are returned to the caller (and accumulated
            # across chunked forwards by the detect path) — they must
            # stay freshly allocated.
            layer.reuse_output = site.startswith(("patch_proj", "block"))
    return QuantizedVisionTransformer(model=model, layers=layers)
