"""Quantization parameter math.

Affine quantization: ``q = clip(round(x / scale) + zero_point, qmin, qmax)``
and ``x̂ = (q - zero_point) · scale``.  Symmetric quantization pins
``zero_point = 0`` and a symmetric range; per-channel quantization carries
one (scale, zero_point) pair per output channel along ``axis``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

import numpy as np


@dataclasses.dataclass(frozen=True)
class QuantSpec:
    """How to quantize: bit width, symmetry, granularity."""

    bits: int = 8
    symmetric: bool = True
    per_channel: bool = False
    axis: int = 0  # channel axis when per_channel

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 16:
            raise ValueError(f"bits must be in [2, 16], got {self.bits}")

    @property
    def qmin(self) -> int:
        if self.symmetric:
            return -(2 ** (self.bits - 1)) + 1  # symmetric: keep range balanced
        return 0

    @property
    def qmax(self) -> int:
        if self.symmetric:
            return 2 ** (self.bits - 1) - 1
        return 2 ** self.bits - 1

    @property
    def num_levels(self) -> int:
        return self.qmax - self.qmin

    def storage_dtype(self):
        """Smallest numpy integer dtype that holds the quantized values."""
        if self.bits <= 8:
            return np.int8 if self.symmetric else np.uint8
        return np.int16 if self.symmetric else np.uint16


@dataclasses.dataclass(frozen=True)
class QuantParams:
    """Computed (scale, zero_point) pair(s) for a given spec.

    ``scale``/``zero_point`` are scalars for per-tensor quantization and
    1-D arrays of length ``num_channels`` for per-channel.
    """

    spec: QuantSpec
    scale: np.ndarray       # float64, shape () or (C,)
    zero_point: np.ndarray  # int64, same shape as scale

    def __post_init__(self) -> None:
        scale = np.asarray(self.scale, dtype=np.float64)
        if (scale <= 0).any():
            raise ValueError("scales must be strictly positive")
        object.__setattr__(self, "scale", scale)
        object.__setattr__(
            self, "zero_point", np.asarray(self.zero_point, dtype=np.int64)
        )

    def _broadcast(self, array_ndim: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reshape scale/zp so they broadcast along ``spec.axis``."""
        if not self.spec.per_channel:
            return self.scale, self.zero_point
        shape = [1] * array_ndim
        shape[self.spec.axis] = -1
        return self.scale.reshape(shape), self.zero_point.reshape(shape)


def compute_qparams(
    min_val: Union[float, np.ndarray],
    max_val: Union[float, np.ndarray],
    spec: QuantSpec,
    eps: float = 1e-12,
) -> QuantParams:
    """Derive (scale, zero_point) from observed min/max statistics."""
    min_arr = np.minimum(np.asarray(min_val, dtype=np.float64), 0.0)
    max_arr = np.maximum(np.asarray(max_val, dtype=np.float64), 0.0)
    if spec.symmetric:
        bound = np.maximum(np.abs(min_arr), np.abs(max_arr))
        scale = np.maximum(bound / spec.qmax, eps)
        zero_point = np.zeros_like(scale, dtype=np.int64)
    else:
        span = np.maximum(max_arr - min_arr, eps)
        scale = span / (spec.qmax - spec.qmin)
        zero_point = np.clip(
            np.round(spec.qmin - min_arr / scale), spec.qmin, spec.qmax
        ).astype(np.int64)
    return QuantParams(spec=spec, scale=scale, zero_point=zero_point)


def quantize_array(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Real → integer codes (stored in the spec's storage dtype)."""
    spec = params.spec
    scale, zero_point = params._broadcast(np.ndim(x))
    q = np.round(np.asarray(x, dtype=np.float64) / scale) + zero_point
    q = np.clip(q, spec.qmin, spec.qmax)
    return q.astype(spec.storage_dtype())


def dequantize_array(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Integer codes → real approximation."""
    scale, zero_point = params._broadcast(np.ndim(q))
    return ((q.astype(np.int64) - zero_point) * scale).astype(np.float32)


def fake_quantize_array(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize–dequantize round trip (the PTQ/QAT simulation primitive)."""
    return dequantize_array(quantize_array(x, params), params)


def quantization_error(x: np.ndarray, params: QuantParams) -> float:
    """Mean squared reconstruction error of fake-quantizing ``x``."""
    return float(np.mean((x - fake_quantize_array(x, params)) ** 2))


def channel_minmax(x: np.ndarray, axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel min/max reducing over every axis except ``axis``."""
    reduce_axes = tuple(i for i in range(x.ndim) if i != axis)
    return x.min(axis=reduce_axes), x.max(axis=reduce_axes)
