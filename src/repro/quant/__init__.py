"""Quantization: the paper's *quantized configuration*.

Implements the full post-training-quantization (PTQ) stack plus
quantization-aware training (QAT) support:

* :mod:`repro.quant.qparams` — scale/zero-point math for arbitrary bit
  widths, symmetric/asymmetric, per-tensor/per-channel;
* :mod:`repro.quant.observers` — calibration statistics collectors
  (min-max, moving-average, percentile, MSE-optimal);
* :mod:`repro.quant.fake_quant` — straight-through-estimator fake
  quantization for QAT;
* :mod:`repro.quant.linear` — :class:`QuantizedLinear` with true integer
  matmul and requantization, the kernel the accelerator executes;
* :mod:`repro.quant.vit` — whole-model conversion:
  :class:`QuantizedVisionTransformer` (GEMMs in int, normalization and
  softmax in float, matching standard int8 ViT deployments).
"""

from repro.quant.qparams import (
    QuantSpec,
    QuantParams,
    quantize_array,
    dequantize_array,
    fake_quantize_array,
    compute_qparams,
)
from repro.quant.observers import (
    Observer,
    MinMaxObserver,
    MovingAverageObserver,
    PercentileObserver,
    MSEObserver,
)
from repro.quant.fake_quant import FakeQuantize, fake_quantize
from repro.quant.linear import QuantizedLinear
from repro.quant.vit import QuantizedVisionTransformer, quantize_vit, calibrate_observers
from repro.quant.qat import QATConfig, QATLinear, QATVisionTransformer, train_qat

__all__ = [
    "QuantSpec",
    "QuantParams",
    "quantize_array",
    "dequantize_array",
    "fake_quantize_array",
    "compute_qparams",
    "Observer",
    "MinMaxObserver",
    "MovingAverageObserver",
    "PercentileObserver",
    "MSEObserver",
    "FakeQuantize",
    "fake_quantize",
    "QuantizedLinear",
    "QuantizedVisionTransformer",
    "quantize_vit",
    "calibrate_observers",
    "QATConfig",
    "QATLinear",
    "QATVisionTransformer",
    "train_qat",
]
