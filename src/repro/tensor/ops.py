"""Functional operations on :class:`~repro.tensor.Tensor`.

Everything here is differentiable unless documented otherwise.  Operations
are written against the public ``Tensor.from_op`` / ``Tensor._send``
interface so the autograd tape stays in one place.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special as _special

from repro.tensor.tensor import (
    DEFAULT_DTYPE,
    Scalar,
    Tensor,
    TensorLike,
    _ensure_tensor,
    is_grad_enabled,
)

_SQRT_2 = float(np.sqrt(2.0))
_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


# ----------------------------------------------------------------------
# constructors (leaves)
# ----------------------------------------------------------------------
def zeros(*shape, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)


def ones(*shape, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)


def full(shape, fill_value: Scalar, dtype=DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=dtype), dtype=dtype)


def arange(*args, dtype=DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.arange(*args), dtype=dtype)


def randn(*shape, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
          requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """Standard-normal tensor; pass an explicit generator for reproducibility."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad, dtype=dtype)


def rand(*shape, rng: Optional[np.random.Generator] = None,
         requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.random(shape), requires_grad=requires_grad, dtype=dtype)


def one_hot(indices: np.ndarray, num_classes: int, dtype=DEFAULT_DTYPE) -> Tensor:
    """One-hot encode integer ``indices`` (not differentiable)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=dtype)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return Tensor(out, dtype=dtype)


def dropout_mask(shape, keep_prob: float, rng: Optional[np.random.Generator] = None,
                 dtype=DEFAULT_DTYPE) -> Tensor:
    """Inverted-dropout mask: Bernoulli(keep_prob)/keep_prob, not differentiable."""
    rng = rng or np.random.default_rng()
    mask = (rng.random(shape) < keep_prob).astype(dtype) / dtype(keep_prob)
    return Tensor(mask, dtype=dtype)


# ----------------------------------------------------------------------
# elementwise
# ----------------------------------------------------------------------
def exp(x: Tensor) -> Tensor:
    data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * data)

    out = Tensor.from_op(data, (x,), backward)
    return out


def log(x: Tensor) -> Tensor:
    data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad / x.data)

    out = Tensor.from_op(data, (x,), backward)
    return out


def sqrt(x: Tensor) -> Tensor:
    data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * 0.5 / data)

    out = Tensor.from_op(data, (x,), backward)
    return out


def tanh(x: Tensor) -> Tensor:
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * (1.0 - data * data))

    out = Tensor.from_op(data, (x,), backward)
    return out


def sigmoid(x: Tensor) -> Tensor:
    data = _special.expit(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * data * (1.0 - data))

    out = Tensor.from_op(data.astype(x.dtype, copy=False), (x,), backward)
    return out


def relu(x: Tensor) -> Tensor:
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * (x.data > 0.0))

    out = Tensor.from_op(data, (x,), backward)
    return out


def erf(x: Tensor) -> Tensor:
    data = _special.erf(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * (2.0 / np.sqrt(np.pi)) * np.exp(-x.data ** 2))

    out = Tensor.from_op(data.astype(x.dtype, copy=False), (x,), backward)
    return out


def gelu(x: Tensor, approximate: bool = False) -> Tensor:
    """Gaussian Error Linear Unit.

    ``approximate=True`` uses the tanh approximation, which is what the
    hardware vector unit implements (see :mod:`repro.hw.vector_unit`);
    the exact erf form is the training default.
    """
    if approximate:
        data_x = x.data
        inner = _SQRT_2_OVER_PI * (data_x + 0.044715 * data_x ** 3)
        t = np.tanh(inner)
        data = 0.5 * data_x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            dinner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x.data ** 2)
            dt = (1.0 - t * t) * dinner
            out._send(x, grad * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

        out = Tensor.from_op(data.astype(x.dtype, copy=False), (x,), backward)
        return out

    if not is_grad_enabled():
        # Inference fast path: one temporary instead of four.  Same
        # elementwise operations in the same order — bit-identical.
        buf = x.data / _SQRT_2
        _special.erf(buf, out=buf)
        buf += 1.0
        buf *= 0.5
        buf *= x.data
        return Tensor(buf.astype(x.dtype, copy=False), dtype=x.dtype)

    cdf = 0.5 * (1.0 + _special.erf(x.data / _SQRT_2))
    data = x.data * cdf

    def backward(grad: np.ndarray) -> None:
        pdf = np.exp(-0.5 * x.data ** 2) / np.sqrt(2.0 * np.pi)
        out._send(x, grad * (cdf + x.data * pdf))

    out = Tensor.from_op(data.astype(x.dtype, copy=False), (x,), backward)
    return out


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through inside the interval."""
    data = np.clip(x.data, low, high)

    def backward(grad: np.ndarray) -> None:
        inside = (x.data >= low) & (x.data <= high)
        out._send(x, grad * inside)

    out = Tensor.from_op(data, (x,), backward)
    return out


def where(condition: Union[np.ndarray, Tensor], a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise select; ``condition`` is treated as constant."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a_t = _ensure_tensor(a)
    b_t = _ensure_tensor(b)
    data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        from repro.tensor.tensor import _unbroadcast

        out._send(a_t, _unbroadcast(grad * cond, a_t.shape))
        out._send(b_t, _unbroadcast(grad * ~cond, b_t.shape))

    out = Tensor.from_op(data.astype(a_t.dtype, copy=False), (a_t, b_t), backward)
    return out


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    a_t = _ensure_tensor(a)
    b_t = _ensure_tensor(b)
    return where(a_t.data >= b_t.data, a_t, b_t)


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    a_t = _ensure_tensor(a)
    b_t = _ensure_tensor(b)
    return where(a_t.data <= b_t.data, a_t, b_t)


# ----------------------------------------------------------------------
# normalizing ops
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    if not is_grad_enabled():
        # Inference fast path: exp and divide run in place on the shifted
        # copy — bit-identical to the out-of-place form below.
        buf = x.data - x.data.max(axis=axis, keepdims=True)
        np.exp(buf, out=buf)
        buf /= buf.sum(axis=axis, keepdims=True)
        return Tensor(buf.astype(x.dtype, copy=False), dtype=x.dtype)

    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp_x = np.exp(shifted)
    data = exp_x / exp_x.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * data).sum(axis=axis, keepdims=True)
        out._send(x, data * (grad - dot))

    out = Tensor.from_op(data.astype(x.dtype, copy=False), (x,), backward)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_sum
    soft = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad - soft * grad.sum(axis=axis, keepdims=True))

    out = Tensor.from_op(data.astype(x.dtype, copy=False), (x,), backward)
    return out


# ----------------------------------------------------------------------
# joining
# ----------------------------------------------------------------------
def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [(_ensure_tensor(t)) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            out._send(t, grad[tuple(index)])

    out = Tensor.from_op(data, tuple(tensors), backward)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [(_ensure_tensor(t)) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for t, part in zip(tensors, parts):
            out._send(t, np.squeeze(part, axis=axis))

    out = Tensor.from_op(data, tuple(tensors), backward)
    return out


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` (vocab, dim) at integer ``indices``."""
    idx = np.asarray(indices, dtype=np.int64)
    data = table.data[idx]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(table.data)
        np.add.at(full, idx, grad)
        out._send(table, full)

    out = Tensor.from_op(data, (table,), backward)
    return out
