"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The implementation follows the classic tape-based design: every operation
that produces a new :class:`Tensor` stores its parents and a closure that
propagates the output gradient to the parents.  ``backward()`` performs a
depth-first topological sort and runs the closures in reverse order.

Broadcasting is fully supported; gradients flowing into a broadcast operand
are reduced back to the operand's shape by :func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32

Scalar = Union[int, float, np.integer, np.floating]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Inside the block every produced :class:`Tensor` has
    ``requires_grad=False`` and no graph edges are created.  Used for
    inference, calibration, and parameter updates.
    """
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    numpy broadcasting aligns shapes from the right; any leading axes added
    by broadcasting are summed away, and any axis of size one that was
    stretched is summed with ``keepdims``.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: TensorLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed array participating in automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Stored as ``float32`` unless an
        explicit dtype is given.
    requires_grad:
        Whether this tensor is a leaf whose gradient should be accumulated.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_accumulate_target",
    )

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        dtype=DEFAULT_DTYPE,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a non-leaf tensor produced by an operation.

        When gradients are disabled, or no parent requires a gradient, the
        result is detached and ``backward`` is dropped, keeping inference
        allocation-light.
        """
        parents = tuple(parents)
        needs_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad, dtype=data.dtype)
        if needs_grad:
            out._parents = parents
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Incoming gradient.  Defaults to ones, which is the usual choice
            for scalar losses.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad.
                if node.requires_grad:
                    if node.grad is None:
                        node.grad = node_grad.astype(node.data.dtype, copy=True)
                    else:
                        node.grad = node.grad + node_grad
                continue
            # Interior node: route gradient to parents via the closure.
            # The closure writes into a per-call accumulation dict through
            # the `accumulate` helper captured below.
            node._accumulate_target = grads  # type: ignore[attr-defined]
            try:
                node._backward(node_grad)
            finally:
                del node._accumulate_target  # type: ignore[attr-defined]
            if node.requires_grad and node is not self and node.grad is not None:
                pass

    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Accumulate ``grad`` for ``parent`` during an active backward pass."""
        if not parent.requires_grad and parent._backward is None:
            return
        target = getattr(self, "_accumulate_target", None)
        if target is None:  # pragma: no cover - defensive
            raise RuntimeError("_send called outside backward()")
        key = id(parent)
        if key in target:
            target[key] = target[key] + grad
        else:
            target[key] = grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))
        data = self.data + other_t.data

        def backward(grad: np.ndarray, self_=self, other_=other_t) -> None:
            out._send(self_, _unbroadcast(grad, self_.shape))
            out._send(other_, _unbroadcast(grad, other_.shape))

        out = Tensor.from_op(data, (self, other_t), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            out._send(self, -grad)

        out = Tensor.from_op(data, (self,), backward)
        return out

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-_ensure_tensor(other, self.dtype))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return _ensure_tensor(other, self.dtype) + (-self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other_t = _ensure_tensor(other, self.dtype)
        data = self.data * other_t.data

        def backward(grad: np.ndarray, self_=self, other_=other_t) -> None:
            out._send(self_, _unbroadcast(grad * other_.data, self_.shape))
            out._send(other_, _unbroadcast(grad * self_.data, other_.shape))

        out = Tensor.from_op(data, (self, other_t), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other_t = _ensure_tensor(other, self.dtype)
        data = self.data / other_t.data

        def backward(grad: np.ndarray, self_=self, other_=other_t) -> None:
            out._send(self_, _unbroadcast(grad / other_.data, self_.shape))
            out._send(
                other_,
                _unbroadcast(-grad * self_.data / (other_.data ** 2), other_.shape),
            )

        out = Tensor.from_op(data, (self, other_t), backward)
        return out

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return _ensure_tensor(other, self.dtype) / self

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            out._send(self, grad * exponent * self.data ** (exponent - 1))

        out = Tensor.from_op(data, (self,), backward)
        return out

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other_t = _ensure_tensor(other, self.dtype)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray, a=self, b=other_t) -> None:
            a_data, b_data = a.data, b.data
            if a_data.ndim == 1 and b_data.ndim == 1:
                out._send(a, grad * b_data)
                out._send(b, grad * a_data)
                return
            if a_data.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (grad[..., None, :] * b_data).sum(axis=-1)
                out._send(a, _unbroadcast(grad_a, a.shape))
                grad_b = a_data[:, None] * grad[..., None, :]
                out._send(b, _unbroadcast(grad_b, b.shape))
                return
            if b_data.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = grad[..., :, None] * b_data
                out._send(a, _unbroadcast(grad_a, a.shape))
                grad_b = (grad[..., :, None] * a_data).sum(axis=tuple(range(grad.ndim)))
                out._send(b, _unbroadcast(grad_b.reshape(b.shape), b.shape))
                return
            grad_a = grad @ np.swapaxes(b_data, -1, -2)
            grad_b = np.swapaxes(a_data, -1, -2) @ grad
            out._send(a, _unbroadcast(grad_a, a.shape))
            out._send(b, _unbroadcast(grad_b, b.shape))

        out = Tensor.from_op(data, (self, other_t), backward)
        return out

    def __rmatmul__(self, other: TensorLike) -> "Tensor":
        return _ensure_tensor(other, self.dtype) @ self

    # comparisons produce detached boolean/float arrays (no gradient)
    def __gt__(self, other: TensorLike) -> np.ndarray:
        return self.data > _as_array(other, self.dtype)

    def __lt__(self, other: TensorLike) -> np.ndarray:
        return self.data < _as_array(other, self.dtype)

    def __ge__(self, other: TensorLike) -> np.ndarray:
        return self.data >= _as_array(other, self.dtype)

    def __le__(self, other: TensorLike) -> np.ndarray:
        return self.data <= _as_array(other, self.dtype)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            out._send(self, grad.reshape(self.shape))

        out = Tensor.from_op(data, (self,), backward)
        return out

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        if self.ndim < 2:
            return self.reshape(self.shape)
        data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            out._send(self, np.swapaxes(grad, axis1, axis2))

        out = Tensor.from_op(data, (self,), backward)
        return out

    def permute(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = np.transpose(self.data, axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            out._send(self, np.transpose(grad, inverse))

        out = Tensor.from_op(data, (self,), backward)
        return out

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        index_parts = index if isinstance(index, tuple) else (index,)
        basic = all(
            isinstance(part, (int, np.integer, slice, type(None), type(Ellipsis)))
            for part in index_parts
        )

        def backward(grad: np.ndarray) -> None:
            full_grad = np.zeros_like(self.data)
            if basic:
                # Basic indexing never selects an element twice, so plain
                # assignment is safe and much faster than np.add.at.
                full_grad[index] = grad
            else:
                np.add.at(full_grad, index, grad)
            out._send(self, full_grad)

        out = Tensor.from_op(np.ascontiguousarray(data), (self,), backward)
        return out

    def pad2d(self, pad: Tuple[int, int, int, int]) -> "Tensor":
        """Zero-pad the last two axes by ``(top, bottom, left, right)``."""
        top, bottom, left, right = pad
        width = [(0, 0)] * (self.ndim - 2) + [(top, bottom), (left, right)]
        data = np.pad(self.data, width)

        def backward(grad: np.ndarray) -> None:
            slices = [slice(None)] * (self.ndim - 2)
            slices.append(slice(top, grad.shape[-2] - bottom or None))
            slices.append(slice(left, grad.shape[-1] - right or None))
            out._send(self, grad[tuple(slices)])

        out = Tensor.from_op(data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            out._send(self, np.broadcast_to(g, self.shape).astype(self.dtype))

        out = Tensor.from_op(np.asarray(data), (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            out._send(self, mask * g)

        out = Tensor.from_op(np.asarray(data), (self,), backward)
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            out._send(self, grad * np.sign(self.data))

        out = Tensor.from_op(data, (self,), backward)
        return out


def _ensure_tensor(value: TensorLike, dtype=DEFAULT_DTYPE) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


def tensor(data: TensorLike, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)
