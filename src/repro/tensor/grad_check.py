"""Finite-difference gradient verification.

Used heavily by the test suite: every differentiable op in
:mod:`repro.tensor` and every layer in :mod:`repro.nn` is validated against
a central-difference approximation.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    ``fn`` must be deterministic; inputs are perturbed in float64 for
    stability and restored afterwards.
    """
    target = inputs[wrt]
    original = target.data.astype(np.float64).copy()
    grad = np.zeros_like(original)
    flat = original.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        saved = flat[i]
        flat[i] = saved + eps
        target.data = original.reshape(target.shape).astype(target.dtype)
        plus = float(fn(*inputs).data.sum())
        flat[i] = saved - eps
        target.data = original.reshape(target.shape).astype(target.dtype)
        minus = float(fn(*inputs).data.sum())
        flat[i] = saved
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    target.data = original.reshape(target.shape).astype(target.dtype)
    return grad


def check_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-4,
    atol: float = 1e-2,
    rtol: float = 1e-2,
) -> Tuple[bool, float]:
    """Compare autograd and numeric gradients.

    Returns ``(ok, max_abs_error)``.  Tolerances are loose because the
    engine computes in float32.
    """
    for t in inputs:
        t.grad = None
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    analytic = inputs[wrt].grad
    if analytic is None:
        raise AssertionError("autograd produced no gradient for the requested input")
    numeric = numeric_gradient(fn, inputs, wrt=wrt, eps=eps)
    err = np.abs(analytic.astype(np.float64) - numeric)
    tol = atol + rtol * np.abs(numeric)
    ok = bool((err <= tol).all())
    return ok, float(err.max(initial=0.0))
