"""Reverse-mode automatic differentiation on top of numpy.

This subpackage is the numerical substrate for the whole reproduction: the
vision transformer, the distillation losses, and quantization-aware training
are all expressed through :class:`~repro.tensor.Tensor`.

The engine is deliberately small and explicit: a :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological order
and accumulates gradients.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.tensor import ops
from repro.tensor.ops import (
    cat,
    stack,
    where,
    maximum,
    minimum,
    exp,
    log,
    sqrt,
    tanh,
    sigmoid,
    relu,
    gelu,
    erf,
    softmax,
    log_softmax,
    clip,
    one_hot,
    zeros,
    ones,
    full,
    arange,
    randn,
    rand,
    dropout_mask,
)
from repro.tensor.grad_check import check_gradient, numeric_gradient

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "cat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "gelu",
    "erf",
    "softmax",
    "log_softmax",
    "clip",
    "one_hot",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "dropout_mask",
    "check_gradient",
    "numeric_gradient",
]
