"""CLIP-style two-tower vision-language model."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.nn import Embedding, LayerNorm, Linear, TransformerEncoder, VisionTransformer, ViTConfig
from repro.nn import init as nn_init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, no_grad, sqrt
from repro.vlm.tokenizer import Tokenizer


@dataclasses.dataclass(frozen=True)
class VLMConfig:
    """Two-tower hyper-parameters.

    The image tower is deliberately *larger* than the iTask student —
    matching the paper's framing that VLMs are the heavyweight option.
    """

    joint_dim: int = 64
    # text tower
    text_dim: int = 64
    text_depth: int = 2
    text_heads: int = 4
    max_length: int = 40
    # image tower (ViT backbone)
    image_dim: int = 96
    image_depth: int = 4
    image_heads: int = 6
    image_size: int = 32
    patch_size: int = 8

    def image_vit_config(self) -> ViTConfig:
        return ViTConfig(
            image_size=self.image_size, patch_size=self.patch_size,
            dim=self.image_dim, depth=self.image_depth,
            num_heads=self.image_heads, mlp_ratio=3.0,
            num_classes=2,  # unused head; the backbone embedding is what matters
        )


def _l2_normalize(x: Tensor, eps: float = 1e-8) -> Tensor:
    norm = sqrt((x * x).sum(axis=-1, keepdims=True) + eps)
    return x / norm


class TextEncoder(Module):
    """Token embedding + positional embedding + transformer + mean pool."""

    def __init__(self, vocab_size: int, config: VLMConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.token_embed = Embedding(vocab_size, config.text_dim, rng=rng)
        self.pos_embed = Parameter(
            nn_init.truncated_normal((1, config.max_length, config.text_dim), rng)
        )
        self.encoder = TransformerEncoder(
            depth=config.text_depth, dim=config.text_dim,
            num_heads=config.text_heads, mlp_ratio=2.0, rng=rng,
        )
        self.norm = LayerNorm(config.text_dim)
        self.proj = Linear(config.text_dim, config.joint_dim, rng=rng)
        self.pad_id: int = 0

    def forward(self, token_ids: np.ndarray) -> Tensor:
        mask = (np.asarray(token_ids) != self.pad_id).astype(np.float32)
        x = self.token_embed(token_ids) + self.pos_embed
        x = self.encoder(x)
        x = self.norm(x)
        # masked mean pool over non-pad tokens
        mask_t = Tensor(mask[..., None])
        pooled = (x * mask_t).sum(axis=1) / Tensor(
            np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        return self.proj(pooled)


class ImageEncoder(Module):
    """ViT backbone + projection into the joint space."""

    def __init__(self, config: VLMConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.backbone = VisionTransformer(config.image_vit_config(), rng=rng)
        self.proj = Linear(config.image_dim, config.joint_dim, rng=rng)

    def forward(self, images: Tensor) -> Tensor:
        return self.proj(self.backbone.embed(images))


class TwoTowerVLM(Module):
    """The full contrastive model."""

    def __init__(self, tokenizer: Tokenizer, config: VLMConfig = VLMConfig(),
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.tokenizer = tokenizer
        self.text_encoder = TextEncoder(tokenizer.vocab_size, config, rng=rng)
        self.text_encoder.pad_id = tokenizer.pad_id
        self.image_encoder = ImageEncoder(config, rng=rng)
        # learnable inverse temperature, initialized at 1/0.07 (CLIP)
        self.logit_scale = Parameter(np.array([np.log(1.0 / 0.07)], np.float32))

    # ------------------------------------------------------------------
    def encode_images(self, images: Tensor) -> Tensor:
        return _l2_normalize(self.image_encoder(images))

    def encode_texts(self, token_ids: np.ndarray) -> Tensor:
        return _l2_normalize(self.text_encoder(token_ids))

    def similarity_logits(self, images: Tensor,
                          token_ids: np.ndarray) -> Tensor:
        """(B_img, B_txt) scaled cosine similarities."""
        from repro.tensor import exp

        image_emb = self.encode_images(images)
        text_emb = self.encode_texts(token_ids)
        scale = exp(self.logit_scale)
        return (image_emb @ text_emb.T) * scale

    # ------------------------------------------------------------------
    # zero-shot task scoring
    # ------------------------------------------------------------------
    def mission_embedding(self, mission_text: str) -> np.ndarray:
        with no_grad():
            emb = self.encode_texts(self.tokenizer.encode_batch([mission_text]))
        return emb.data[0]

    def score_windows(self, windows: np.ndarray, mission_text: str,
                      batch_size: int = 64) -> np.ndarray:
        """Cosine similarity of each window to the mission, in [-1, 1]."""
        text_emb = self.mission_embedding(mission_text)
        scores = []
        with no_grad():
            for start in range(0, windows.shape[0], batch_size):
                chunk = Tensor(np.asarray(windows[start:start + batch_size],
                                          np.float32))
                image_emb = self.encode_images(chunk).data
                scores.append(image_emb @ text_emb)
        return np.concatenate(scores)

    def flops_per_query(self) -> int:
        """MACs for scoring one window against a cached mission embedding."""
        cfg = self.config
        backbone = self.image_encoder.backbone.flops_per_image()
        return backbone + cfg.image_dim * cfg.joint_dim + cfg.joint_dim
