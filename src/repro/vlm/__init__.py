"""Vision-language baseline: what iTask replaces.

The paper motivates iTask as an efficient alternative to vision-language
models for task-oriented detection.  This package implements that
comparator: a compact CLIP-style two-tower model — a transformer text
encoder over mission descriptions and a ViT image encoder over windows,
trained contrastively so that a window embeds close to the text of every
mission it is relevant to.  Zero-shot task detection is then cosine
similarity between the mission embedding and each window embedding.

The E9 benchmark compares this baseline against the iTask pipeline on
both accuracy (including unseen missions) and compute cost (FLOPs,
modelled edge latency) — the trade-off the paper's introduction argues.
"""

from repro.vlm.tokenizer import Tokenizer
from repro.vlm.model import TwoTowerVLM, VLMConfig
from repro.vlm.trainer import VLMTrainer, VLMTrainingConfig, build_vlm_pairs

__all__ = [
    "Tokenizer",
    "TwoTowerVLM",
    "VLMConfig",
    "VLMTrainer",
    "VLMTrainingConfig",
    "build_vlm_pairs",
]
