"""Word-level tokenizer for mission descriptions.

The vocabulary is built from a text corpus (the mission library plus the
attribute ontology, by default) with special tokens for padding and
unknown words.  Deliberately simple — the point of the VLM baseline is
its architecture and cost, not subword engineering.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.ontology import ATTRIBUTE_FAMILIES
from repro.data.tasks import TASK_LIBRARY

PAD = "<pad>"
UNK = "<unk>"


def _words(text: str) -> List[str]:
    return re.findall(r"[a-z]+", text.lower())


class Tokenizer:
    """Fixed-vocabulary word tokenizer with padding/truncation."""

    def __init__(self, corpus: Optional[Iterable[str]] = None,
                 max_length: int = 40) -> None:
        if corpus is None:
            corpus = [task.mission_text for task in TASK_LIBRARY.values()]
            corpus += [" ".join(values) for values in ATTRIBUTE_FAMILIES.values()]
        vocab: Dict[str, int] = {PAD: 0, UNK: 1}
        for text in corpus:
            for word in _words(text):
                if word not in vocab:
                    vocab[word] = len(vocab)
        self.vocab = vocab
        self.max_length = max_length

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    @property
    def pad_id(self) -> int:
        return self.vocab[PAD]

    def encode(self, text: str) -> np.ndarray:
        """Tokenize to a fixed-length id array (padded/truncated)."""
        ids = [self.vocab.get(word, self.vocab[UNK]) for word in _words(text)]
        ids = ids[: self.max_length]
        ids += [self.pad_id] * (self.max_length - len(ids))
        return np.asarray(ids, dtype=np.int64)

    def encode_batch(self, texts: Sequence[str]) -> np.ndarray:
        return np.stack([self.encode(t) for t in texts])
