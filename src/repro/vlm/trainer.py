"""Contrastive training of the two-tower VLM.

Training pairs: (window, mission text) where the window's object
satisfies the mission's predicate.  A batch holds one window per distinct
mission (so the in-batch negatives are other missions' texts), and the
symmetric InfoNCE objective pulls matched pairs together — exactly the
CLIP recipe at miniature scale.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data import build_task_windows
from repro.data.tasks import TASK_LIBRARY, TaskDefinition
from repro.nn import cross_entropy
from repro.optim import AdamW, WarmupCosineSchedule, clip_grad_norm
from repro.tensor import Tensor
from repro.vlm.model import TwoTowerVLM


@dataclasses.dataclass
class VLMTrainingConfig:
    steps: int = 400
    batch_tasks: int = 6          # distinct missions per batch
    learning_rate: float = 1e-3
    weight_decay: float = 0.01
    warmup_fraction: float = 0.1
    grad_clip: float = 1.0
    seed: int = 0


def build_vlm_pairs(
    tasks: Sequence[TaskDefinition],
    seed: int = 0,
    positives_per_task: int = 120,
) -> Dict[str, np.ndarray]:
    """Positive window pools per mission (images only)."""
    pools: Dict[str, np.ndarray] = {}
    for i, task in enumerate(tasks):
        dataset = build_task_windows(task, seed=seed + i,
                                     num_positive=positives_per_task,
                                     num_negative=positives_per_task // 4)
        positives = dataset.images[dataset.task_labels > 0.5]
        pools[task.name] = positives
    return pools


class VLMTrainer:
    """InfoNCE training loop."""

    def __init__(self, model: TwoTowerVLM, tasks: Sequence[TaskDefinition],
                 config: VLMTrainingConfig = VLMTrainingConfig()) -> None:
        if len(tasks) < 2:
            raise ValueError("contrastive training needs at least two missions")
        self.model = model
        self.tasks = list(tasks)
        self.config = config
        self.history: List[float] = []
        self._pools = build_vlm_pairs(self.tasks, seed=config.seed)
        self._texts = {task.name: task.mission_text for task in self.tasks}

    def _sample_batch(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        count = min(self.config.batch_tasks, len(self.tasks))
        chosen = rng.choice(len(self.tasks), size=count, replace=False)
        images, texts = [], []
        for idx in chosen:
            task = self.tasks[int(idx)]
            pool = self._pools[task.name]
            images.append(pool[int(rng.integers(len(pool)))])
            texts.append(self._texts[task.name])
        token_ids = self.model.tokenizer.encode_batch(texts)
        return np.stack(images), token_ids

    def train(self) -> List[float]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = AdamW(self.model.parameters(), lr=cfg.learning_rate,
                          weight_decay=cfg.weight_decay)
        schedule = WarmupCosineSchedule(
            cfg.learning_rate, cfg.steps,
            warmup_steps=int(cfg.steps * cfg.warmup_fraction))
        self.model.train()
        for step in range(cfg.steps):
            schedule.apply(optimizer, step)
            images, token_ids = self._sample_batch(rng)
            logits = self.model.similarity_logits(Tensor(images), token_ids)
            targets = np.arange(logits.shape[0])
            loss = (cross_entropy(logits, targets)
                    + cross_entropy(logits.T, targets)) * 0.5
            self.model.zero_grad()
            loss.backward()
            if cfg.grad_clip > 0:
                clip_grad_norm(self.model.parameters(), cfg.grad_clip)
            optimizer.step()
            self.history.append(loss.item())
        self.model.eval()
        return self.history
