"""Window scanning and task-conditioned detection.

Both model configurations plug in through one adapter,
:func:`predict_windows`, which normalizes the float ViT
(:class:`repro.nn.VisionTransformer`) and the integer one
(:class:`repro.quant.QuantizedVisionTransformer`) to the same output
contract: softmaxed class probabilities and per-family attribute
distributions as plain numpy arrays.

:class:`TaskDetector` then scans a scene's windows, computes

    score(window) = P(object) · kg_match(attribute distributions)

and emits :class:`Detection` records above threshold, after NMS.

The quantized configuration's forwards run on the exact BLAS-backed
integer kernels (:class:`~repro.quant.QuantizedLinear`): bit-identical
to the int64 reference arithmetic, and exactly batch-invariant — so
fused multi-scene forwards through :meth:`TaskDetector.detect_batch`
reproduce per-scene results bit for bit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.datasets import background_class_id
from repro.data.scenes import Scene
from repro.detect.boxes import nms, nms_reference
from repro.kg.matcher import GraphMatcher
from repro.nn import VisionTransformer
from repro.obs import get_registry
from repro.obs.context import current_context
from repro.quant.vit import QuantizedVisionTransformer
from repro.tensor import Tensor, no_grad

ModelLike = Union[VisionTransformer, QuantizedVisionTransformer]


def _attr_deadline(span) -> None:
    """Stamp the request's remaining deadline budget onto a span.

    A detect running under a deadline-bearing request context records
    how much budget was left when inference *started*, so traces show
    whether a deadline miss was spent queueing or computing.
    """
    ctx = current_context()
    if ctx is not None and ctx.deadline_s is not None:
        span.set_attr(deadline_remaining_s=round(ctx.remaining_s(), 6))

# Fused multi-scene forwards run bigger chunks than single-scene detect:
# per-chunk Python/dispatch overhead amortizes across the whole batch.
# 256 is the measured sweet spot for the student ViT on one CPU core;
# much larger chunks start thrashing cache in the attention GEMMs.
_BATCH_FORWARD_CHUNK = 256


def _softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def _empty_predictions(model: ModelLike) -> Dict[str, np.ndarray]:
    """Well-formed zero-row outputs matching the model's head shapes."""
    cfg = model.config
    result: Dict[str, np.ndarray] = {
        "class_probs": np.zeros((0, cfg.num_classes), dtype=np.float32),
        "attribute_probs": {
            family: np.zeros((0, cardinality), dtype=np.float32)
            for family, cardinality in cfg.attribute_heads
        },
    }
    if cfg.with_task_head:
        result["task_probs"] = np.zeros(0, dtype=np.float32)
    return result


def predict_windows(model: ModelLike, windows: np.ndarray,
                    batch_size: int = 64) -> Dict[str, np.ndarray]:
    """Run a model configuration over ``(N, 3, S, S)`` windows.

    Returns ``{"class_probs": (N, C), "attribute_probs": {family: (N, V)}}``.
    An empty batch (``N == 0``) yields zero-row arrays of the right widths
    instead of crashing on an empty concatenate.
    """
    if windows.shape[0] == 0:
        return _empty_predictions(model)
    obs = get_registry()
    obs.count("detect.windows_scored", windows.shape[0])
    class_chunks: List[np.ndarray] = []
    attr_chunks: Dict[str, List[np.ndarray]] = {}
    task_chunks: List[np.ndarray] = []
    for start in range(0, windows.shape[0], batch_size):
        chunk = np.asarray(windows[start:start + batch_size], dtype=np.float32)
        with obs.time("detect.model_forward"):
            if isinstance(model, QuantizedVisionTransformer):
                out = model(chunk)
                class_logits = out["class_logits"]
                attrs = out["attributes"]
                task_logits = out.get("task_logits")
            else:
                with no_grad():
                    out = model(Tensor(chunk))
                class_logits = out["class_logits"].data
                attrs = {k: v.data for k, v in out["attributes"].items()}
                task_logits = out["task_logits"].data if "task_logits" in out else None
        class_chunks.append(_softmax_np(class_logits))
        for family, logits in attrs.items():
            attr_chunks.setdefault(family, []).append(_softmax_np(logits))
        if task_logits is not None:
            task_chunks.append(_softmax_np(task_logits))
    result: Dict[str, np.ndarray] = {
        "class_probs": np.concatenate(class_chunks, axis=0),
        "attribute_probs": {
            family: np.concatenate(parts, axis=0)
            for family, parts in attr_chunks.items()
        },
    }
    if task_chunks:
        # probability the window is relevant to the specialist's task
        result["task_probs"] = np.concatenate(task_chunks, axis=0)[:, 1]
    return result


def score_predictions(
    predictions: Dict[str, np.ndarray],
    matcher: Optional[GraphMatcher] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Turn :func:`predict_windows` output into per-window scores.

    Returns ``(objectness, task_scores, combined)``.  The task score
    comes from the specialist's distilled task head when present,
    otherwise from the knowledge-graph matcher; with neither, detection
    degrades to plain objectness (the data-only baseline).  This is the
    single scoring rule shared by :class:`TaskDetector` and the
    streaming tracker.
    """
    objectness = 1.0 - predictions["class_probs"][:, background_class_id()]
    if "task_probs" in predictions:
        # Task-specific configuration: the distilled task head IS the
        # knowledge graph's decision, baked into the specialist.
        task_scores = predictions["task_probs"]
    elif matcher is not None:
        task_scores = matcher.match_distributions(
            predictions["attribute_probs"]).score
    else:
        task_scores = np.ones_like(objectness)
    return objectness, task_scores, objectness * task_scores


def score_windows(model: ModelLike, windows: np.ndarray,
                  matcher: Optional[GraphMatcher] = None,
                  batch_size: int = 64) -> np.ndarray:
    """Combined per-window scores in one call (the streaming reuse hook).

    :func:`predict_windows` + :func:`score_predictions` fused for callers
    that only need the combined score vector — notably the delta-gated
    streaming tier, which forwards just the windows whose pixels changed
    and splices cached scores in for the rest.  Scores are a pure
    function of ``(window pixels, matcher state)``, which is what makes
    that cache-and-splice exact.
    """
    predictions = predict_windows(model, windows, batch_size=batch_size)
    _, _, combined = score_predictions(predictions, matcher)
    return combined


def confidence_margin(combined: np.ndarray, score_threshold: float) -> float:
    """Distance of the closest window score to the decision threshold.

    The margin is the per-scene confidence signal the cascade router
    keys on: a small margin means at least one window sat right at the
    emit/suppress boundary, where the quantized configuration and the
    task-specific specialist are most likely to disagree.  A scene with
    no windows has nothing near the boundary and scores ``inf``
    (maximally confident).  Pure function of one scene's combined
    scores, so it is identical across :meth:`TaskDetector.detect`,
    :meth:`TaskDetector.detect_batch`, and the serving engine.
    """
    if combined.size == 0:
        return float("inf")
    return float(np.abs(combined - score_threshold).min())


@dataclasses.dataclass(frozen=True)
class SceneSignals:
    """Per-scene confidence signals emitted alongside detections.

    ``margin`` is :func:`confidence_margin`; ``max_combined`` is the best
    window's combined score (0.0 for a windowless scene).  Both are
    computed from the same scored windows the emitted detections came
    from — no extra forward pass.
    """

    margin: float
    max_combined: float
    num_windows: int
    num_detections: int


@dataclasses.dataclass
class Detection:
    """One task-relevant detection in a scene."""

    bbox: Tuple[int, int, int, int]
    score: float
    objectness: float
    task_score: float
    class_id: int
    attribute_probs: Dict[str, np.ndarray]

    def __repr__(self) -> str:
        return (
            f"Detection(bbox={self.bbox}, score={self.score:.3f}, "
            f"class={self.class_id})"
        )


class TaskDetector:
    """Task-oriented detector: model configuration + KG matcher.

    Parameters
    ----------
    model:
        Either model configuration (float distilled ViT or quantized ViT).
    matcher:
        Knowledge-graph matcher for the active task; ``None`` degrades to
        plain object detection (objectness only) — the data-only baseline.
    score_threshold:
        Minimum combined score to emit a detection.
    nms_iou:
        IoU threshold for the final NMS pass (grid windows never overlap,
        but sliding-window mode produces duplicates).
    vectorized:
        When True (default), window extraction uses a batched
        stride-tricks gather and NMS the batched-IoU implementation.
        When False, both fall back to the readable per-cell / O(N²)
        reference loops — the seed implementation, kept as an oracle for
        tests and as the baseline in ``bench_e10_pipeline_latency``.
    """

    def __init__(
        self,
        model: ModelLike,
        matcher: Optional[GraphMatcher] = None,
        score_threshold: float = 0.35,
        nms_iou: float = 0.5,
        batch_size: int = 64,
        vectorized: bool = True,
    ) -> None:
        if not 0.0 <= score_threshold <= 1.0:
            raise ValueError("score_threshold must be in [0, 1]")
        self.model = model
        self.matcher = matcher
        self.score_threshold = score_threshold
        self.nms_iou = nms_iou
        self.batch_size = batch_size
        self.vectorized = vectorized

    # ------------------------------------------------------------------
    def _windows(self, scene: Scene,
                 stride: Optional[int] = None) -> Tuple[np.ndarray, List[Tuple[int, int, int, int]]]:
        with get_registry().time("detect.window_build"):
            if self.vectorized:
                return self._windows_vectorized(scene, stride=stride)
            return self._windows_loop(scene, stride=stride)

    @staticmethod
    def _window_starts(scene: Scene, stride: Optional[int]) -> Tuple[int, np.ndarray]:
        size = scene.cell_size
        stride = stride or size
        limit = scene.size - size
        starts = np.arange(0, limit + 1, stride) if limit >= 0 else np.empty(0, int)
        return size, starts

    def _windows_loop(self, scene: Scene,
                      stride: Optional[int] = None) -> Tuple[np.ndarray, List[Tuple[int, int, int, int]]]:
        """Reference one-crop-per-cell extraction (seed implementation)."""
        size, starts = self._window_starts(scene, stride)
        boxes: List[Tuple[int, int, int, int]] = []
        crops: List[np.ndarray] = []
        for y0 in starts:
            for x0 in starts:
                bbox = (int(x0), int(y0), int(x0) + size, int(y0) + size)
                boxes.append(bbox)
                crops.append(scene.crop(bbox))
        if not crops:
            channels = scene.image.shape[0]
            return np.zeros((0, channels, size, size), dtype=scene.image.dtype), []
        return np.stack(crops), boxes

    @staticmethod
    def _grid_aligned(scene: Scene, size: int, stride: Optional[int]) -> bool:
        """Windows tile the scene exactly (stride == window == cell)."""
        return (stride or size) == size and scene.size % size == 0

    def _windows_vectorized(self, scene: Scene,
                            stride: Optional[int] = None) -> Tuple[np.ndarray, List[Tuple[int, int, int, int]]]:
        """Batched extraction: one strided gather builds the whole batch."""
        size, starts = self._window_starts(scene, stride)
        channels = scene.image.shape[0]
        if starts.size == 0:
            # Scene smaller than one window: no valid placements.
            return np.zeros((0, channels, size, size), dtype=scene.image.dtype), []
        if self._grid_aligned(scene, size, stride):
            # Non-overlapping tiling: a pure reshape/transpose copy, far
            # cheaper than the general strided gather below.
            n = scene.size // size
            windows = scene.image.reshape(channels, n, size, n, size)
            windows = windows.transpose(1, 3, 0, 2, 4).reshape(
                -1, channels, size, size)
        else:
            view = np.lib.stride_tricks.sliding_window_view(
                scene.image, (size, size), axis=(1, 2))
            # (C, ny, nx, S, S) -> (ny, nx, C, S, S) -> (N, C, S, S)
            windows = view[:, starts[:, None], starts[None, :]]
            windows = windows.transpose(1, 2, 0, 3, 4).reshape(
                -1, channels, size, size)
        boxes = [
            (int(x0), int(y0), int(x0) + size, int(y0) + size)
            for y0 in starts for x0 in starts
        ]
        return windows, boxes

    def _windows_all(
        self, scenes: Sequence[Scene], stride: Optional[int] = None,
    ) -> Tuple[np.ndarray, List[List[Tuple[int, int, int, int]]]]:
        """All scenes' windows as one ``(N, C, S, S)`` batch.

        Requires homogeneous scenes (same image shape and cell size —
        :meth:`detect_batch` checks).  The vectorized path stacks the
        images and runs a single strided gather, so the fused batch is
        element-identical to per-scene extraction.
        """
        with get_registry().time("detect.window_build"):
            first = scenes[0]
            size, starts = self._window_starts(first, stride)
            channels = first.image.shape[0]
            if starts.size == 0:
                empty = np.zeros((0, channels, size, size),
                                 dtype=first.image.dtype)
                return empty, [[] for _ in scenes]
            if not self.vectorized:
                parts: List[np.ndarray] = []
                boxes_per_scene: List[List[Tuple[int, int, int, int]]] = []
                for scene in scenes:
                    windows, boxes = self._windows_loop(scene, stride=stride)
                    parts.append(windows)
                    boxes_per_scene.append(boxes)
                return np.concatenate(parts, axis=0), boxes_per_scene
            if self._grid_aligned(first, size, stride):
                # Non-overlapping tiling: strided copies straight into the
                # fused batch, one per scene — no intermediate stack, and
                # an order of magnitude cheaper than the general gather.
                n = first.size // size
                windows = np.empty(
                    (len(scenes) * n * n, channels, size, size),
                    dtype=first.image.dtype)
                dest = windows.reshape(len(scenes), n, n, channels, size, size)
                for i, scene in enumerate(scenes):
                    dest[i] = scene.image.reshape(
                        channels, n, size, n, size).transpose(1, 3, 0, 2, 4)
            else:
                images = np.stack([scene.image for scene in scenes])
                view = np.lib.stride_tricks.sliding_window_view(
                    images, (size, size), axis=(2, 3))
                # (B, C, ny, nx, S, S) -> (B, ny, nx, C, S, S) -> (N, C, S, S)
                windows = view[:, :, starts[:, None], starts[None, :]]
                windows = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
                    -1, channels, size, size)
            boxes = [
                (int(x0), int(y0), int(x0) + size, int(y0) + size)
                for y0 in starts for x0 in starts
            ]
            return windows, [list(boxes) for _ in scenes]

    # ------------------------------------------------------------------
    def _emit(
        self,
        boxes: Sequence[Tuple[int, int, int, int]],
        class_probs: np.ndarray,
        attribute_probs: Dict[str, np.ndarray],
        objectness: np.ndarray,
        task_scores: np.ndarray,
        combined: np.ndarray,
    ) -> List[Detection]:
        """Threshold + NMS for one scene's scored windows."""
        candidates = [
            Detection(
                bbox=boxes[i],
                score=float(combined[i]),
                objectness=float(objectness[i]),
                task_score=float(task_scores[i]),
                class_id=int(class_probs[i].argmax()),
                attribute_probs={
                    family: probs[i] for family, probs in attribute_probs.items()
                },
            )
            for i in np.flatnonzero(combined >= self.score_threshold)
        ]
        if not candidates:
            return []
        nms_fn = nms if self.vectorized else nms_reference
        with get_registry().span("detect.nms", candidates=len(candidates)):
            keep = nms_fn([d.bbox for d in candidates],
                          [d.score for d in candidates],
                          iou_threshold=self.nms_iou)
        return [candidates[i] for i in keep]

    @staticmethod
    def _signals(combined: np.ndarray, score_threshold: float,
                 num_detections: int) -> SceneSignals:
        return SceneSignals(
            margin=confidence_margin(combined, score_threshold),
            max_combined=float(combined.max()) if combined.size else 0.0,
            num_windows=int(combined.size),
            num_detections=num_detections,
        )

    def detect(self, scene: Scene, stride: Optional[int] = None) -> List[Detection]:
        return self.detect_with_signals(scene, stride=stride)[0]

    def detect_with_signals(
        self, scene: Scene, stride: Optional[int] = None,
    ) -> Tuple[List[Detection], SceneSignals]:
        """:meth:`detect` plus the scene's :class:`SceneSignals`.

        The signals come from the same scored windows as the detections;
        ``detect`` is exactly this with the signals dropped.
        """
        obs = get_registry()
        task_name = self.matcher.kg.task_name if self.matcher is not None else None
        with obs.span("detect.total", task=task_name, grid=scene.grid,
                      vectorized=self.vectorized) as span:
            _attr_deadline(span)
            windows, boxes = self._windows(scene, stride=stride)
            span.set_attr(windows=len(boxes))
            predictions = predict_windows(self.model, windows,
                                          batch_size=self.batch_size)
            with obs.time("detect.kg_match"):
                objectness, task_scores, combined = score_predictions(
                    predictions, self.matcher)
            detections = self._emit(
                boxes, predictions["class_probs"],
                predictions["attribute_probs"],
                objectness, task_scores, combined)
            span.set_attr(detections=len(detections))
            return detections, self._signals(
                combined, self.score_threshold, len(detections))

    def detect_batch(self, scenes: Sequence[Scene],
                     stride: Optional[int] = None) -> List[List[Detection]]:
        return self.detect_batch_with_signals(scenes, stride=stride)[0]

    def detect_batch_with_signals(
        self, scenes: Sequence[Scene], stride: Optional[int] = None,
    ) -> Tuple[List[List[Detection]], List[SceneSignals]]:
        """Batch-first detection: one fused model forward across scenes.

        Windows from every scene are concatenated into a single forward
        pass and a single knowledge-graph match, then split back for
        per-scene threshold + NMS.  Results arrive in input order, one
        detection list per scene.

        Determinism: window extraction, matching, threshold, and NMS are
        all row-wise, and the quantized (integer) configuration's forward
        is exactly order- and batch-invariant — so with it, detect_batch
        is bit-identical to per-scene :meth:`detect`.  Float models agree
        on boxes and keep order, with scores equal to within one or two
        ulps (BLAS GEMM tiling varies with batch size on the narrow
        attribute heads).

        Scenes with different image shapes or cell sizes cannot share a
        forward; those fall back to per-scene detection (still under the
        ``detect.batch_total`` span).
        """
        scenes = list(scenes)
        obs = get_registry()
        task_name = self.matcher.kg.task_name if self.matcher is not None else None
        if not scenes:
            return [], []
        with obs.span("detect.batch_total", task=task_name,
                      scenes=len(scenes), vectorized=self.vectorized) as span:
            _attr_deadline(span)
            if len({(s.image.shape, s.cell_size) for s in scenes}) > 1:
                span.set_attr(fused=False)
                pairs = [self.detect_with_signals(scene, stride=stride)
                         for scene in scenes]
                return [p[0] for p in pairs], [p[1] for p in pairs]
            windows, boxes_per_scene = self._windows_all(scenes, stride=stride)
            counts = [len(boxes) for boxes in boxes_per_scene]
            total = int(windows.shape[0])
            span.set_attr(windows=total, fused=True)
            # Larger forward chunks amortize per-call overhead across the
            # batch; even-sized chunks avoid a slow ragged tail.  Per-scene
            # batch_size still applies when it is bigger.
            chunk = max(self.batch_size, _BATCH_FORWARD_CHUNK)
            if total > chunk:
                pieces = -(-total // chunk)
                chunk = -(-total // pieces)
            predictions = predict_windows(self.model, windows, batch_size=chunk)
            class_probs = predictions["class_probs"]
            attribute_probs = predictions["attribute_probs"]
            with obs.time("detect.kg_match"):
                objectness = 1.0 - class_probs[:, background_class_id()]
                if "task_probs" in predictions:
                    task_scores = predictions["task_probs"]
                elif self.matcher is not None:
                    # Row-wise scoring: one match over the concatenated
                    # batch equals per-scene matching (see match_batch,
                    # which adds the per-scene result split when needed).
                    task_scores = self.matcher.match_distributions(
                        attribute_probs).score
                else:
                    task_scores = np.ones_like(objectness)
                combined = objectness * task_scores
            results: List[List[Detection]] = []
            signals: List[SceneSignals] = []
            emitted = 0
            start = 0
            # One vectorized threshold pass; scenes without a candidate
            # skip slicing and emission entirely.
            passed = combined >= self.score_threshold
            for boxes, n in zip(boxes_per_scene, counts):
                rows = slice(start, start + n)
                if not passed[rows].any():
                    results.append([])
                    signals.append(self._signals(
                        combined[rows], self.score_threshold, 0))
                    start += n
                    continue
                detections = self._emit(
                    boxes, class_probs[rows],
                    {f: p[rows] for f, p in attribute_probs.items()},
                    objectness[rows], task_scores[rows], combined[rows])
                results.append(detections)
                signals.append(self._signals(
                    combined[rows], self.score_threshold, len(detections)))
                emitted += len(detections)
                start += n
            span.set_attr(detections=emitted)
            return results, signals
