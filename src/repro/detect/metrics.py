"""Detection metrics.

Two views of quality:

* classic detection metrics — greedy IoU matching, precision/recall,
  all-point-interpolated average precision;
* *task accuracy*, the paper's headline number — over a set of scenes,
  the fraction of windows whose task-relevance decision (relevant / not)
  is correct.  This is the metric behind the "+15 %" configuration gap.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.scenes import ObjectInstance, Scene
from repro.data.tasks import TaskDefinition
from repro.detect.boxes import box_iou
from repro.detect.pipeline import Detection, TaskDetector


@dataclasses.dataclass
class DetectionMetrics:
    """Aggregated detection quality over a scene set."""

    true_positives: int
    false_positives: int
    false_negatives: int
    average_precision: float

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "ap": self.average_precision,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
        }


def match_detections(
    detections: Sequence[Detection],
    ground_truth: Sequence[ObjectInstance],
    iou_threshold: float = 0.5,
) -> Tuple[List[bool], int]:
    """Greedily match detections (descending score) to ground truth.

    Returns per-detection hit flags and the number of unmatched ground
    truth objects (false negatives).  Each ground-truth object matches at
    most one detection.
    """
    order = np.argsort([-d.score for d in detections])
    matched = [False] * len(ground_truth)
    hits: List[bool] = [False] * len(detections)
    for det_idx in order:
        detection = detections[det_idx]
        best_iou, best_gt = 0.0, -1
        for gt_idx, gt in enumerate(ground_truth):
            if matched[gt_idx]:
                continue
            iou = box_iou(detection.bbox, gt.bbox)
            if iou > best_iou:
                best_iou, best_gt = iou, gt_idx
        if best_gt >= 0 and best_iou >= iou_threshold:
            matched[best_gt] = True
            hits[det_idx] = True
    return hits, matched.count(False)


def precision_recall_curve(
    scores: Sequence[float], hits: Sequence[bool], num_positives: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Precision and recall as the score threshold sweeps downward."""
    if num_positives <= 0:
        return np.zeros(0), np.zeros(0)
    order = np.argsort(-np.asarray(scores, dtype=np.float64))
    hit_arr = np.asarray(hits, dtype=np.float64)[order]
    tp = np.cumsum(hit_arr)
    fp = np.cumsum(1.0 - hit_arr)
    precision = tp / np.maximum(tp + fp, 1e-12)
    recall = tp / num_positives
    return precision, recall


def average_precision(precision: np.ndarray, recall: np.ndarray) -> float:
    """All-point interpolated AP (area under the PR envelope)."""
    if precision.size == 0:
        return 0.0
    # Monotone non-increasing precision envelope.
    envelope = np.maximum.accumulate(precision[::-1])[::-1]
    padded_recall = np.concatenate([[0.0], recall, [recall[-1]]])
    padded_precision = np.concatenate([[envelope[0]], envelope, [0.0]])
    deltas = np.diff(padded_recall)
    return float(np.sum(deltas * padded_precision[1:]))


def _detect_all(detector, scenes: Sequence[Scene]) -> List[List[Detection]]:
    """Per-scene detections via the fused batch path when available."""
    if hasattr(detector, "detect_batch"):
        return detector.detect_batch(scenes)
    return [detector.detect(scene) for scene in scenes]


def evaluate_task_detection(
    detector: TaskDetector,
    scenes: Sequence[Scene],
    task: TaskDefinition,
    iou_threshold: float = 0.5,
) -> DetectionMetrics:
    """Full detection evaluation of a detector on a task over scenes.

    Ground truth = the scenes' objects whose attribute profiles satisfy
    the task predicate.
    """
    all_scores: List[float] = []
    all_hits: List[bool] = []
    tp = fp = fn = 0
    total_positives = 0
    scenes = list(scenes)
    for scene, detections in zip(scenes, _detect_all(detector, scenes)):
        relevant = [obj for obj in scene.objects if task.matches(obj.profile)]
        total_positives += len(relevant)
        hits, misses = match_detections(detections, relevant, iou_threshold)
        tp += sum(hits)
        fp += len(hits) - sum(hits)
        fn += misses
        all_scores.extend(d.score for d in detections)
        all_hits.extend(hits)
    precision, recall = precision_recall_curve(all_scores, all_hits, total_positives)
    ap = average_precision(precision, recall)
    return DetectionMetrics(
        true_positives=tp, false_positives=fp, false_negatives=fn,
        average_precision=ap,
    )


def window_task_accuracy(
    model,
    dataset,
    matcher=None,
    threshold: float = 0.35,
) -> float:
    """Task-relevance decision accuracy over a labelled window dataset.

    Mirrors the detector's per-window decision rule —
    ``P(object) · kg_match ≥ threshold`` — against the dataset's
    ``task_labels``.  This is the E1 "specific scenario" accuracy: the
    dataset's hard negatives are what separate the two configurations.
    """
    from repro.detect.pipeline import predict_windows, score_predictions

    if dataset.task_labels is None:
        raise ValueError("dataset has no task labels")
    predictions = predict_windows(model, dataset.images)
    _, _, combined = score_predictions(predictions, matcher)
    decisions = combined >= threshold
    truth = dataset.task_labels > 0.5
    return float((decisions == truth).mean())


def task_accuracy(
    detector: TaskDetector,
    scenes: Sequence[Scene],
    task: TaskDefinition,
    object_cells_only: bool = False,
) -> float:
    """Window-level task accuracy: the paper's configuration metric.

    Every grid cell is a decision point: the detector should fire exactly
    on cells holding a task-relevant object.  Accuracy is the fraction of
    correct cell decisions over all scenes.

    ``object_cells_only`` restricts scoring to cells that contain an
    object (relevant or distractor) — the hard decisions where the two
    model configurations actually differ; empty-background cells are
    near-trivially correct for both and dilute the gap.
    """
    correct = 0
    total = 0
    scenes = list(scenes)
    for scene, detections in zip(scenes, _detect_all(detector, scenes)):
        relevant_cells = {
            obj.cell for obj in scene.objects if task.matches(obj.profile)
        }
        object_cells = {obj.cell for obj in scene.objects}
        fired_cells = set()
        for detection in detections:
            col = detection.bbox[0] // scene.cell_size
            row = detection.bbox[1] // scene.cell_size
            fired_cells.add((row, col))
        for row in range(scene.grid):
            for col in range(scene.grid):
                cell = (row, col)
                if object_cells_only and cell not in object_cells:
                    continue
                is_relevant = cell in relevant_cells
                fired = cell in fired_cells
                correct += int(is_relevant == fired)
                total += 1
    return correct / total if total else 0.0
