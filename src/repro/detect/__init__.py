"""Detection pipeline: proposals, scoring, NMS, and metrics.

Scenes are scanned window-by-window; each window gets class/attribute
predictions from a model configuration, and the knowledge-graph matcher
turns attribute distributions into task-relevance scores.  Metrics cover
both classic detection quality (precision/recall/AP) and the paper's
task-accuracy measure.
"""

from repro.detect.boxes import box_iou, box_area, clip_box, nms, nms_reference
from repro.detect.pipeline import (
    Detection,
    SceneSignals,
    TaskDetector,
    confidence_margin,
    predict_windows,
    score_predictions,
)
from repro.detect.metrics import (
    DetectionMetrics,
    match_detections,
    precision_recall_curve,
    average_precision,
    evaluate_task_detection,
    task_accuracy,
    window_task_accuracy,
)

__all__ = [
    "box_iou",
    "box_area",
    "clip_box",
    "nms",
    "nms_reference",
    "Detection",
    "SceneSignals",
    "TaskDetector",
    "confidence_margin",
    "predict_windows",
    "score_predictions",
    "DetectionMetrics",
    "match_detections",
    "precision_recall_curve",
    "average_precision",
    "evaluate_task_detection",
    "task_accuracy",
    "window_task_accuracy",
]
