"""Axis-aligned box utilities.

Boxes are ``(x0, y0, x1, y1)`` with ``x0 < x1`` and ``y0 < y1``
(half-open pixel coordinates, matching :class:`repro.data.Scene`).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Box = Tuple[float, float, float, float]


def box_area(box: Box) -> float:
    x0, y0, x1, y1 = box
    return max(0.0, x1 - x0) * max(0.0, y1 - y0)


def box_iou(a: Box, b: Box) -> float:
    """Intersection-over-union of two boxes, in [0, 1]."""
    ix0, iy0 = max(a[0], b[0]), max(a[1], b[1])
    ix1, iy1 = min(a[2], b[2]), min(a[3], b[3])
    inter = max(0.0, ix1 - ix0) * max(0.0, iy1 - iy0)
    if inter == 0.0:
        return 0.0
    union = box_area(a) + box_area(b) - inter
    return inter / union if union > 0 else 0.0


def clip_box(box: Box, width: float, height: float) -> Box:
    """Clamp a box to image bounds."""
    x0, y0, x1, y1 = box
    return (
        min(max(x0, 0.0), width),
        min(max(y0, 0.0), height),
        min(max(x1, 0.0), width),
        min(max(y1, 0.0), height),
    )


def nms(boxes: Sequence[Box], scores: Sequence[float],
        iou_threshold: float = 0.5) -> List[int]:
    """Greedy non-maximum suppression.

    Returns the indices of kept boxes, in descending score order.  The
    classic invariants hold: kept boxes are mutually below the IoU
    threshold, and every suppressed box overlaps some higher-scoring kept
    box at or above it.
    """
    if len(boxes) != len(scores):
        raise ValueError("boxes and scores must have equal length")
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")
    order = np.argsort(np.asarray(scores, dtype=np.float64))[::-1]
    kept: List[int] = []
    suppressed = np.zeros(len(boxes), dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        kept.append(int(idx))
        for other in order:
            if other == idx or suppressed[other]:
                continue
            if box_iou(boxes[idx], boxes[other]) >= iou_threshold:
                suppressed[other] = True
    return kept
