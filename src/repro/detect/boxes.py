"""Axis-aligned box utilities.

Boxes are ``(x0, y0, x1, y1)`` with ``x0 < x1`` and ``y0 < y1``
(half-open pixel coordinates, matching :class:`repro.data.Scene`).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Box = Tuple[float, float, float, float]


def box_area(box: Box) -> float:
    x0, y0, x1, y1 = box
    return max(0.0, x1 - x0) * max(0.0, y1 - y0)


def box_iou(a: Box, b: Box) -> float:
    """Intersection-over-union of two boxes, in [0, 1]."""
    ix0, iy0 = max(a[0], b[0]), max(a[1], b[1])
    ix1, iy1 = min(a[2], b[2]), min(a[3], b[3])
    inter = max(0.0, ix1 - ix0) * max(0.0, iy1 - iy0)
    if inter == 0.0:
        return 0.0
    union = box_area(a) + box_area(b) - inter
    return inter / union if union > 0 else 0.0


def clip_box(box: Box, width: float, height: float) -> Box:
    """Clamp a box to image bounds."""
    x0, y0, x1, y1 = box
    return (
        min(max(x0, 0.0), width),
        min(max(y0, 0.0), height),
        min(max(x1, 0.0), width),
        min(max(y1, 0.0), height),
    )


def _descending_order(scores: Sequence[float]) -> np.ndarray:
    """Indices by descending score, ties broken by ascending index.

    A *stable* sort on the negated scores makes tied scores keep their
    input order, so NMS keep sets are reproducible across numpy versions
    (plain ``argsort`` uses an unstable quicksort whose tie order is an
    implementation detail).
    """
    return np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")


def _validate_nms_args(boxes, scores, iou_threshold: float) -> None:
    if len(boxes) != len(scores):
        raise ValueError("boxes and scores must have equal length")
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")


def nms_reference(boxes: Sequence[Box], scores: Sequence[float],
                  iou_threshold: float = 0.5) -> List[int]:
    """Greedy non-maximum suppression — readable O(N²) loop version.

    Kept as the reference oracle for :func:`nms`: the test suite asserts
    the vectorized implementation returns identical keep lists on random
    inputs.  Returns the indices of kept boxes, in descending score
    order.  The classic invariants hold: kept boxes are mutually below
    the IoU threshold, and every suppressed box overlaps some
    higher-scoring kept box at or above it.
    """
    _validate_nms_args(boxes, scores, iou_threshold)
    order = _descending_order(scores)
    kept: List[int] = []
    suppressed = np.zeros(len(boxes), dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        kept.append(int(idx))
        for other in order:
            if other == idx or suppressed[other]:
                continue
            if box_iou(boxes[idx], boxes[other]) >= iou_threshold:
                suppressed[other] = True
    return kept


def nms(boxes: Sequence[Box], scores: Sequence[float],
        iou_threshold: float = 0.5) -> List[int]:
    """Greedy non-maximum suppression, vectorized.

    Identical contract and keep lists as :func:`nms_reference`, but each
    greedy step computes IoU of the top survivor against all remaining
    candidates in one batched numpy pass over precomputed areas, so the
    Python-level work is O(number of kept boxes) instead of O(N²).
    """
    _validate_nms_args(boxes, scores, iou_threshold)
    if len(boxes) == 0:
        return []
    coords = np.asarray(boxes, dtype=np.float64).reshape(len(boxes), 4)
    x0, y0, x1, y1 = coords[:, 0], coords[:, 1], coords[:, 2], coords[:, 3]
    areas = np.maximum(0.0, x1 - x0) * np.maximum(0.0, y1 - y0)
    order = _descending_order(scores)
    kept: List[int] = []
    while order.size:
        idx = order[0]
        kept.append(int(idx))
        rest = order[1:]
        ix0 = np.maximum(x0[idx], x0[rest])
        iy0 = np.maximum(y0[idx], y0[rest])
        ix1 = np.minimum(x1[idx], x1[rest])
        iy1 = np.minimum(y1[idx], y1[rest])
        inter = np.maximum(0.0, ix1 - ix0) * np.maximum(0.0, iy1 - iy0)
        union = areas[idx] + areas[rest] - inter
        with np.errstate(divide="ignore", invalid="ignore"):
            iou = np.where((inter > 0.0) & (union > 0.0), inter / union, 0.0)
        order = rest[iou < iou_threshold]
    return kept
