"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tasks``
    list the mission library (name, domain, predicate summary).
``graph --task NAME``
    show the knowledge graph the simulated LLM extracts for a mission
    (ASCII tree; ``--dot`` for Graphviz source).
``detect --task NAME``
    run task-oriented detection on a generated scene with the cached
    quantized configuration; optionally export an annotated PPM.
``simulate``
    compile the quantized model to the accelerator and print the
    performance/energy report plus the GPU-baseline comparison.
``models``
    list the trained models in the artifact cache.
``artifacts {list,verify,gc}``
    inspect and maintain the checkpoint cache: per-entry integrity
    status, a full verification sweep (non-zero exit on corruption, for
    CI), and garbage collection of quarantined/temp/lock files.
``engine bench``
    serving-engine throughput sweep: scenes/sec for per-call rebuild,
    cached session, and the micro-batching engine (batch x workers).
``quant bench``
    quantized-kernel latency: per-site exact BLAS GEMMs vs the int64
    reference, plus the end-to-end quantized forward — asserting
    bit-identical outputs before timing.
``obs {report,export,trace,compare,serve,top,slo}``
    the telemetry family: render a ``BENCH_*.json`` (manifest + per-stage
    p50/p90/p99 + counters), run an instrumented detection workload and
    persist its telemetry, convert a telemetry file's spans to Chrome
    trace-event JSON for Perfetto, gate one run against a baseline
    (non-zero exit on hot-path regression, for CI), serve live
    Prometheus ``/metrics`` + ``/healthz`` + ``/slo`` over stdlib HTTP
    (optionally driving demo engine traffic), watch interval rates and
    percentiles from a running server's ``/snapshot``, and evaluate SLO
    burn against telemetry files (``--gate`` for CI).
``fuzz {run,replay,corpus}``
    the differential scenario fuzzer: sweep seeded generated scenarios
    across the float/quantized/batched/engine/streaming paths (non-zero
    exit + replayable JSON case files on any oracle divergence),
    deterministically replay a recorded case, and re-check the committed
    seed corpus.
``stream {run,bench}``
    incremental streaming detection: drive a delta-gated streaming
    detector over a generated multi-frame sequence (per-frame track and
    gate-hit summary), and benchmark frames/sec for full recompute vs
    frame-delta gating across motion densities and camera counts —
    asserting gated tracks bit-identical to the full-recompute oracle.
``cascade {route,calibrate,show}``
    the adaptive dual-config cascade: route generated scenes through
    quantized-first detection with margin-triggered specialist
    escalation (per-scene decision audit), sweep the recovery/cost
    frontier to calibrate the margin threshold (optionally persisting
    it in the artifact registry), and inspect stored calibrations.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _cmd_tasks(args: argparse.Namespace) -> int:
    from repro.data import TASK_LIBRARY

    for name, task in TASK_LIBRARY.items():
        families = ", ".join(task.predicate.constrained_families)
        print(f"{name:<22} [{task.domain:<10}] constrains: {families}")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.data import get_task
    from repro.kg import SimulatedLLM
    from repro.kg.visualize import render_ascii, render_dot

    task = get_task(args.task)
    kg = SimulatedLLM().generate_for_task(task)
    print(render_dot(kg) if args.dot else render_ascii(kg))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.core import ArtifactBuilder, ITaskPipeline, TaskSpec
    from repro.data import SceneConfig, SceneGenerator, get_task

    task = get_task(args.task)
    builder = ArtifactBuilder(seed=args.seed)
    pipeline = ITaskPipeline(builder.quantized())
    spec = TaskSpec.from_definition(task)
    scene = SceneGenerator(SceneConfig(), seed=args.scene_seed).generate()
    detections = pipeline.detect(spec, scene)

    relevant = sum(task.matches(obj.profile) for obj in scene.objects)
    print(f"scene: {len(scene.objects)} objects, {relevant} task-relevant")
    print(f"detections ({len(detections)}):")
    for det in detections:
        print(f"  bbox={det.bbox} score={det.score:.3f} "
              f"objectness={det.objectness:.3f} task={det.task_score:.3f}")
    if args.out:
        from repro.data.io import export_scene

        export_scene(scene, args.out, detections)
        print(f"annotated scene written to {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core import ArtifactBuilder
    from repro.hw import (
        AcceleratorConfig,
        Compiler,
        GPUConfig,
        GPUModel,
        Simulator,
        estimate_area,
        streaming_comparison,
    )

    builder = ArtifactBuilder(seed=args.seed)
    quantized = builder.quantized().model
    config = AcceleratorConfig.edge_default()
    program = Compiler(config).compile(quantized, batch=args.batch)
    print(program.summary())
    report = Simulator(config).simulate(program)
    print(report.summary())
    print(estimate_area(config).summary())
    gpu = GPUModel(GPUConfig.jetson_class()).simulate(program)
    print(gpu.summary())
    comparison = streaming_comparison(report.latency_s, gpu.latency_s)
    print(f"speedup {comparison['speedup']:.2f}x, streaming energy "
          f"reduction {comparison['energy_reduction_pct']:.1f} %")
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.core import ModelRegistry, default_artifact_dir

    registry = ModelRegistry(default_artifact_dir())
    names = registry.names()
    if not names:
        print("artifact cache is empty (models train on first use)")
        return 0
    for name in names:
        try:
            meta = registry.metadata(name)
        except ValueError:  # json.JSONDecodeError subclasses ValueError
            print(f"{name:<48} (unreadable meta — run `repro artifacts verify`)")
            continue
        print(f"{name:<48} dim={meta.get('dim')} depth={meta.get('depth')} "
              f"task_head={meta.get('with_task_head', False)}")
    return 0


def _artifact_registry(args: argparse.Namespace):
    from repro.core import ModelRegistry, default_artifact_dir

    return ModelRegistry(args.dir or default_artifact_dir())


def _cmd_artifacts_list(args: argparse.Namespace) -> int:
    registry = _artifact_registry(args)
    statuses = registry.statuses()
    if not statuses:
        print(f"artifact cache at {registry.root} is empty "
              "(models train on first use)")
        return 0
    width = max(len(s.name) for s in statuses)
    for status in statuses:
        label = "ok" if status.ok else "CORRUPT"
        size = (os.path.getsize(status.weights_path)
                if os.path.exists(status.weights_path) else 0)
        print(f"{status.name.ljust(width)}  {label:<8} {size:>9d} B")
        for problem in status.problems if not status.ok else []:
            print(f"{' ' * width}  - {problem}")
    return 0


def _cmd_artifacts_verify(args: argparse.Namespace) -> int:
    registry = _artifact_registry(args)
    statuses = registry.statuses()
    bad = [s for s in statuses if not s.ok]
    for status in statuses:
        marker = "ok     " if status.ok else "CORRUPT"
        print(f"[{marker}] {status.name}")
        for problem in status.problems if not status.ok else []:
            print(f"          {problem}")
    print(f"{len(statuses)} entr{'y' if len(statuses) == 1 else 'ies'}, "
          f"{len(bad)} corrupt ({registry.root})")
    if bad and args.quarantine:
        for status in bad:
            moved = registry.quarantine(status.name)
            for path in moved:
                print(f"quarantined {path}")
    return 1 if bad else 0


def _cmd_artifacts_gc(args: argparse.Namespace) -> int:
    registry = _artifact_registry(args)
    if args.dry_run:
        from repro.core.registry import _lock_is_held

        candidates = [
            os.path.join(registry.root, fname)
            for fname in sorted(os.listdir(registry.root))
            if (fname.endswith(".tmp")
                or (fname.endswith(".lock")
                    and not _lock_is_held(os.path.join(registry.root, fname))))
        ]
        if os.path.isdir(registry.quarantine_root):
            candidates += [
                os.path.join(registry.quarantine_root, fname)
                for fname in sorted(os.listdir(registry.quarantine_root))
            ]
        for path in candidates:
            print(f"would remove {path}")
        print(f"{len(candidates)} file(s) would be removed")
        return 0
    removed = registry.gc(remove_quarantine=not args.keep_quarantine)
    for path in removed:
        print(f"removed {path}")
    print(f"{len(removed)} file(s) removed")
    return 0


# ----------------------------------------------------------------------
# obs: telemetry report / export / trace / compare
# ----------------------------------------------------------------------
def _parse_fraction(text: str) -> float:
    """Accept ``15%``, ``15``, or ``0.15`` — all meaning fifteen percent."""
    value = text.strip()
    if value.endswith("%"):
        return float(value[:-1]) / 100.0
    number = float(value)
    return number / 100.0 if number > 1.0 else number


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import load_telemetry

    doc = load_telemetry(args.file)
    manifest = doc.get("manifest", {})
    print(f"bench    : {doc.get('bench')}")
    print(f"recorded : {manifest.get('timestamp_utc')} on "
          f"{manifest.get('hostname')} ({manifest.get('platform')})")
    sha = manifest.get("git_sha") or "?"
    dirty = " (dirty)" if manifest.get("git_dirty") else ""
    print(f"commit   : {sha[:12]}{dirty}  branch={manifest.get('git_branch')}  "
          f"seed={manifest.get('seed')}")
    timers = doc.get("obs", {}).get("timers", {})
    if timers:
        width = max(len(name) for name in timers)
        print(f"\n{'stage'.ljust(width)} | {'calls':>6} | {'total ms':>10} | "
              f"{'p50 ms':>9} | {'p90 ms':>9} | {'p99 ms':>9} | {'max ms':>9}")
        for name, stats in sorted(timers.items(),
                                  key=lambda kv: -kv[1].get("total_s", 0.0)):
            print(f"{name.ljust(width)} | {stats.get('calls', 0):>6} | "
                  f"{stats.get('total_s', 0.0) * 1e3:>10.3f} | "
                  f"{stats.get('p50_s', 0.0) * 1e3:>9.3f} | "
                  f"{stats.get('p90_s', 0.0) * 1e3:>9.3f} | "
                  f"{stats.get('p99_s', 0.0) * 1e3:>9.3f} | "
                  f"{stats.get('max_s', 0.0) * 1e3:>9.3f}")
    counters = doc.get("obs", {}).get("counters", {})
    if counters:
        print("\n-- counters --")
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            print(f"{name.ljust(width)} | {value}")
    distributions = doc.get("obs", {}).get("distributions", {})
    if distributions:
        width = max(len(name) for name in distributions)
        print(f"\n{'distribution'.ljust(width)} | {'count':>6} | {'mean':>8} | "
              f"{'p50':>8} | {'p90':>8} | {'max':>8}")
        for name, stats in sorted(distributions.items()):
            print(f"{name.ljust(width)} | {stats.get('count', 0):>6} | "
                  f"{stats.get('mean', 0.0):>8.2f} | "
                  f"{stats.get('p50', 0.0):>8.2f} | "
                  f"{stats.get('p90', 0.0):>8.2f} | "
                  f"{stats.get('max', 0.0):>8.2f}")
    spans = doc.get("obs", {}).get("spans", [])
    rows = doc.get("rows", [])
    tables = doc.get("tables", {}) or {}
    print(f"\n{len(spans)} span(s), {len(rows)} result row(s), "
          f"{len(tables)} extra table(s)")
    dropped = doc.get("obs", {}).get("dropped_spans",
                                     manifest.get("dropped_spans", 0))
    if dropped:
        print(f"WARNING: {dropped} span(s) dropped during the run — "
              f"the span list above is incomplete")
    return 0


def _cmd_engine_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import best_engine_speedup, run_throughput

    batch_sizes = [int(b) for b in args.batch_sizes.split(",")]
    workers = [int(w) for w in args.workers.split(",")]
    rows = run_throughput(
        num_scenes=args.scenes, grid=args.grid, batch_sizes=batch_sizes,
        workers=workers, repeats=args.repeats, seed=args.seed)
    print(f"{'mode':<16} | {'batch':>5} | {'workers':>7} | "
          f"{'scenes/s':>9} | {'ms/scene':>9} | {'speedup':>8}")
    for row in rows:
        batch = "-" if row["batch"] is None else str(row["batch"])
        nworkers = "-" if row["workers"] is None else str(row["workers"])
        print(f"{row['mode']:<16} | {batch:>5} | {nworkers:>7} | "
              f"{row['scenes_per_s']:>9.1f} | {row['ms_per_scene']:>9.3f} | "
              f"{row['speedup_vs_percall']:>7.2f}x")
    best = best_engine_speedup(rows)
    print(f"\nbest engine speedup vs per-call rebuild (batch >= 8): "
          f"{best:.2f}x")
    return 0


def _cmd_engine_serve(args: argparse.Namespace) -> int:
    """Sharded serving: N engine processes behind a routing front-end.

    Workers rebuild their sessions from the artifact registry (see
    :class:`repro.serve.TaskSessionFactory`), each exposes its own
    ephemeral-port metrics endpoint, and the front-end serves the
    merged cross-shard ``/snapshot`` — point ``repro obs top`` at the
    front-end URL, or at every shard URL to merge client-side.
    """
    import time

    from repro.data import SceneConfig, SceneGenerator
    from repro.obs.context import request_context
    from repro.obs.registry import FP_SCALE
    from repro.serve import (
        EngineConfig,
        ShardConfig,
        ShardRejected,
        ShardRouter,
        TaskSessionFactory,
    )

    tasks = [name.strip() for name in args.tasks.split(",") if name.strip()]
    factory = TaskSessionFactory(seed=args.seed, cascade=args.cascade)
    config = ShardConfig(
        num_shards=args.shards,
        engine=EngineConfig(max_batch=args.max_batch, workers=args.workers),
        queue_size=args.queue_size,
        metrics=True,
        base_seed=args.seed,
    )
    router = ShardRouter(factory, config)
    front = router.serve_metrics(host=args.host, port=args.port)
    try:
        for info in router.shard_info():
            print(f"shard {info['shard']}: pid={info['pid']} "
                  f"metrics={info['metrics_url']} seed={info['seed']}")
        print(f"front-end (merged): {front.url}/snapshot")
        scenes = [SceneGenerator(SceneConfig(grid=args.grid),
                                 seed=seed).generate()
                  for seed in range(8)]
        served = rejected = 0
        for i in range(args.scenes):
            mission = tasks[i % len(tasks)]
            with request_context(name="serve.request", tenant="cli",
                                 mission=mission):
                try:
                    future = router.submit(scenes[i % len(scenes)], mission)
                except ShardRejected:
                    rejected += 1
                    continue
            future.result()
            served += 1
        print(f"served {served} scene(s) across {len(tasks)} mission(s), "
              f"{rejected} shed")
        merged = router.aggregate_snapshot()
        for name in ("engine.scenes", "engine.batches", "engine.rejected",
                     "session.cache.miss", "session.cache.hit"):
            state = merged.get("counters", {}).get(name)
            if state:
                print(f"  {name} = {state['value_fp'] / FP_SCALE:g}")
        if args.hold:
            print(f"holding for {args.hold:g}s — scrape away (Ctrl-C to "
                  "stop early)")
            try:
                time.sleep(args.hold)
            except KeyboardInterrupt:
                pass
    finally:
        front.stop()
        router.close()
    return 0


def _cmd_quant_bench(args: argparse.Namespace) -> int:
    from repro.quant.bench import run_forward_latency, run_kernel_latency

    rows = run_kernel_latency(
        rows_per_gemm=args.rows, repeats=args.repeats,
        weight_bits=args.weight_bits, act_bits=args.act_bits,
        seed=args.seed)
    print(f"{'site':<18} | {'m':>5} | {'k':>4} | {'n':>4} | "
          f"{'gemm':>7} | {'fast ms':>8} | {'int64 ms':>8} | {'speedup':>8}")
    for row in rows:
        print(f"{row['site']:<18} | {row['m']:>5} | {row['k']:>4} | "
              f"{row['n']:>4} | {row['gemm_dtype']:>7} | "
              f"{row['fast_ms']:>8.3f} | {row['reference_ms']:>8.3f} | "
              f"{row['speedup']:>7.2f}x")
    forward_rows, speedup = run_forward_latency(
        batch_images=args.batch_images, repeats=args.repeats,
        weight_bits=args.weight_bits, act_bits=args.act_bits)
    fast = next(r for r in forward_rows if r["mode"] == "blas_fast")
    ref = next(r for r in forward_rows if r["mode"] == "int64_reference")
    print(f"\nend-to-end forward (batch={fast['batch_images']}): "
          f"fast {fast['ms_per_batch']:.1f} ms vs int64 reference "
          f"{ref['ms_per_batch']:.1f} ms -> {speedup:.2f}x "
          f"(outputs bit-identical)")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.data import (
        SceneConfig,
        SceneGenerator,
        attribute_head_spec,
        get_task,
    )
    from repro.data.datasets import num_classes
    from repro.detect import TaskDetector
    from repro.kg import GraphMatcher, SimulatedLLM
    from repro.nn import VisionTransformer, ViTConfig
    from repro.obs import build_telemetry, get_registry, write_telemetry

    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    kg = SimulatedLLM().generate_for_task(get_task(args.task))
    detector = TaskDetector(model, matcher=GraphMatcher(kg),
                            score_threshold=0.0)
    scene = SceneGenerator(SceneConfig(grid=args.grid),
                           seed=args.scene_seed).generate()
    registry = get_registry()
    registry.reset()
    detections = 0
    for _ in range(args.repeats):
        detections = len(detector.detect(scene))
    total = registry.timer("detect.total")
    rows = [{
        "task": args.task,
        "grid": args.grid,
        "repeats": args.repeats,
        "detections": detections,
        "p50_ms": total.p50_s * 1e3,
        "p99_ms": total.p99_s * 1e3,
    }]
    doc = build_telemetry("obs_export", registry=registry, rows=rows,
                          seed=args.scene_seed)
    path = write_telemetry(args.out, doc)
    print(registry.report(f"obs export ({args.task}, {args.grid}x{args.grid})"))
    print(f"telemetry written to {path}")
    return 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import chrome_trace, load_telemetry

    doc = load_telemetry(args.file)
    spans = doc.get("obs", {}).get("spans", [])
    if not spans:
        print(f"{args.file}: no spans recorded — nothing to trace",
              file=sys.stderr)
        return 1
    trace = chrome_trace(spans, process_name=doc.get("bench") or "repro")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=2, allow_nan=False)
    print(f"{len(spans)} span(s) -> {args.out} "
          "(open in https://ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_obs_compare(args: argparse.Namespace) -> int:
    from repro.obs import compare_telemetry, load_telemetry

    comparison = compare_telemetry(
        load_telemetry(args.baseline),
        load_telemetry(args.current),
        max_regress=_parse_fraction(args.max_regress),
        metric=args.metric,
        stages=args.stages.split(",") if args.stages else None,
    )
    print(comparison.summary())
    return 0 if comparison.ok else 1


def _cmd_obs_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs import get_registry
    from repro.obs.export import MetricsServer
    from repro.obs.series import SeriesRecorder
    from repro.obs.slo import default_slos, load_slos

    registry = get_registry()
    series = registry.series
    if series is None:
        series = SeriesRecorder()
        registry.attach_series(series)
    slos = load_slos(args.slo_config) if args.slo_config else default_slos()
    server = MetricsServer(registry, host=args.host, port=args.port,
                           series=series, slos=slos)
    server.start()
    print(f"metrics  : {server.url}/metrics")
    print(f"health   : {server.url}/healthz")
    print(f"slo      : {server.url}/slo")
    print(f"snapshot : {server.url}/snapshot")
    try:
        if args.demo:
            return _obs_demo_traffic(args)
        print("idle registry — scrape away (Ctrl-C to stop)")
        deadline = (time.monotonic() + args.duration
                    if args.duration else None)
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _obs_demo_traffic(args: argparse.Namespace) -> int:
    """Drive request-scoped engine traffic so ``/metrics`` shows a live
    serving path (scraping an idle registry demonstrates nothing)."""
    import time

    import numpy as np

    from repro.data import (
        SceneConfig,
        SceneGenerator,
        attribute_head_spec,
        get_task,
    )
    from repro.data.datasets import num_classes
    from repro.detect import TaskDetector
    from repro.kg import GraphMatcher, SimulatedLLM
    from repro.nn import VisionTransformer, ViTConfig
    from repro.obs.context import request_context
    from repro.obs.sampler import ExemplarSampler, install_sampler
    from repro.serve.engine import DetectionEngine, EngineConfig

    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    kg = SimulatedLLM().generate_for_task(get_task(args.task))
    detector = TaskDetector(model, matcher=GraphMatcher(kg),
                            score_threshold=0.0)
    scenes = [SceneGenerator(SceneConfig(grid=args.grid),
                             seed=seed).generate() for seed in range(5)]
    previous = install_sampler(ExemplarSampler())
    engine = DetectionEngine(detector,
                             EngineConfig(max_batch=4, workers=2))
    deadline = time.monotonic() + args.duration if args.duration else None
    served = 0
    print(f"demo traffic: task={args.task} grid={args.grid} "
          "(Ctrl-C to stop)")
    try:
        while deadline is None or time.monotonic() < deadline:
            with request_context(name="demo.request", tenant="demo"):
                engine.submit(scenes[served % len(scenes)]).result()
            served += 1
    finally:
        engine.close()
        install_sampler(previous)
        print(f"served {served} demo scene(s)")
    return 0


def _fetch_merged_snapshot(urls, timeout: float = 5.0):
    """Fetch ``/snapshot`` from each base URL and merge the documents.

    One URL degenerates to that endpoint's own document re-normalized
    through :func:`repro.obs.merge_snapshots` (an exact identity on the
    accumulator state); several URLs — e.g. every shard of a
    ``repro engine serve`` deployment — merge bit-exactly, so terminal
    totals match a single-process run of the same workload.
    """
    import json
    import urllib.request

    from repro.obs.export import merge_snapshots

    docs = []
    for url in urls:
        endpoint = url.rstrip("/") + "/snapshot"
        with urllib.request.urlopen(endpoint, timeout=timeout) as resp:
            docs.append(json.load(resp))
    return merge_snapshots(docs)


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import time
    import urllib.error

    from repro.obs.export import snapshot_delta, timer_state_stats
    from repro.obs.registry import FP_SCALE

    urls = args.url or ["http://127.0.0.1:9464"]
    if len(urls) > 1:
        print(f"merging {len(urls)} endpoints: {', '.join(urls)}")
    previous = None
    frames = 0
    try:
        while args.frames is None or frames < args.frames:
            try:
                snapshot = _fetch_merged_snapshot(urls)
            except (urllib.error.URLError, OSError) as exc:
                print(f"cannot reach snapshot endpoint(s): {exc}",
                      file=sys.stderr)
                return 1
            if previous is not None:
                delta = snapshot_delta(snapshot, previous)
                timers = {name: timer_state_stats(state)
                          for name, state in delta["timers"].items()
                          if state["calls"]}
                print(f"\n-- last {args.interval:g}s --")
                if not timers:
                    print("(no stage activity)")
                else:
                    width = max(len(name) for name in timers)
                    print(f"{'stage'.ljust(width)} | {'calls':>6} | "
                          f"{'rate/s':>7} | {'p50 ms':>9} | {'p99 ms':>9} | "
                          f"{'total ms':>10}")
                    for name, stats in sorted(
                            timers.items(), key=lambda kv: -kv[1]["total_s"]):
                        print(f"{name.ljust(width)} | {stats['calls']:>6} | "
                              f"{stats['calls'] / args.interval:>7.1f} | "
                              f"{stats['p50_s'] * 1e3:>9.3f} | "
                              f"{stats['p99_s'] * 1e3:>9.3f} | "
                              f"{stats['total_s'] * 1e3:>10.3f}")
                counters = {name: state["value_fp"] / FP_SCALE
                            for name, state in delta["counters"].items()
                            if state["value_fp"]}
                if counters:
                    width = max(len(name) for name in counters)
                    for name, value in sorted(counters.items()):
                        print(f"{name.ljust(width)} | +{value:g}")
                if delta.get("dropped_spans"):
                    print(f"!! dropped spans: +{delta['dropped_spans']}")
                frames += 1
            previous = snapshot
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    from repro.obs import load_telemetry
    from repro.obs.slo import (
        default_slos,
        evaluate_telemetry,
        format_statuses,
        load_slos,
    )

    slos = load_slos(args.config) if args.config else default_slos()
    failed = False
    for path in args.file:
        statuses = evaluate_telemetry(slos, load_telemetry(path))
        print(format_statuses(statuses, title=f"SLO: {path}"))
        if any(not status.ok for status in statuses):
            failed = True
    if failed:
        print("\nSLO objectives violated" +
              ("" if args.gate else " (advisory — pass --gate to fail)"))
    return 1 if failed and args.gate else 0


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz import run_campaign

    report = run_campaign(
        seed=args.seed,
        budget=args.budget,
        artifacts_dir=args.artifacts_dir,
        shrink=not args.no_shrink,
        log=print,
    )
    status = "OK" if report.ok else "DIVERGENT"
    print(f"fuzz run: {report.executed} scenarios from seed {report.seed} "
          f"-> {len(report.failures)} divergent [{status}]")
    for path in report.case_paths:
        print(f"  case file: {path}")
    return 0 if report.ok else 1


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz import ModelCache, load_case, replay_case
    from repro.fuzz.runner import failing_oracles

    cache = ModelCache()
    exit_code = 0
    for path in args.case:
        case = load_case(path)
        result = replay_case(case, cache=cache)
        recorded = sorted({d["oracle"] for d in case.get("divergences", [])})
        if result.ok:
            print(f"{path}: no divergence"
                  + (f" (recorded: {', '.join(recorded)} — fixed)"
                     if recorded else ""))
            continue
        exit_code = 1
        print(f"{path}: DIVERGENT in {', '.join(failing_oracles(result))}")
        for divergence in result.divergences[:args.max_print]:
            print(f"  [{divergence.oracle}] {divergence.message}")
        hidden = len(result.divergences) - args.max_print
        if hidden > 0:
            print(f"  ... and {hidden} more")
    return exit_code


def _cmd_fuzz_corpus(args: argparse.Namespace) -> int:
    from repro.fuzz import ModelCache, iter_corpus, run_scenario
    from repro.fuzz.runner import failing_oracles

    cache = ModelCache()
    checked = 0
    failures = 0
    for path, spec in iter_corpus(args.dir):
        checked += 1
        result = run_scenario(spec, cache=cache)
        if result.ok:
            print(f"{path.name}: ok")
            continue
        failures += 1
        print(f"{path.name}: DIVERGENT in "
              f"{', '.join(failing_oracles(result))}")
        for divergence in result.divergences[:args.max_print]:
            print(f"  [{divergence.oracle}] {divergence.message}")
    if checked == 0:
        print("no corpus case files found")
        return 1
    print(f"corpus: {checked} cases, {failures} divergent")
    return 0 if failures == 0 else 1


def _stream_model_matcher(args: argparse.Namespace):
    """(model, matcher, task) for the stream commands.

    ``--untrained`` builds a fresh random student (hermetic, no artifact
    cache) — score *reuse* is what the stream commands exercise, and the
    delta gate's bit-exactness contract is weight-independent.
    """
    from repro.data import get_task
    from repro.kg import GraphMatcher, SimulatedLLM

    task = get_task(args.task)
    kg = SimulatedLLM().generate_for_task(task)
    matcher = GraphMatcher(kg)
    if args.untrained:
        import numpy as np

        from repro.data import attribute_head_spec
        from repro.data.datasets import num_classes
        from repro.nn import VisionTransformer, ViTConfig
        from repro.quant.vit import quantize_vit

        config = ViTConfig.student(num_classes(), attribute_head_spec())
        model = VisionTransformer(config, rng=np.random.default_rng(args.seed))
        model.eval()
        rng = np.random.default_rng(args.seed + 1)
        calibration = rng.uniform(
            0.0, 1.0, (16, 3, config.image_size, config.image_size),
        ).astype(np.float32)
        return quantize_vit(model, calibration), matcher, task
    from repro.core import ArtifactBuilder

    return ArtifactBuilder(seed=args.seed).quantized().model, matcher, task


def _cmd_stream_run(args: argparse.Namespace) -> int:
    from repro.data import SceneConfig
    from repro.stream import (
        SceneSequence,
        SequenceConfig,
        StreamingDetector,
        TrackerConfig,
    )

    model, matcher, task = _stream_model_matcher(args)
    scene = SceneConfig(grid=args.grid)
    sequence = SceneSequence(
        SequenceConfig(scene=scene, motion_rate=args.motion_rate),
        seed=args.scene_seed)
    config = TrackerConfig(delta_gate=not args.no_delta_gate,
                           motion_threshold=args.motion_threshold,
                           refresh_every=args.refresh_every)
    detector = StreamingDetector(model, matcher, config=config)
    print(f"stream run: task={args.task} grid={args.grid} "
          f"motion_rate={args.motion_rate:g} "
          f"delta_gate={config.delta_gate} "
          f"refresh_every={config.refresh_every}")
    for state in sequence.frames(args.frames):
        tracks = detector.update(state.scene)
        relevant = sum(task.matches(obj.profile)
                       for obj in state.scene.objects)
        cells = ", ".join(str(t.cell) for t in
                          sorted(tracks, key=lambda t: t.track_id))
        print(f"  frame {state.index:>3}: objects={len(state.scene.objects):<2} "
              f"relevant={relevant:<2} tracks={len(tracks):<2} "
              f"births={len(state.births)} deaths={len(state.deaths)}"
              + (f"  [{cells}]" if cells else ""))
    stats = detector.gate_stats
    if config.delta_gate:
        print(f"delta gate: {stats.skipped} skipped "
              f"({stats.carried} carried) / "
              f"{stats.skipped + stats.recomputed} cells "
              f"-> hit rate {stats.hit_rate:.1%}")
    return 0


def _cmd_stream_bench(args: argparse.Namespace) -> int:
    from repro.stream import TrackerConfig, run_stream_bench

    model, matcher, task = _stream_model_matcher(args)
    motion_rates = [float(m) for m in args.motion_rates.split(",")]
    gate = None
    if args.motion_threshold > 0.0:
        gate = TrackerConfig(delta_gate=True,
                             motion_threshold=args.motion_threshold,
                             refresh_every=args.refresh_every)
    rows = []
    for motion_rate in motion_rates:
        rows.append(run_stream_bench(
            model, matcher, task,
            num_cameras=args.cameras, num_frames=args.frames,
            grid=args.grid, motion_rate=motion_rate,
            tracker=TrackerConfig(refresh_every=args.refresh_every),
            gate=gate, seed=args.scene_seed))
    print(f"{'motion':>6} | {'full fps':>9} | {'gated fps':>9} | "
          f"{'speedup':>8} | {'hit rate':>8} | {'identical':>9} | "
          f"{'quality d':>9}")
    failed = False
    for row in rows:
        identical = ("-" if row["identical"] is None
                     else ("yes" if row["identical"] else "NO"))
        if row["exact_gate"] and not row["identical"]:
            failed = True
        print(f"{row['motion_rate']:>6.2f} | {row['full_fps']:>9.1f} | "
              f"{row['gated_fps']:>9.1f} | {row['speedup']:>7.2f}x | "
              f"{row['hit_rate']:>8.1%} | {identical:>9} | "
              f"{row['max_quality_delta']:>9.4f}")
    for row in rows:
        if row["mismatch"]:
            print(f"mismatch at motion_rate={row['motion_rate']:g}: "
                  f"{row['mismatch']}")
    if failed:
        print("FAILED: exact delta gating diverged from full recompute")
        return 1
    return 0


def _measured_cost_ratio() -> float:
    """Escalation cost in fast-path units from the hardware simulator.

    Same pricing as benchmark E13: the compiled int8 program at batch 1
    on the edge accelerator vs the Jetson-class GPU roofline.
    """
    from repro.core import ArtifactBuilder
    from repro.hw import (
        AcceleratorConfig,
        Compiler,
        GPUConfig,
        GPUModel,
        Simulator,
    )

    config = AcceleratorConfig.edge_default()
    program = Compiler(config).compile(ArtifactBuilder(seed=0).quantized().model)
    accel = Simulator(config).simulate(program)
    gpu = GPUModel(GPUConfig.jetson_class()).simulate(program)
    return gpu.latency_s / accel.latency_s


def _cmd_cascade_route(args: argparse.Namespace) -> int:
    from repro.cascade import CalibrationStore, CascadeConfig
    from repro.core import ArtifactBuilder, ITaskPipeline, TaskSpec
    from repro.data import SceneConfig, SceneGenerator, get_task
    from repro.kg import SimulatedLLM
    from repro.obs import get_registry

    task = get_task(args.task)
    builder = ArtifactBuilder(seed=args.seed)
    pipeline = ITaskPipeline(builder.quantized())
    pipeline.register_specialist(args.task,
                                 builder.task_student_by_name(args.task),
                                 SimulatedLLM().generate_for_task(task))

    threshold, source = args.threshold, "--threshold"
    if threshold is None:
        store = CalibrationStore(builder.registry)
        if store.exists(args.task):
            threshold = store.load(args.task).margin_threshold
            source = "stored calibration"
        else:
            threshold = CascadeConfig().margin_threshold
            source = "default"
    config = CascadeConfig(margin_threshold=threshold,
                           max_escalation_fraction=args.max_escalation)
    session = pipeline.cascade_session(TaskSpec.from_definition(task),
                                       config=config)
    scenes = SceneGenerator(SceneConfig(), seed=args.scene_seed).generate_batch(
        args.scenes)
    results, decisions = session.route_batch(scenes)
    print(f"cascade over {len(scenes)} scenes "
          f"(threshold={threshold:.3f} from {source}, "
          f"budget={args.max_escalation:g})")
    for dets, decision in zip(results, decisions):
        print(f"  scene {decision.scene_index:>3}: {decision.route:<9} "
              f"margin={decision.margin:.3f} detections={len(dets):<3} "
              f"[{decision.reason}]")
    counts = session.route_counts()
    print("routes: " + ", ".join(f"{route}={count}"
                                 for route, count in sorted(counts.items())))
    print(f"cascade task accuracy: {session.evaluate(scenes):.4f}")
    counters = get_registry().counters
    observed = {name: int(counter.value)
                for name, counter in sorted(counters.items())
                if name.startswith("cascade.")}
    if observed:
        print("obs counters: " + ", ".join(f"{k}={v}"
                                           for k, v in observed.items()))
    return 0


def _cmd_cascade_calibrate(args: argparse.Namespace) -> int:
    from repro.cascade import CalibrationStore, calibrate_margin_threshold
    from repro.core import ArtifactBuilder
    from repro.data import SceneConfig, SceneGenerator, get_task
    from repro.detect import TaskDetector
    from repro.kg import GraphMatcher, SimulatedLLM

    task = get_task(args.task)
    builder = ArtifactBuilder(seed=args.seed)
    ratio = args.cost_ratio if args.cost_ratio else _measured_cost_ratio()
    kg = SimulatedLLM().generate_for_task(task)
    fast = TaskDetector(builder.quantized().model, matcher=GraphMatcher(kg),
                        score_threshold=args.score_threshold)
    spec = TaskDetector(builder.task_student_by_name(args.task).model,
                        matcher=GraphMatcher(kg),
                        score_threshold=args.score_threshold)
    scenes = SceneGenerator(SceneConfig(), seed=args.scene_seed).generate_batch(
        args.scenes)
    calibration = calibrate_margin_threshold(
        fast, spec, scenes, task,
        fast_cost=1.0, specialist_cost=ratio,
        target_recovery=args.target_recovery,
        max_relative_cost=args.max_cost,
    )
    print(f"calibrated {args.task} on {len(scenes)} scenes "
          f"(escalation costs {ratio:.2f}x the fast path)")
    print(f"  fast acc       : {calibration.fast_accuracy:.4f}")
    print(f"  specialist acc : {calibration.specialist_accuracy:.4f}")
    print(f"  threshold      : {calibration.margin_threshold:.4f}")
    print(f"  escalation     : {calibration.escalation_fraction:.1%}")
    print(f"  recovery       : {calibration.recovery:.1%} "
          f"(target {calibration.target_recovery:.0%})")
    print(f"  relative cost  : {calibration.relative_cost:.1%} "
          f"(cap {calibration.max_relative_cost:.0%})")
    print(f"  meets targets  : {calibration.meets_targets}")
    if args.frontier:
        print(f"\n  {'threshold':>9} | {'escalation':>10} | "
              f"{'recovery':>8} | {'rel cost':>8}")
        for point in calibration.frontier:
            print(f"  {point.margin_threshold:>9.4f} | "
                  f"{point.escalation_fraction:>10.1%} | "
                  f"{point.recovery:>8.1%} | {point.relative_cost:>8.1%}")
    if args.save:
        path = CalibrationStore(builder.registry).save(args.task, calibration)
        print(f"\nsaved to {path}")
    return 0 if calibration.meets_targets or not args.gate else 1


def _cmd_cascade_show(args: argparse.Namespace) -> int:
    from repro.cascade import CalibrationStore
    from repro.core import ModelRegistry, default_artifact_dir

    store = CalibrationStore(ModelRegistry(args.dir or default_artifact_dir()))
    names = store.names()
    if args.name is None:
        if not names:
            print(f"no calibrations stored under {store.root}")
            return 0
        width = max(len(name) for name in names)
        for name in names:
            cal = store.load(name)
            marker = "meets" if cal.meets_targets else "     "
            print(f"{name.ljust(width)}  thr={cal.margin_threshold:.4f} "
                  f"esc={cal.escalation_fraction:>5.1%} "
                  f"rec={cal.recovery:>5.1%} cost={cal.relative_cost:>5.1%} "
                  f"[{marker}] n={cal.num_scenes}")
        return 0
    import json

    print(json.dumps(store.load(args.name).to_dict(), indent=2,
                     sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iTask reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tasks", help="list the mission library").set_defaults(
        func=_cmd_tasks)

    graph = sub.add_parser("graph", help="show a mission's knowledge graph")
    graph.add_argument("--task", required=True)
    graph.add_argument("--dot", action="store_true",
                       help="emit Graphviz DOT instead of ASCII")
    graph.set_defaults(func=_cmd_graph)

    detect = sub.add_parser("detect", help="detect on a generated scene")
    detect.add_argument("--task", required=True)
    detect.add_argument("--seed", type=int, default=0,
                        help="artifact cache seed")
    detect.add_argument("--scene-seed", type=int, default=42)
    detect.add_argument("--out", default=None,
                        help="write annotated scene PPM here")
    detect.set_defaults(func=_cmd_detect)

    simulate = sub.add_parser("simulate",
                              help="accelerator + GPU performance report")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--batch", type=int, default=1)
    simulate.set_defaults(func=_cmd_simulate)

    sub.add_parser("models", help="list cached models").set_defaults(
        func=_cmd_models)

    artifacts = sub.add_parser(
        "artifacts", help="inspect and maintain the checkpoint cache")
    artifacts_sub = artifacts.add_subparsers(dest="artifacts_command",
                                             required=True)
    art_list = artifacts_sub.add_parser(
        "list", help="per-entry integrity status and size")
    art_list.add_argument("--dir", default=None,
                          help="cache directory (default: REPRO_ARTIFACT_DIR "
                               "or the repo's .artifacts/)")
    art_list.set_defaults(func=_cmd_artifacts_list)

    art_verify = artifacts_sub.add_parser(
        "verify", help="verify every entry; exit 1 if any is corrupt")
    art_verify.add_argument("--dir", default=None)
    art_verify.add_argument("--quarantine", action="store_true",
                            help="move corrupt entries to quarantine/")
    art_verify.set_defaults(func=_cmd_artifacts_verify)

    art_gc = artifacts_sub.add_parser(
        "gc", help="remove temp/lock files and quarantined checkpoints")
    art_gc.add_argument("--dir", default=None)
    art_gc.add_argument("--dry-run", action="store_true")
    art_gc.add_argument("--keep-quarantine", action="store_true",
                        help="only remove temp/lock leftovers")
    art_gc.set_defaults(func=_cmd_artifacts_gc)

    engine = sub.add_parser(
        "engine", help="serving-engine utilities (micro-batched detection)")
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)
    engine_bench = engine_sub.add_parser(
        "bench",
        help="scenes/sec: per-call rebuild vs cached session vs engine")
    engine_bench.add_argument("--scenes", type=int, default=48,
                              help="scenes per timed pass")
    engine_bench.add_argument("--repeats", type=int, default=3,
                              help="interleaved timing rounds per mode")
    engine_bench.add_argument("--grid", type=int, default=3)
    engine_bench.add_argument("--seed", type=int, default=7)
    engine_bench.add_argument("--batch-sizes", default="1,8,32",
                              help="comma-separated engine max_batch sweep")
    engine_bench.add_argument("--workers", default="1,2",
                              help="comma-separated engine worker sweep")
    engine_bench.set_defaults(func=_cmd_engine_bench)

    engine_serve = engine_sub.add_parser(
        "serve",
        help="sharded serving: N engine processes behind a routing "
             "front-end with merged metrics")
    engine_serve.add_argument("--shards", type=int, default=2,
                              help="worker processes")
    engine_serve.add_argument("--tasks",
                              default="roadside_hazards,cargo_audit",
                              help="comma-separated missions to serve")
    engine_serve.add_argument("--scenes", type=int, default=32,
                              help="scenes to drive through the tier")
    engine_serve.add_argument("--grid", type=int, default=3)
    engine_serve.add_argument("--seed", type=int, default=0,
                              help="artifact/base seed")
    engine_serve.add_argument("--max-batch", type=int, default=8,
                              help="per-shard engine max_batch")
    engine_serve.add_argument("--workers", type=int, default=1,
                              help="threads per shard engine")
    engine_serve.add_argument("--queue-size", type=int, default=64,
                              help="per-shard front-end queue bound")
    engine_serve.add_argument("--cascade", action="store_true",
                              help="serve each mission through the "
                                   "cascade router")
    engine_serve.add_argument("--host", default="127.0.0.1",
                              help="front-end aggregator host")
    engine_serve.add_argument("--port", type=int, default=0,
                              help="front-end aggregator port "
                                   "(0 = ephemeral)")
    engine_serve.add_argument("--hold", type=float, default=None,
                              help="seconds to keep serving metrics "
                                   "after the workload")
    engine_serve.set_defaults(func=_cmd_engine_serve)

    quant = sub.add_parser(
        "quant", help="quantized-inference utilities (exact BLAS kernels)")
    quant_sub = quant.add_subparsers(dest="quant_command", required=True)
    quant_bench = quant_sub.add_parser(
        "bench",
        help="per-site and end-to-end latency: exact BLAS vs int64 reference")
    quant_bench.add_argument("--rows", type=int, default=4096,
                             help="activation rows per site GEMM")
    quant_bench.add_argument("--batch-images", type=int, default=256,
                             help="images in the end-to-end forward batch")
    quant_bench.add_argument("--repeats", type=int, default=5,
                             help="interleaved timing rounds")
    quant_bench.add_argument("--weight-bits", type=int, default=8)
    quant_bench.add_argument("--act-bits", type=int, default=8)
    quant_bench.add_argument("--seed", type=int, default=0)
    quant_bench.set_defaults(func=_cmd_quant_bench)

    obs = sub.add_parser(
        "obs", help="telemetry: report, export, trace, compare, serve, "
                    "top, slo")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_report = obs_sub.add_parser(
        "report", help="render a BENCH_*.json telemetry file")
    obs_report.add_argument("file", help="telemetry JSON path")
    obs_report.set_defaults(func=_cmd_obs_report)

    obs_export = obs_sub.add_parser(
        "export",
        help="run an instrumented detection workload and persist telemetry")
    obs_export.add_argument("--task", default="roadside_hazards")
    obs_export.add_argument("--grid", type=int, default=8,
                            help="scene grid (cells per side)")
    obs_export.add_argument("--repeats", type=int, default=3)
    obs_export.add_argument("--scene-seed", type=int, default=7)
    obs_export.add_argument("--out", default="BENCH_obs_export.json")
    obs_export.set_defaults(func=_cmd_obs_export)

    obs_trace = obs_sub.add_parser(
        "trace",
        help="convert a telemetry file's spans to Chrome trace-event JSON")
    obs_trace.add_argument("file", help="telemetry JSON path")
    obs_trace.add_argument("--out", default="trace.json")
    obs_trace.set_defaults(func=_cmd_obs_trace)

    obs_compare = obs_sub.add_parser(
        "compare",
        help="gate a telemetry file against a baseline; exit 1 on regression")
    obs_compare.add_argument("baseline")
    obs_compare.add_argument("current")
    obs_compare.add_argument("--max-regress", default="15%",
                             help="allowed growth per stage (e.g. 15%%)")
    obs_compare.add_argument(
        "--metric", default="p50_s",
        choices=["p50_s", "mean_s", "total_s", "max_s", "share"],
        help="share = fraction of the dominant stage's total "
             "(machine-speed independent)")
    obs_compare.add_argument("--stages", default=None,
                             help="comma-separated stage allowlist")
    obs_compare.set_defaults(func=_cmd_obs_compare)

    obs_serve = obs_sub.add_parser(
        "serve",
        help="stdlib HTTP server: /metrics (Prometheus), /healthz, /slo, "
             "/snapshot")
    obs_serve.add_argument("--host", default="127.0.0.1")
    obs_serve.add_argument("--port", type=int, default=9464,
                           help="listen port (0 = ephemeral)")
    obs_serve.add_argument("--duration", type=float, default=None,
                           help="seconds to serve (default: until Ctrl-C)")
    obs_serve.add_argument("--demo", action="store_true",
                           help="drive request-scoped engine traffic while "
                                "serving, so scrapes show a live hot path")
    obs_serve.add_argument("--task", default="roadside_hazards",
                           help="demo traffic mission")
    obs_serve.add_argument("--grid", type=int, default=6,
                           help="demo scene grid (cells per side)")
    obs_serve.add_argument("--slo-config", default=None,
                           help="SLO JSON for /slo (default: built-ins)")
    obs_serve.set_defaults(func=_cmd_obs_serve)

    obs_top = obs_sub.add_parser(
        "top",
        help="poll a serve endpoint's /snapshot; print interval rates "
             "and percentiles")
    obs_top.add_argument("--url", action="append", default=None,
                         help="base URL of a running `repro obs serve` / "
                              "shard endpoint; repeat to merge several "
                              "(default: http://127.0.0.1:9464)")
    obs_top.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls")
    obs_top.add_argument("--frames", type=int, default=None,
                         help="interval frames to print (default: forever)")
    obs_top.set_defaults(func=_cmd_obs_top)

    obs_slo = obs_sub.add_parser(
        "slo",
        help="evaluate SLO objectives against telemetry files; "
             "--gate exits 1 on violation")
    obs_slo.add_argument("file", nargs="+", help="telemetry JSON path(s)")
    obs_slo.add_argument("--config", default=None,
                         help="SLO JSON config (default: built-ins)")
    obs_slo.add_argument("--gate", action="store_true",
                         help="non-zero exit when any objective fails")
    obs_slo.set_defaults(func=_cmd_obs_slo)

    fuzz = sub.add_parser(
        "fuzz", help="differential scenario fuzzer (float vs quantized vs "
                     "batched vs streaming)")
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run", help="sweep generated scenarios; exit 1 on any divergence")
    fuzz_run.add_argument("--seed", type=int, default=0,
                          help="first scenario seed")
    fuzz_run.add_argument("--budget", type=int, default=200,
                          help="number of scenarios to execute")
    fuzz_run.add_argument("--artifacts-dir", default=".fuzz_artifacts",
                          help="where replayable divergence case files go")
    fuzz_run.add_argument("--no-shrink", action="store_true",
                          help="record failures without minimizing them")
    fuzz_run.set_defaults(func=_cmd_fuzz_run)

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-run recorded case files; exit 1 if any diverges")
    fuzz_replay.add_argument("case", nargs="+", help="case JSON path(s)")
    fuzz_replay.add_argument("--max-print", type=int, default=10,
                             help="divergences to print per case")
    fuzz_replay.set_defaults(func=_cmd_fuzz_replay)

    fuzz_corpus = fuzz_sub.add_parser(
        "corpus", help="replay the committed seed corpus; exit 1 on "
                       "divergence or an empty corpus")
    fuzz_corpus.add_argument("--dir", default=None,
                             help="corpus directory (default: the repo's "
                                  "tests/fuzz_corpus)")
    fuzz_corpus.add_argument("--max-print", type=int, default=10)
    fuzz_corpus.set_defaults(func=_cmd_fuzz_corpus)

    stream = sub.add_parser(
        "stream", help="incremental streaming detection (frame-delta "
                       "gating, tracker-prior carryover)")
    stream_sub = stream.add_subparsers(dest="stream_command", required=True)

    stream_run = stream_sub.add_parser(
        "run", help="drive a delta-gated streaming detector over a "
                    "generated sequence")
    stream_run.add_argument("--task", default="roadside_hazards")
    stream_run.add_argument("--seed", type=int, default=0,
                            help="artifact cache / model seed")
    stream_run.add_argument("--scene-seed", type=int, default=7)
    stream_run.add_argument("--frames", type=int, default=12)
    stream_run.add_argument("--grid", type=int, default=4)
    stream_run.add_argument("--motion-rate", type=float, default=0.1,
                            help="fraction of live objects re-rendered "
                                 "per frame (<1 freezes static cells)")
    stream_run.add_argument("--no-delta-gate", action="store_true",
                            help="full recompute every frame")
    stream_run.add_argument("--motion-threshold", type=float, default=0.0,
                            help="tracker-prior carryover threshold "
                                 "(mean abs pixel delta; 0 = exact only)")
    stream_run.add_argument("--refresh-every", type=int, default=0,
                            help="force a full re-score every N frames")
    stream_run.add_argument("--untrained", action="store_true",
                            help="random student instead of the artifact "
                                 "cache (hermetic)")
    stream_run.set_defaults(func=_cmd_stream_run)

    stream_bench = stream_sub.add_parser(
        "bench", help="frames/sec: full recompute vs delta gating across "
                      "motion densities; exit 1 if gated tracks are not "
                      "bit-identical")
    stream_bench.add_argument("--task", default="roadside_hazards")
    stream_bench.add_argument("--seed", type=int, default=0)
    stream_bench.add_argument("--scene-seed", type=int, default=3)
    stream_bench.add_argument("--cameras", type=int, default=2)
    stream_bench.add_argument("--frames", type=int, default=16)
    stream_bench.add_argument("--grid", type=int, default=5)
    stream_bench.add_argument("--motion-rates", default="0.0,0.05,0.25,1.0",
                              help="comma-separated motion densities")
    stream_bench.add_argument("--motion-threshold", type=float, default=0.0,
                              help="benchmark carryover gating instead of "
                                   "exact gating")
    stream_bench.add_argument("--refresh-every", type=int, default=0)
    stream_bench.add_argument("--untrained", action="store_true",
                              help="random student instead of the artifact "
                                   "cache (hermetic)")
    stream_bench.set_defaults(func=_cmd_stream_bench)

    cascade = sub.add_parser(
        "cascade", help="adaptive dual-config cascade (quantized first, "
                        "escalate on doubt)")
    cascade_sub = cascade.add_subparsers(dest="cascade_command", required=True)

    cascade_route = cascade_sub.add_parser(
        "route", help="route generated scenes; print per-scene decisions")
    cascade_route.add_argument("--task", required=True)
    cascade_route.add_argument("--seed", type=int, default=0,
                               help="artifact cache seed")
    cascade_route.add_argument("--scene-seed", type=int, default=42)
    cascade_route.add_argument("--scenes", type=int, default=8)
    cascade_route.add_argument("--threshold", type=float, default=None,
                               help="margin threshold (default: the stored "
                                    "calibration, else the config default)")
    cascade_route.add_argument("--max-escalation", type=float, default=1.0,
                               help="escalation budget fraction "
                                    "(>= 1 disables)")
    cascade_route.set_defaults(func=_cmd_cascade_route)

    cascade_cal = cascade_sub.add_parser(
        "calibrate",
        help="sweep the recovery/cost frontier; pick the margin threshold")
    cascade_cal.add_argument("--task", required=True)
    cascade_cal.add_argument("--seed", type=int, default=0)
    cascade_cal.add_argument("--scene-seed", type=int, default=10_000)
    cascade_cal.add_argument("--scenes", type=int, default=64)
    cascade_cal.add_argument("--score-threshold", type=float, default=0.35)
    cascade_cal.add_argument("--cost-ratio", type=float, default=None,
                             help="escalation cost in fast-path units "
                                  "(default: measure via the hw simulator)")
    cascade_cal.add_argument("--target-recovery", type=float, default=0.8)
    cascade_cal.add_argument("--max-cost", type=float, default=0.4)
    cascade_cal.add_argument("--frontier", action="store_true",
                             help="print every swept operating point")
    cascade_cal.add_argument("--save", action="store_true",
                             help="persist in the artifact registry")
    cascade_cal.add_argument("--gate", action="store_true",
                             help="exit 1 when the targets are not met")
    cascade_cal.set_defaults(func=_cmd_cascade_calibrate)

    cascade_show = cascade_sub.add_parser(
        "show", help="list stored calibrations, or dump one as JSON")
    cascade_show.add_argument("name", nargs="?", default=None)
    cascade_show.add_argument("--dir", default=None,
                              help="registry directory (default: "
                                   "REPRO_ARTIFACT_DIR or .artifacts/)")
    cascade_show.set_defaults(func=_cmd_cascade_show)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
