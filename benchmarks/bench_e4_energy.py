"""E4 — Energy comparison against the GPU baseline.

Paper claim: "... and a 40% reduction in energy consumption compared to
GPU-based implementations".

Two accountings are reported (see EXPERIMENTS.md for why both matter):

1. **per-inference core energy** — the accelerator's dynamic + static
   energy for one inference vs. the GPU's busy power × latency.  Dedicated
   int8 silicon wins this by orders of magnitude; it is not the paper's
   ~40 % number.
2. **streaming platform energy** — board-level energy per frame of a
   continuous 30 fps stream, where idle power dominates.  This is the
   accounting under which a "~40 % reduction" is the physically
   consistent reading of the abstract, and the default constants land in
   that regime.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import finalize_benchmark, print_table, quantized_configuration
from repro.hw import (
    AcceleratorConfig,
    Compiler,
    GPUConfig,
    GPUModel,
    Simulator,
    streaming_comparison,
)


def run_experiment(fps_values=(15.0, 30.0, 60.0)):
    accel_config = AcceleratorConfig.edge_default()
    program = Compiler(accel_config).compile(quantized_configuration().model)
    accel = Simulator(accel_config).simulate(program)
    gpu = GPUModel(GPUConfig.jetson_class()).simulate(program)

    core_rows = [{
        "metric": "latency_ms",
        "accelerator": accel.latency_ms,
        "gpu": gpu.latency_ms,
    }, {
        "metric": "core_energy_mj_per_inference",
        "accelerator": accel.energy_per_inference_j * 1e3,
        "gpu": gpu.energy_per_inference_j * 1e3,
    }, {
        "metric": "core_energy_reduction_pct",
        "accelerator": 100.0 * (1.0 - accel.energy_per_inference_j
                                / gpu.energy_per_inference_j),
        "gpu": None,
    }]

    breakdown_rows = [
        {"component": component, "energy_uj": joules * 1e6}
        for component, joules in sorted(accel.energy_breakdown_j.items())
    ]

    stream_rows = []
    for fps in fps_values:
        result = streaming_comparison(accel.latency_s, gpu.latency_s, fps=fps)
        stream_rows.append({
            "fps": fps,
            "speedup": result["speedup"],
            "accel_mj_per_frame": result["accel_energy_per_frame_mj"],
            "gpu_mj_per_frame": result["gpu_energy_per_frame_mj"],
            "energy_reduction_pct": result["energy_reduction_pct"],
        })
    return core_rows, breakdown_rows, stream_rows


def test_e4_energy(benchmark):
    core_rows, breakdown_rows, stream_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    print_table("E4: core energy per inference", core_rows)
    print_table("E4: accelerator energy breakdown", breakdown_rows)
    print_table("E4: streaming platform energy", stream_rows)
    # Direction: accelerator saves energy under both accountings.
    core_reduction = core_rows[2]["accelerator"]
    assert core_reduction > 50.0
    at_30fps = next(r for r in stream_rows if r["fps"] == 30.0)
    # The paper's ~40 % platform-level regime.
    assert 20.0 < at_30fps["energy_reduction_pct"] < 70.0


def main():
    core_rows, breakdown_rows, stream_rows = run_experiment()
    print_table("E4: core energy per inference", core_rows)
    print_table("E4: accelerator energy breakdown", breakdown_rows)
    print_table("E4: streaming platform energy", stream_rows)
    finalize_benchmark("e4_energy", core_rows,
                       breakdown=breakdown_rows, streaming=stream_rows)


if __name__ == "__main__":
    sys.exit(main())
