"""E15 — Open-loop load: sharded serving tier vs single-process engine.

The paper's deployment story is real-time detection under heavy load on
constrained hardware.  PR 4's :class:`~repro.serve.DetectionEngine` is a
thread pool inside one interpreter — the GIL caps the tier at roughly
one core of python glue regardless of worker count.  This benchmark
drives the same **open-loop** workload (Poisson arrivals at a fixed
offered rate, independent of service progress — the honest load model:
clients do not slow down because the server is busy) against:

* ``baseline`` — per-mission ``DetectionEngine``\\ s in one process;
* ``sharded``  — the same engines behind a
  :class:`~repro.serve.ShardRouter` across N worker processes.

The workload mixes **warm** missions (a fixed set, session-cached after
first use) with occasional **cold** missions (unique fingerprints that
always pay session construction), and spreads requests over a zipf-ish
**tenant skew**.  Both tiers see the *identical* arrival schedule.
Submission never blocks: when a queue is full the request is shed and
counted, which is what "open loop at 4x capacity" means operationally.

**Reported per tier**: served scenes/sec, shed fraction, and the
p50/p99 of served-request latency (submit to completed future).

**Acceptance gate** (full mode, hosts with >= 4 CPU cores): with >= 4
shards the sharded tier must sustain **>= 3x** the baseline's served
scenes/sec at equal-or-better p99.  On smaller hosts the shards
time-slice the same core as the baseline thread pool, so the gate is
reported but not enforced (there is no parallel speedup to measure —
the run still validates transport, shedding, and aggregation).

**Always checked, both modes**: the front-end's merged ``/snapshot``
(served over HTTP by :meth:`ShardRouter.serve_metrics`) is
bit-identical to :func:`repro.obs.merge_snapshots` over the individual
shard documents fetched from each worker's own HTTP endpoint — the
cross-process aggregation property the obs layer promises.

Telemetry lands in ``BENCH_e15_load.json`` with the cross-shard
**merged snapshot** in the ``merge`` block, so the
``benchmarks/slo/serving.json`` burn-rate gate (``repro obs slo``) and
``repro obs compare --metric share`` evaluate the sharded tier, not the
front-end process.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_e15_load.py
    PYTHONPATH=src python benchmarks/bench_e15_load.py --smoke
    PYTHONPATH=src python benchmarks/bench_e15_load.py --shards 4
"""

import json
import os
import sys
import threading
import time
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import bench_output_dir, print_table
from repro.data import (
    SceneConfig,
    SceneGenerator,
    attribute_head_spec,
    get_task,
)
from repro.data.datasets import num_classes
from repro.detect import TaskDetector
from repro.kg import GraphMatcher, SimulatedLLM
from repro.nn import VisionTransformer, ViTConfig
from repro.obs import get_registry
from repro.obs.context import request_context
from repro.obs.export import merge_snapshots
from repro.serve import (
    EngineConfig,
    EngineRejected,
    ShardConfig,
    ShardRejected,
    ShardRouter,
)

SEED = 20_250
WARM_TASKS = ["roadside_hazards", "cargo_audit", "valve_inspection"]
TENANTS = [f"tenant-{i}" for i in range(6)]
COLD_FRACTION = 0.05
OVERLOAD_FACTOR = 4.0
TARGET_SPEEDUP = 3.0
MIN_GATE_CPUS = 4


class SessionFactory:
    """Picklable worker factory: mission key -> ready detector.

    Mission keys are ``"<task>"`` (warm) or ``"<task>:cold<i>"`` (cold
    — a unique fingerprint that always pays session construction).
    The student model is rebuilt deterministically once per process
    and cached on the instance; each mission builds its own knowledge
    graph + matcher, which is the per-session cost cold missions pay.
    """

    def __init__(self, seed: int = SEED) -> None:
        self.seed = seed
        self._model = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_model"] = None  # never pickle models across processes
        return state

    def __call__(self, mission: str) -> TaskDetector:
        if self._model is None:
            config = ViTConfig.student(num_classes(), attribute_head_spec())
            self._model = VisionTransformer(
                config, rng=np.random.default_rng(self.seed))
        task_name = mission.split(":", 1)[0]
        kg = SimulatedLLM().generate_for_task(get_task(task_name))
        return TaskDetector(self._model, matcher=GraphMatcher(kg),
                            score_threshold=0.35)


class SingleProcessTier:
    """The baseline: per-mission engines inside this interpreter.

    Mirrors the :class:`ShardRouter` submit surface (mission-keyed,
    non-blocking shed) so the open-loop driver is tier-agnostic.
    """

    def __init__(self, factory: SessionFactory,
                 engine_config: EngineConfig) -> None:
        self.factory = factory
        self.engine_config = engine_config
        self._engines = {}
        self._lock = threading.Lock()

    def _engine_for(self, mission: str):
        with self._lock:
            engine = self._engines.get(mission)
            if engine is None:
                from repro.serve import DetectionEngine

                engine = DetectionEngine(self.factory(mission),
                                         self.engine_config)
                self._engines[mission] = engine
            return engine

    def submit(self, scene, mission, *, block=False):
        return self._engine_for(mission).submit(scene, block=block)

    def close(self) -> None:
        for engine in self._engines.values():
            engine.close(wait=True)


def make_schedule(duration_s: float, rate: float, rng):
    """Poisson arrival schedule: (offset_s, mission, tenant) triples.

    Mission mix: warm tasks uniform, a ``COLD_FRACTION`` of arrivals
    get a unique cold fingerprint.  Tenant skew is zipf-ish: tenant i
    is ~1/(i+1) as likely as tenant 0, so one tenant dominates — the
    regime the per-tenant fairness cap exists for.
    """
    weights = np.array([1.0 / (i + 1) for i in range(len(TENANTS))])
    weights /= weights.sum()
    schedule = []
    offset = 0.0
    cold = 0
    while True:
        offset += rng.exponential(1.0 / rate)
        if offset >= duration_s:
            return schedule
        if rng.random() < COLD_FRACTION:
            mission = f"{WARM_TASKS[cold % len(WARM_TASKS)]}:cold{cold}"
            cold += 1
        else:
            mission = WARM_TASKS[rng.integers(len(WARM_TASKS))]
        tenant = TENANTS[rng.choice(len(TENANTS), p=weights)]
        schedule.append((offset, mission, tenant))


def run_open_loop(tier, scenes, schedule, label: str):
    """Drive one tier through the arrival schedule; gather stats.

    Open loop: arrivals fire on the wall clock regardless of service
    progress.  A full queue sheds the request immediately (non-blocking
    submit) — served throughput and the latency percentiles cover the
    requests that were actually admitted.
    """
    latencies = []
    futures = []
    shed = 0
    start = time.perf_counter()
    for index, (offset, mission, tenant) in enumerate(schedule):
        delay = (start + offset) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        scene = scenes[index % len(scenes)]
        with request_context(name=f"{label}.request", tenant=tenant,
                             mission=mission):
            submitted = time.perf_counter()
            try:
                future = tier.submit(scene, mission, block=False)
            except (EngineRejected, ShardRejected):
                shed += 1
                continue
        future.add_done_callback(
            lambda f, t0=submitted: latencies.append(
                time.perf_counter() - t0) if f.exception() is None else None)
        futures.append(future)
    for future in futures:
        try:
            future.result(timeout=120)
        except Exception:
            pass
    elapsed = time.perf_counter() - start
    served = len(latencies)
    ordered = sorted(latencies)

    def pct(p):
        if not ordered:
            return float("nan")
        return ordered[min(len(ordered) - 1, int(p / 100.0 * len(ordered)))]

    return {
        "tier": label,
        "offered": len(schedule),
        "served": served,
        "shed": shed,
        "duration_s": elapsed,
        "served_per_s": served / elapsed if elapsed > 0 else 0.0,
        "p50_ms": pct(50) * 1e3,
        "p99_ms": pct(99) * 1e3,
    }


def calibrate_rate(factory: SessionFactory, scenes) -> float:
    """Closed-loop scenes/sec of one warm session — the capacity unit
    the offered rate is a multiple of."""
    detector = factory(WARM_TASKS[0])
    detector.detect_batch(scenes[:2])  # warm caches out of the timing
    start = time.perf_counter()
    repeats = 3
    for _ in range(repeats):
        detector.detect_batch(scenes)
    elapsed = time.perf_counter() - start
    return (repeats * len(scenes)) / elapsed


def check_merge_bit_identity(router: ShardRouter) -> None:
    """Front-end merged /snapshot == merge of per-shard HTTP documents.

    Fetched over real HTTP from every worker's own ephemeral-port
    server and from the front-end aggregator, after traffic stopped
    (static counters), so the comparison is cross-process and exact.
    """
    shard_docs = []
    for url in router.shard_metrics_urls():
        with urllib.request.urlopen(url + "/snapshot", timeout=10) as resp:
            shard_docs.append(json.load(resp))
    front = router.serve_metrics()
    try:
        with urllib.request.urlopen(front.url + "/snapshot",
                                    timeout=10) as resp:
            front_doc = json.load(resp)
    finally:
        front.stop()
    expected = merge_snapshots(shard_docs)
    if json.dumps(front_doc, sort_keys=True) != \
            json.dumps(expected, sort_keys=True):
        raise AssertionError(
            "front-end merged /snapshot is not bit-identical to "
            "merge_snapshots over the per-shard documents")


def run_experiment(smoke: bool = False, shards: int = None):
    """Both tiers through the same open-loop schedule; returns tables."""
    registry = get_registry()
    registry.reset()
    if shards is None:
        shards = 2 if smoke else 4
    duration_s = 2.0 if smoke else 8.0
    grid = 2 if smoke else 3
    factory = SessionFactory()
    scenes = SceneGenerator(SceneConfig(grid=grid),
                            seed=SEED).generate_batch(12)

    base_rate = calibrate_rate(factory, scenes)
    offered_rate = OVERLOAD_FACTOR * base_rate
    schedule = make_schedule(duration_s, offered_rate,
                             np.random.default_rng(SEED))

    engine_config = EngineConfig(max_batch=8, flush_ms=5.0, workers=1,
                                 queue_size=32)
    baseline_tier = SingleProcessTier(factory, engine_config)
    try:
        baseline = run_open_loop(baseline_tier, scenes, schedule, "baseline")
    finally:
        baseline_tier.close()

    shard_config = ShardConfig(
        num_shards=shards,
        engine=engine_config,
        queue_size=32,
        max_inflight_per_tenant=None if smoke else 64,
        metrics=True,
        base_seed=SEED,
        start_method="fork",
    )
    router = ShardRouter(factory, shard_config)
    try:
        sharded = run_open_loop(router, scenes, schedule, "sharded")
        sharded["shards"] = shards
        check_merge_bit_identity(router)
        merged = router.aggregate_snapshot()
    finally:
        router.close()

    speedup = (sharded["served_per_s"] / baseline["served_per_s"]
               if baseline["served_per_s"] > 0 else float("nan"))
    rows = [baseline, sharded]
    tables = {
        "rows": rows,
        "workload": [{
            "base_rate_scenes_per_s": base_rate,
            "offered_rate_scenes_per_s": offered_rate,
            "overload_factor": OVERLOAD_FACTOR,
            "arrivals": len(schedule),
            "duration_s": duration_s,
            "warm_tasks": len(WARM_TASKS),
            "cold_fraction": COLD_FRACTION,
            "tenants": len(TENANTS),
            "shards": shards,
            "cpus": os.cpu_count(),
            "speedup": speedup,
        }],
    }
    return tables, merged


def _print_results(tables) -> None:
    print_table("E15: open-loop workload", tables["workload"])
    print_table("E15: served throughput and latency per tier",
                tables["rows"])
    print()
    print(get_registry().report("E15 open-loop load"))


def _finalize(tables, merged) -> str:
    """Persist telemetry with the cross-shard merged snapshot as the
    ``merge`` block, so downstream SLO gates evaluate the sharded tier
    (worker registries), not this front-end process."""
    from repro.obs import build_telemetry, write_telemetry

    registry = get_registry()
    doc = build_telemetry(
        "e15_load",
        registry=registry,
        rows=tables["rows"],
        tables={"workload": tables["workload"]},
        seed=SEED,
        manifest_extra={
            "counters": {name: counter.value
                         for name, counter in registry.counters.items()},
            "dropped_spans": registry.dropped_spans,
        },
    )
    doc["merge"] = merged
    # An open-loop run records one span per arrival — tens of thousands
    # of them.  The gates read obs.timers and merge only, so keep the
    # document reviewable instead of shipping megabytes of spans.
    doc["obs"]["spans"] = []
    path = os.path.join(bench_output_dir(), "BENCH_e15_load.json")
    write_telemetry(path, doc)
    print(f"[telemetry] wrote {path}")
    return path


def test_e15_load(benchmark):
    tables, merged = benchmark.pedantic(
        run_experiment, kwargs={"smoke": True}, rounds=1, iterations=1)
    _print_results(tables)
    rows = {row["tier"]: row for row in tables["rows"]}
    assert rows["sharded"]["served"] > 0
    assert rows["baseline"]["served"] > 0
    # Open loop at 4x capacity must actually shed somewhere.
    assert rows["baseline"]["shed"] > 0
    # The merged snapshot saw every scene the shards served.
    from repro.obs.registry import FP_SCALE

    scenes_fp = merged["counters"]["engine.scenes"]["value_fp"]
    assert scenes_fp == rows["sharded"]["served"] * FP_SCALE


def main():
    smoke = "--smoke" in sys.argv[1:]
    shards = None
    if "--shards" in sys.argv[1:]:
        shards = int(sys.argv[sys.argv.index("--shards") + 1])
    tables, merged = run_experiment(smoke=smoke, shards=shards)
    _print_results(tables)
    _finalize(tables, merged)
    if smoke:
        return 0
    workload = tables["workload"][0]
    rows = {row["tier"]: row for row in tables["rows"]}
    speedup = workload["speedup"]
    p99_ok = rows["sharded"]["p99_ms"] <= rows["baseline"]["p99_ms"]
    cpus = os.cpu_count() or 1
    if cpus < MIN_GATE_CPUS:
        print(f"NOTE: host has {cpus} CPU core(s) < {MIN_GATE_CPUS}; the "
              f">= {TARGET_SPEEDUP:.0f}x gate is reported, not enforced "
              f"(measured {speedup:.2f}x, p99 "
              f"{'<=' if p99_ok else '>'} baseline)")
        return 0
    failed = False
    if speedup < TARGET_SPEEDUP:
        print(f"WARNING: sharded tier sustained {speedup:.2f}x baseline "
              f"scenes/sec (target >= {TARGET_SPEEDUP:.0f}x with "
              f"{workload['shards']} shards)")
        failed = True
    if not p99_ok:
        print(f"WARNING: sharded p99 {rows['sharded']['p99_ms']:.1f}ms > "
              f"baseline p99 {rows['baseline']['p99_ms']:.1f}ms")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
