"""E1 — Task-specific vs quantized configuration accuracy.

Paper claim: "the task-specific configuration achieves a 15% higher
accuracy over the quantized configuration in specific scenarios".

For every task in the library we evaluate both configurations on the
task's held-out *specific scenario*: a window set dominated by the
mission's positives and hard negatives, scored with the same KG-matched
decision rule the deployed detector uses.  We also report the scene-level
task accuracy restricted to object cells.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    DECISION_THRESHOLD,
    eval_scenes,
    eval_windows,
    finalize_benchmark,
    print_table,
    quantized_configuration,
    specialist,
    task_matcher,
)
from repro.data import task_names, get_task
from repro.detect import TaskDetector, task_accuracy, window_task_accuracy


def run_experiment():
    rows = []
    quantized = quantized_configuration().model
    scenes = eval_scenes()
    for name in task_names():
        matcher = task_matcher(name)
        windows = eval_windows(name)
        spec_model = specialist(name).model

        spec_win = window_task_accuracy(spec_model, windows, matcher,
                                        threshold=DECISION_THRESHOLD)
        quant_win = window_task_accuracy(quantized, windows, matcher,
                                         threshold=DECISION_THRESHOLD)
        task = get_task(name)
        spec_scene = task_accuracy(
            TaskDetector(spec_model, matcher, score_threshold=DECISION_THRESHOLD),
            scenes, task, object_cells_only=True)
        quant_scene = task_accuracy(
            TaskDetector(quantized, matcher, score_threshold=DECISION_THRESHOLD),
            scenes, task, object_cells_only=True)
        rows.append({
            "task": name,
            "task_specific": spec_win,
            "quantized": quant_win,
            "gap_pct": 100.0 * (spec_win - quant_win),
            "task_specific_scene": spec_scene,
            "quantized_scene": quant_scene,
        })
    mean_gap = sum(r["gap_pct"] for r in rows) / len(rows)
    rows.append({
        "task": "MEAN",
        "task_specific": sum(r["task_specific"] for r in rows) / len(rows),
        "quantized": sum(r["quantized"] for r in rows) / len(rows),
        "gap_pct": mean_gap,
        "task_specific_scene": sum(r["task_specific_scene"] for r in rows) / len(rows),
        "quantized_scene": sum(r["quantized_scene"] for r in rows) / len(rows),
    })
    return rows


def test_e1_config_accuracy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E1: configuration accuracy on specific scenarios", rows)
    mean = rows[-1]
    # Reproduction target: the task-specific configuration wins on its
    # scenario (paper: ~+15 %); we assert the direction and a nontrivial gap.
    assert mean["task_specific"] > mean["quantized"]
    assert mean["gap_pct"] > 2.0


def main():
    rows = run_experiment()
    print_table("E1: configuration accuracy on specific scenarios", rows)
    finalize_benchmark("e1_config_accuracy", rows)


if __name__ == "__main__":
    sys.exit(main())
