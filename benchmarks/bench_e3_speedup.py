"""E3 — Accelerator speedup over the GPU baseline.

Paper claim: "the hardware-accelerated iTask system achieves a 3.5×
speedup ... compared to GPU-based implementations".

The quantized student is compiled to the accelerator and simulated at
batch 1 (the edge streaming case); the same workload runs through the
calibrated edge-GPU roofline model (both a conservative and an optimistic
host).  A model-size sweep shows where the advantage comes from: tiny
batch-1 GEMMs leave the GPU launch-bound while the systolic array keeps
its utilization.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import (
    artifact_cache_counters,
    finalize_benchmark,
    print_table,
    quantized_configuration,
)
from repro.data import attribute_head_spec, build_window_dataset
from repro.data.datasets import num_classes
from repro.hw import (
    AcceleratorConfig,
    Compiler,
    GPUConfig,
    GPUModel,
    Simulator,
)
from repro.nn import VisionTransformer, ViTConfig
from repro.obs import get_registry
from repro.quant import quantize_vit


def _quantize_fresh(config: ViTConfig):
    """Quantize an untrained model of the given size (timing only)."""
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    calibration = np.random.default_rng(1).random(
        (16, 3, config.image_size, config.image_size)).astype(np.float32)
    return quantize_vit(model, calibration)


def run_experiment():
    accel_config = AcceleratorConfig.edge_default()
    simulator = Simulator(accel_config)
    gpu = GPUModel(GPUConfig.jetson_class())
    gpu_fast = GPUModel(GPUConfig.fast_host())

    workloads = [("student-int8 (deployed)", quantized_configuration().model)]
    for label, config in [
        ("tiny", ViTConfig(dim=32, depth=1, num_heads=2,
                           num_classes=num_classes(),
                           attribute_heads=attribute_head_spec())),
        ("teacher-sized", ViTConfig.teacher(num_classes(), attribute_head_spec())),
    ]:
        workloads.append((label, _quantize_fresh(config)))

    rows = []
    for label, quantized in workloads:
        program = Compiler(accel_config).compile(quantized)
        accel = simulator.simulate(program)
        slow = gpu.simulate(program)
        fast = gpu_fast.simulate(program)
        rows.append({
            "model": label,
            "accel_ms": accel.latency_ms,
            "gpu_ms": slow.latency_ms,
            "gpu_graphs_ms": fast.latency_ms,
            "speedup_vs_gpu": slow.latency_s / accel.latency_s,
            "speedup_vs_graphs": fast.latency_s / accel.latency_s,
            "accel_util_pct": accel.array_utilization * 100.0,
        })
    return rows


def test_e3_speedup(benchmark):
    get_registry().reset()
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E3: accelerator vs GPU latency (batch 1)", rows)
    print(get_registry().report("E3 simulator stages"))
    deployed = rows[0]
    # Paper reports 3.5x; our calibrated models should land in the same
    # regime (accelerator clearly ahead, single-digit factor vs the
    # optimized-host baseline).
    assert deployed["speedup_vs_gpu"] > 2.0
    assert 1.5 < deployed["speedup_vs_graphs"] < 20.0


def test_e3_accelerator_inference_kernel(benchmark):
    """Time the actual integer-inference software kernel (not the model),
    so pytest-benchmark has a real hot loop to characterize."""
    quantized = quantized_configuration().model
    images = np.random.default_rng(0).random((1, 3, 32, 32)).astype(np.float32)
    benchmark(lambda: quantized(images))


def main():
    get_registry().reset()
    rows = run_experiment()
    print_table("E3: accelerator vs GPU latency (batch 1)", rows)
    print(get_registry().report("E3 simulator stages"))
    print(f"artifact cache: {artifact_cache_counters()}")
    finalize_benchmark("e3_speedup", rows)


if __name__ == "__main__":
    sys.exit(main())
