"""Shared infrastructure for the experiment benchmarks.

Every ``bench_eN_*.py`` regenerates one of the paper's tables/figures.
Heavy model training is delegated to the session-wide artifact cache
(:class:`repro.core.ArtifactBuilder`), so the first benchmark run pays the
training cost once and subsequent runs load checkpoints.

Each benchmark module exposes

* ``run_experiment(...) -> rows`` — pure experiment logic returning a list
  of row dicts (what EXPERIMENTS.md records);
* ``test_*`` functions using the pytest-benchmark fixture, so
  ``pytest benchmarks/ --benchmark-only`` both regenerates the tables
  (printed to stdout) and times the hot paths;
* a ``main()`` so ``python benchmarks/bench_eN_*.py`` works standalone.

Standalone runs end with :func:`finalize_benchmark`, which writes the
run's telemetry — run manifest (git sha, seed, platform), per-stage span
stats with p50/p90/p99, counters, and the experiment rows — to
``BENCH_<name>.json`` next to the repository root (override the
directory with ``REPRO_BENCH_DIR``).  Those files are the durable perf
trajectory: ``repro obs report/trace/compare`` consume them, and CI
gates hot-path regressions with ``repro obs compare``.
"""

from __future__ import annotations

import functools
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import ArtifactBuilder
from repro.data import SceneConfig, SceneGenerator, build_task_windows, get_task
from repro.kg import GraphMatcher, SimulatedLLM

EVAL_SEED = 10_000
DECISION_THRESHOLD = 0.35

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@functools.lru_cache(maxsize=1)
def builder() -> ArtifactBuilder:
    return ArtifactBuilder(seed=0)


def artifact_cache_counters() -> Dict[str, float]:
    """Artifact cache traffic (hit/miss/corrupt/quarantined/rebuild) recorded
    in the global obs registry by :class:`ArtifactBuilder` lookups."""
    from repro.obs import get_registry

    return {
        name: counter.value
        for name, counter in get_registry().counters.items()
        if name.startswith("artifacts.")
    }


@functools.lru_cache(maxsize=1)
def teacher():
    return builder().teacher()


@functools.lru_cache(maxsize=1)
def multitask_student():
    return builder().multitask_student()


@functools.lru_cache(maxsize=None)
def specialist(task_name: str):
    return builder().task_student_by_name(task_name)


@functools.lru_cache(maxsize=None)
def quantized_configuration(weight_bits: int = 8, act_bits: int = 8):
    return builder().quantized(weight_bits=weight_bits, act_bits=act_bits)


@functools.lru_cache(maxsize=None)
def task_kg(task_name: str):
    return SimulatedLLM().generate_for_task(get_task(task_name))


@functools.lru_cache(maxsize=None)
def task_matcher(task_name: str) -> GraphMatcher:
    return GraphMatcher(task_kg(task_name))


@functools.lru_cache(maxsize=None)
def eval_windows(task_name: str, seed_offset: int = 0):
    """Held-out "specific scenario" window set (disjoint seed from training).

    Heavy on near-miss negatives: the evaluation regime where the
    configurations genuinely differ (E1's "specific scenarios").
    """
    return build_task_windows(
        get_task(task_name), seed=EVAL_SEED + seed_offset,
        num_positive=120, num_negative=180,
        hard_negative_fraction=0.7, near_miss_fraction=0.7,
    )


@functools.lru_cache(maxsize=None)
def eval_scenes(count: int = 24, seed: int = EVAL_SEED):
    return tuple(SceneGenerator(SceneConfig(), seed=seed).generate_batch(count))


# ----------------------------------------------------------------------
# table printing
# ----------------------------------------------------------------------
def print_table(title: str, rows: Sequence[Dict], columns: Optional[List[str]] = None) -> None:
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {
        col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    print(f"\n== {title} ==")
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    arr = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(np.clip(arr, 1e-12, None)).mean()))


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
def bench_output_dir() -> str:
    """Where ``BENCH_*.json`` files land (``REPRO_BENCH_DIR`` overrides)."""
    return os.environ.get("REPRO_BENCH_DIR", _REPO_ROOT)


def finalize_benchmark(
    name: str,
    rows: Optional[Sequence[Dict]] = None,
    seed: Optional[int] = EVAL_SEED,
    out: Optional[str] = None,
    **tables: Sequence[Dict],
) -> str:
    """Persist one standalone benchmark run as ``BENCH_<name>.json``.

    ``rows`` is the experiment's primary table; extra keyword tables are
    stored under their argument name.  The document also captures the
    global obs registry (span tree, p50/p90/p99 per stage, counters —
    including the ``artifacts.*`` cache traffic) and a run manifest, so
    every E-row in EXPERIMENTS.md can cite its provenance.  The manifest
    carries the counter snapshot and the span-buffer drop count so a
    truncated trace (``dropped_spans > 0``) is visible at a glance in
    the provenance header, not just deep in the obs block.
    """
    from repro.obs import build_telemetry, get_registry, write_telemetry

    registry = get_registry()
    dropped = registry.dropped_spans
    doc = build_telemetry(
        name,
        registry=registry,
        rows=rows,
        tables=tables or None,
        seed=seed,
        manifest_extra={
            "counters": {cname: counter.value
                         for cname, counter in registry.counters.items()},
            "dropped_spans": dropped,
        },
    )
    path = out or os.path.join(bench_output_dir(), f"BENCH_{name}.json")
    write_telemetry(path, doc)
    if dropped:
        print(f"[telemetry] WARNING: {dropped} span(s) dropped "
              f"(buffer full) — the recorded trace is incomplete")
    print(f"[telemetry] wrote {path}")
    return path
