"""E10 — End-to-end detection pipeline latency, per stage.

The paper's serving story ("real-time task-oriented detection at the
edge") depends on the *whole* pipeline — window extraction, model
forward, knowledge-graph matching, NMS — not just the accelerator GEMMs
that E3 times.  This benchmark runs :meth:`TaskDetector.detect` on a
large (default 25×25-cell) scene twice: once through the seed
reference implementation (per-cell crop loop + O(N²) Python NMS,
``vectorized=False``) and once through the vectorized hot path, asserts
the two produce identical detections, and reports the speedup plus a
per-stage latency breakdown from the ``repro.obs`` registry.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_e10_pipeline_latency.py
    PYTHONPATH=src python benchmarks/bench_e10_pipeline_latency.py --smoke

``--smoke`` shrinks the scene (CI-friendly, a couple of seconds).
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import print_table
from repro.data import SceneConfig, SceneGenerator, attribute_head_spec, get_task
from repro.data.datasets import num_classes
from repro.detect import TaskDetector
from repro.kg import GraphMatcher, SimulatedLLM
from repro.nn import VisionTransformer, ViTConfig
from repro.obs import get_registry

# Stages recorded by the detection hot path, in pipeline order.
PIPELINE_STAGES = [
    "detect.window_build",
    "detect.model_forward",
    "detect.kg_match",
    "detect.nms",
    "detect.total",
]


def _build_detectors(grid: int):
    """Fresh (untrained) student + task matcher: weights don't affect
    timing, and skipping ArtifactBuilder keeps the benchmark stateless."""
    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    kg = SimulatedLLM().generate_for_task(get_task("roadside_hazards"))
    scene = SceneGenerator(SceneConfig(grid=grid), seed=7).generate()
    common = dict(matcher=GraphMatcher(kg), score_threshold=0.0)
    reference = TaskDetector(model, vectorized=False, **common)
    vectorized = TaskDetector(model, vectorized=True, **common)
    return scene, reference, vectorized


def _time_detect(detector, scene, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        detector.detect(scene)
        best = min(best, time.perf_counter() - start)
    return best


def run_experiment(grid: int = 25, repeats: int = 3):
    scene, reference, vectorized = _build_detectors(grid)
    obs = get_registry()

    # Correctness gate: the vectorized path must reproduce the seed
    # detections exactly (same boxes, same keep order).
    ref_dets = reference.detect(scene)
    vec_dets = vectorized.detect(scene)
    assert [d.bbox for d in ref_dets] == [d.bbox for d in vec_dets], \
        "vectorized pipeline diverged from the reference implementation"
    np.testing.assert_allclose([d.score for d in ref_dets],
                               [d.score for d in vec_dets], rtol=1e-12)

    reference_s = _time_detect(reference, scene, repeats)
    obs.reset()  # isolate the vectorized run's per-stage numbers
    vectorized_s = _time_detect(vectorized, scene, repeats)
    stage_stats = obs.snapshot()["timers"]

    summary = [{
        "scene": f"{grid}x{grid} cells",
        "windows": grid * grid,
        "detections": len(vec_dets),
        "reference_ms": reference_s * 1e3,
        "vectorized_ms": vectorized_s * 1e3,
        "speedup": reference_s / vectorized_s,
    }]
    total = stage_stats.get("detect.total", {}).get("total_s", 0.0)
    stages = [
        {
            "stage": name,
            "calls": stats["calls"],
            "total_ms": stats["total_s"] * 1e3,
            "mean_ms": stats["mean_s"] * 1e3,
            "share_pct": 100.0 * stats["total_s"] / total if total else 0.0,
        }
        for name in PIPELINE_STAGES
        if (stats := stage_stats.get(name)) is not None
    ]
    return summary, stages


def _print_results(summary, stages) -> None:
    print_table("E10: end-to-end detect() latency (vectorized vs seed)", summary)
    print_table("E10: vectorized run, per-stage breakdown", stages)
    print()
    print(get_registry().report("E10 pipeline"))


def test_e10_pipeline_latency(benchmark):
    summary, stages = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    _print_results(summary, stages)
    assert summary[0]["speedup"] >= 3.0
    # Every pipeline stage must have been observed in the vectorized run.
    assert {row["stage"] for row in stages} >= set(PIPELINE_STAGES)


def main():
    smoke = "--smoke" in sys.argv[1:]
    summary, stages = run_experiment(grid=8 if smoke else 25,
                                     repeats=1 if smoke else 3)
    _print_results(summary, stages)
    if not smoke and summary[0]["speedup"] < 3.0:
        print(f"WARNING: speedup {summary[0]['speedup']:.2f}x below the 3x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
