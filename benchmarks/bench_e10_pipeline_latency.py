"""E10 — End-to-end detection pipeline latency, per stage.

The paper's serving story ("real-time task-oriented detection at the
edge") depends on the *whole* pipeline — window extraction, model
forward, knowledge-graph matching, NMS — not just the accelerator GEMMs
that E3 times.  This benchmark runs :meth:`TaskDetector.detect` on a
large (default 25×25-cell) scene twice: once through the seed
reference implementation (per-cell crop loop + O(N²) Python NMS,
``vectorized=False``) and once through the vectorized hot path, asserts
the two produce identical detections, and reports the speedup plus a
per-stage latency breakdown.

The stage list is **derived from the span tree** the pipeline records
(children of the last ``detect.total`` span), not hard-coded here — if a
stage is renamed or added in ``repro.detect.pipeline``, this benchmark
follows automatically and the two can never drift.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_e10_pipeline_latency.py
    PYTHONPATH=src python benchmarks/bench_e10_pipeline_latency.py --smoke

``--smoke`` shrinks the scene to 14×14 (CI-friendly, under a second)
while keeping per-stage shares stable enough for the CI regression gate
(``repro obs compare --metric share``).  Both modes persist the run — manifest, span tree, per-stage p50/p90/p99 — to
``BENCH_e10_pipeline_latency.json`` for ``repro obs report/trace/compare``.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import finalize_benchmark, print_table
from repro.data import SceneConfig, SceneGenerator, attribute_head_spec, get_task
from repro.data.datasets import num_classes
from repro.detect import TaskDetector
from repro.kg import GraphMatcher, SimulatedLLM
from repro.nn import VisionTransformer, ViTConfig
from repro.obs import get_registry

ROOT_STAGE = "detect.total"


def _build_detectors(grid: int):
    """Fresh (untrained) student + task matcher: weights don't affect
    timing, and skipping ArtifactBuilder keeps the benchmark stateless."""
    config = ViTConfig.student(num_classes(), attribute_head_spec())
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    kg = SimulatedLLM().generate_for_task(get_task("roadside_hazards"))
    scene = SceneGenerator(SceneConfig(grid=grid), seed=7).generate()
    common = dict(matcher=GraphMatcher(kg), score_threshold=0.0)
    reference = TaskDetector(model, vectorized=False, **common)
    vectorized = TaskDetector(model, vectorized=True, **common)
    return scene, reference, vectorized


def _time_detect(detector, scene, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        detector.detect(scene)
        best = min(best, time.perf_counter() - start)
    return best


def pipeline_stages(obs) -> list:
    """Stage names in pipeline order, read off the recorded span tree.

    Walks the last ``detect.total`` root's subtree depth-first, so nested
    stages (e.g. ``kg.match`` inside ``detect.kg_match``) appear after
    their parent; duplicates (one span per forward batch) collapse to one
    entry.
    """
    roots = [r for r in obs.span_tree() if r["name"] == ROOT_STAGE]
    if not roots:
        raise RuntimeError(
            f"no {ROOT_STAGE!r} span recorded — did detect() run with "
            "the registry enabled?")
    ordered = []

    def visit(node):
        if node["name"] not in ordered:
            ordered.append(node["name"])
        for child in node["children"]:
            visit(child)

    visit(roots[-1])
    # Root last: the table reads top-down as stages, then the total.
    ordered.remove(ROOT_STAGE)
    ordered.append(ROOT_STAGE)
    return ordered


def run_experiment(grid: int = 25, repeats: int = 3):
    scene, reference, vectorized = _build_detectors(grid)
    obs = get_registry()

    # Correctness gate: the vectorized path must reproduce the seed
    # detections exactly (same boxes, same keep order).
    ref_dets = reference.detect(scene)
    vec_dets = vectorized.detect(scene)
    assert [d.bbox for d in ref_dets] == [d.bbox for d in vec_dets], \
        "vectorized pipeline diverged from the reference implementation"
    np.testing.assert_allclose([d.score for d in ref_dets],
                               [d.score for d in vec_dets], rtol=1e-12)

    reference_s = _time_detect(reference, scene, repeats)
    obs.reset()  # isolate the vectorized run's spans and per-stage numbers
    vectorized_s = _time_detect(vectorized, scene, repeats)
    stage_stats = obs.snapshot()["timers"]
    stage_names = pipeline_stages(obs)

    summary = [{
        "scene": f"{grid}x{grid} cells",
        "windows": grid * grid,
        "detections": len(vec_dets),
        "reference_ms": reference_s * 1e3,
        "vectorized_ms": vectorized_s * 1e3,
        "speedup": reference_s / vectorized_s,
    }]
    total = stage_stats.get(ROOT_STAGE, {}).get("total_s", 0.0)
    stages = [
        {
            "stage": name,
            "calls": stats["calls"],
            "total_ms": stats["total_s"] * 1e3,
            "mean_ms": stats["mean_s"] * 1e3,
            "p50_ms": stats["p50_s"] * 1e3,
            "p90_ms": stats["p90_s"] * 1e3,
            "p99_ms": stats["p99_s"] * 1e3,
            "share_pct": 100.0 * stats["total_s"] / total if total else 0.0,
        }
        for name in stage_names
        if (stats := stage_stats.get(name)) is not None
    ]
    return summary, stages


def _print_results(summary, stages) -> None:
    print_table("E10: end-to-end detect() latency (vectorized vs seed)", summary)
    print_table("E10: vectorized run, per-stage breakdown (from span tree)",
                stages)
    print()
    print(get_registry().report("E10 pipeline"))


def test_e10_pipeline_latency(benchmark):
    summary, stages = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    _print_results(summary, stages)
    assert summary[0]["speedup"] >= 3.0
    # The span tree must expose the pipeline's structure: every stage the
    # detector records shows up, nested under the end-to-end root.
    observed = {row["stage"] for row in stages}
    assert ROOT_STAGE in observed
    assert {"detect.window_build", "detect.model_forward",
            "detect.kg_match", "detect.nms"} <= observed
    # Percentiles are populated for every observed stage.
    assert all(row["p50_ms"] > 0.0 for row in stages)


def main():
    smoke = "--smoke" in sys.argv[1:]
    # Smoke keeps CI fast but uses a scene large enough (and enough
    # repeats) that hot-path stage *shares* are stable run-to-run —
    # the regression gate compares them at a 15% threshold.
    summary, stages = run_experiment(grid=14 if smoke else 25,
                                     repeats=5 if smoke else 3)
    _print_results(summary, stages)
    finalize_benchmark("e10_pipeline_latency", summary, stages=stages)
    if not smoke and summary[0]["speedup"] < 3.0:
        print(f"WARNING: speedup {summary[0]['speedup']:.2f}x below the 3x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
