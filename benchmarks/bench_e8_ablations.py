"""E8 — Component ablations.

The abstract attributes iTask's behaviour to three mechanisms: the
LLM-generated knowledge graph, teacher→student distillation, and the
dual-configuration adaptivity.  This bench isolates each:

* **A: KG guidance on/off** — detection accuracy with graph matching vs
  objectness-only, per task;
* **B: LLM extraction-noise sweep** — task accuracy as the simulated
  LLM's omission/hallucination rates grow, with and without few-shot
  refinement (robustness of the graph channel);
* **C: distillation recipe** — student accuracy with soft targets only,
  + feature hints, + attribute distillation, vs training from scratch
  (equal epoch budget).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import (
    DECISION_THRESHOLD,
    eval_windows,
    finalize_benchmark,
    print_table,
    quantized_configuration,
    task_matcher,
    teacher,
)
from repro.data import (
    attribute_head_spec,
    build_window_dataset,
    few_shot_split,
    get_task,
    task_names,
)
from repro.data.datasets import num_classes
from repro.distill import (
    DistillationConfig,
    Distiller,
    ModelTrainer,
    TrainingConfig,
    evaluate_model,
)
from repro.detect import window_task_accuracy
from repro.kg import GraphMatcher, LLMNoiseConfig, SimulatedLLM, refine_with_examples
from repro.nn import VisionTransformer, ViTConfig


def run_kg_ablation():
    quantized = quantized_configuration().model
    rows = []
    for name in task_names():
        windows = eval_windows(name)
        with_kg = window_task_accuracy(quantized, windows, task_matcher(name),
                                       threshold=DECISION_THRESHOLD)
        without_kg = window_task_accuracy(quantized, windows, None,
                                          threshold=DECISION_THRESHOLD)
        rows.append({"task": name, "with_kg": with_kg,
                     "without_kg": without_kg,
                     "gain_pct": 100.0 * (with_kg - without_kg)})
    rows.append({
        "task": "MEAN",
        "with_kg": float(np.mean([r["with_kg"] for r in rows])),
        "without_kg": float(np.mean([r["without_kg"] for r in rows])),
        "gain_pct": float(np.mean([r["gain_pct"] for r in rows])),
    })
    return rows


def run_noise_sweep(levels=(0.0, 0.2, 0.4, 0.6, 0.8), shots: int = 8,
                    num_seeds: int = 3):
    quantized = quantized_configuration().model
    rows = []
    for level in levels:
        raw_scores, refined_scores = [], []
        for name in task_names():
            task = get_task(name)
            dataset = eval_windows(name)
            for seed in range(num_seeds):
                llm = SimulatedLLM(LLMNoiseConfig(
                    omission_rate=level, hallucination_rate=level / 2,
                    seed=100 + seed))
                kg = llm.generate_for_task(task)
                support, query = few_shot_split(dataset, shots=shots, seed=seed)
                positives = [p for p, lbl in zip(support.profiles,
                                                 support.task_labels)
                             if lbl > 0.5 and p is not None]
                negatives = [p for p, lbl in zip(support.profiles,
                                                 support.task_labels)
                             if lbl <= 0.5]
                refined = refine_with_examples(kg, positives, negatives)
                raw_scores.append(window_task_accuracy(
                    quantized, query, GraphMatcher(kg),
                    threshold=DECISION_THRESHOLD))
                refined_scores.append(window_task_accuracy(
                    quantized, query, GraphMatcher(refined),
                    threshold=DECISION_THRESHOLD))
        rows.append({
            "llm_noise": level,
            "kg_raw": float(np.mean(raw_scores)),
            "kg_refined_8shot": float(np.mean(refined_scores)),
        })
    return rows


def run_distillation_recipe(epochs: int = 10):
    train = build_window_dataset(seed=301, num_category_objects=320,
                                 num_distractors=80, num_background=80)
    val = build_window_dataset(seed=302, num_category_objects=160,
                               num_distractors=40, num_background=40)
    big_teacher = teacher()

    recipes = [
        ("scratch (no distillation)", None),
        ("soft targets only",
         DistillationConfig(epochs=epochs, alpha=0.7, feature_weight=0.0,
                            attribute_weight=0.0, seed=1)),
        ("+ feature hints",
         DistillationConfig(epochs=epochs, alpha=0.7, feature_weight=0.5,
                            attribute_weight=0.0, seed=1)),
        ("+ attribute distillation (full)",
         DistillationConfig(epochs=epochs, alpha=0.7, feature_weight=0.5,
                            attribute_weight=0.5, seed=1)),
    ]
    rows = []
    for label, config in recipes:
        student = VisionTransformer(
            ViTConfig.student(num_classes(), attribute_head_spec()),
            rng=np.random.default_rng(17))
        if config is None:
            ModelTrainer(student, TrainingConfig(
                epochs=epochs, batch_size=48, learning_rate=2e-3, seed=1,
            )).fit(train)
        else:
            Distiller(big_teacher, student, config,
                      rng=np.random.default_rng(17)).distill(train)
        metrics = evaluate_model(student, val)
        rows.append({
            "recipe": label,
            "class_accuracy": metrics["val_accuracy"],
            "attribute_accuracy": metrics.get("val_attribute_accuracy"),
        })
    return rows


def test_e8_kg_ablation(benchmark):
    rows = benchmark.pedantic(run_kg_ablation, rounds=1, iterations=1)
    print_table("E8a: knowledge-graph guidance ablation", rows)
    mean = rows[-1]
    assert mean["with_kg"] > mean["without_kg"] + 0.05


def test_e8_noise_sweep(benchmark):
    rows = benchmark.pedantic(run_noise_sweep, rounds=1, iterations=1)
    print_table("E8b: LLM extraction-noise robustness", rows)
    clean = rows[0]
    worst = rows[-1]
    # accuracy degrades with noise, refinement recovers a chunk of it
    assert clean["kg_raw"] > worst["kg_raw"]
    assert worst["kg_refined_8shot"] > worst["kg_raw"]


def test_e8_distillation_recipe(benchmark):
    rows = benchmark.pedantic(run_distillation_recipe, rounds=1, iterations=1)
    print_table("E8c: distillation recipe ablation", rows)
    by_recipe = {r["recipe"]: r for r in rows}
    full = by_recipe["+ attribute distillation (full)"]
    scratch = by_recipe["scratch (no distillation)"]
    assert full["class_accuracy"] >= scratch["class_accuracy"] - 0.03
    # attribute distillation must help the attribute heads
    soft_only = by_recipe["soft targets only"]
    assert full["attribute_accuracy"] >= soft_only["attribute_accuracy"] - 0.02


def main():
    kg_rows = run_kg_ablation()
    noise_rows = run_noise_sweep()
    recipe_rows = run_distillation_recipe()
    print_table("E8a: knowledge-graph guidance ablation", kg_rows)
    print_table("E8b: LLM extraction-noise robustness", noise_rows)
    print_table("E8c: distillation recipe ablation", recipe_rows)
    finalize_benchmark("e8_ablations", kg_rows,
                       noise_sweep=noise_rows, distillation_recipe=recipe_rows)


if __name__ == "__main__":
    sys.exit(main())
