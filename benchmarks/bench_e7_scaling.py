"""E7 — Latency/throughput scaling on the accelerator.

Paper context: "a hardware acceleration circuit to support real-time
processing, essential for edge devices that require low latency".

Three sweeps characterize the design space:

* batch size — throughput amortization of fill/drain and vector overheads;
* systolic array size — the area/latency trade-off (small / default /
  large configurations);
* scene size — end-to-end frame latency as the window grid grows
  (1 window per grid cell, batch-processed), against real-time budgets.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import finalize_benchmark, print_table, quantized_configuration
from repro.hw import AcceleratorConfig, Compiler, Simulator, estimate_area

REALTIME_BUDGET_MS = 1000.0 / 30.0  # one 30 fps frame


def run_batch_sweep(batches=(1, 2, 4, 8, 16)):
    config = AcceleratorConfig.edge_default()
    model = quantized_configuration().model
    rows = []
    for batch in batches:
        report = Simulator(config).simulate(
            Compiler(config).compile(model, batch=batch))
        rows.append({
            "batch": batch,
            "latency_ms": report.latency_ms,
            "throughput_inf_s": report.throughput_inferences_per_s,
            "array_util_pct": report.array_utilization * 100.0,
            "energy_uj_per_inf": report.energy_per_inference_j * 1e6,
        })
    return rows


def run_array_sweep():
    model = quantized_configuration().model
    rows = []
    for config in (AcceleratorConfig.small(), AcceleratorConfig.edge_default(),
                   AcceleratorConfig.large()):
        report = Simulator(config).simulate(Compiler(config).compile(model))
        rows.append({
            "array": f"{config.array_rows}x{config.array_cols}",
            "peak_tops": config.peak_int8_tops,
            "latency_ms": report.latency_ms,
            "array_util_pct": report.array_utilization * 100.0,
            "energy_uj_per_inf": report.energy_per_inference_j * 1e6,
            "area_mm2_28nm": estimate_area(config).total_mm2,
        })
    return rows


def run_scene_sweep(grids=(2, 3, 4, 6, 8)):
    """Frame latency for a whole scene: grid² windows per frame."""
    config = AcceleratorConfig.edge_default()
    model = quantized_configuration().model
    rows = []
    for grid in grids:
        windows = grid * grid
        report = Simulator(config).simulate(
            Compiler(config).compile(model, batch=windows))
        rows.append({
            "scene": f"{grid * 32}x{grid * 32}",
            "windows": windows,
            "frame_latency_ms": report.latency_ms,
            "realtime_30fps": "yes" if report.latency_ms < REALTIME_BUDGET_MS
            else "NO",
        })
    return rows


def test_e7_batch_scaling(benchmark):
    rows = benchmark.pedantic(run_batch_sweep, rounds=1, iterations=1)
    print_table("E7a: batch scaling", rows)
    # throughput and utilization must improve with batch
    assert rows[-1]["throughput_inf_s"] > rows[0]["throughput_inf_s"]
    assert rows[-1]["array_util_pct"] > rows[0]["array_util_pct"]


def test_e7_array_sweep(benchmark):
    rows = benchmark.pedantic(run_array_sweep, rounds=1, iterations=1)
    print_table("E7b: array-size sweep", rows)
    assert rows[0]["latency_ms"] > rows[-1]["latency_ms"]
    # small arrays utilize better on tiny GEMMs
    assert rows[0]["array_util_pct"] > rows[-1]["array_util_pct"]


def test_e7_scene_scaling(benchmark):
    rows = benchmark.pedantic(run_scene_sweep, rounds=1, iterations=1)
    print_table("E7c: scene-size scaling (frame latency)", rows)
    # the paper's deployment scene (96x96, 9 windows) is comfortably real-time
    deployed = next(r for r in rows if r["windows"] == 9)
    assert deployed["frame_latency_ms"] < REALTIME_BUDGET_MS


def main():
    batch_rows = run_batch_sweep()
    array_rows = run_array_sweep()
    scene_rows = run_scene_sweep()
    print_table("E7a: batch scaling", batch_rows)
    print_table("E7b: array-size sweep", array_rows)
    print_table("E7c: scene-size scaling", scene_rows)
    finalize_benchmark("e7_scaling", batch_rows,
                       array_sweep=array_rows, scene_sweep=scene_rows)


if __name__ == "__main__":
    sys.exit(main())
