"""E13 — Adaptive dual-config cascade: recovery/cost frontier.

The cascade runs the quantized generalist on every scene and escalates
only low-margin scenes to the float task specialist.  This benchmark
measures what that buys: per mission task, the calibrated operating
point on the recovery/cost frontier and the realized behaviour of that
point on held-out scenes.

Costs come from the hardware simulator, not wall clocks: the fast path
is the compiled int8 program on the edge accelerator (batch 1, the
streaming case), an escalation is the same workload through the
calibrated Jetson-class GPU roofline — the deployment the paper argues
against running everything on.  The resulting per-scene cost ratio
(~8x) prices escalations during calibration, so "relative cost" below
means cascade cost over the all-specialist cost under simulated
hardware latencies.

**Acceptance gate** (full mode): the deployed gate task's calibrated
operating point must recover at least ``TARGET_RECOVERY`` (80%) of the
specialist's accuracy advantage at no more than ``MAX_RELATIVE_COST``
(40%) of the all-specialist cost; the run exits non-zero otherwise.
Held-out rows are reported alongside for generalization honesty but are
not gated — with tens of scenes the specialist delta is small enough
that held-out recovery is noise-dominated.

Calibrations persist through :class:`repro.cascade.CalibrationStore`
under the artifact registry, where ``repro cascade show`` and the
serving path can load them.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_e13_cascade.py
    PYTHONPATH=src python benchmarks/bench_e13_cascade.py --smoke

``--smoke`` shrinks scene counts and the task list (CI-friendly) while
keeping the ``cascade.route`` / detect stage *shares* stable for the CI
regression gate (``repro obs compare --metric share``).  Both modes
persist telemetry to ``BENCH_e13_cascade.json``.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    DECISION_THRESHOLD,
    EVAL_SEED,
    builder,
    finalize_benchmark,
    print_table,
    quantized_configuration,
    specialist,
    task_matcher,
)
from repro.cascade import (
    CalibrationStore,
    CascadeConfig,
    CascadeRouter,
    calibrate_margin_threshold,
    scene_cell_accuracy,
)
from repro.data import SceneConfig, SceneGenerator, get_task
from repro.detect import TaskDetector
from repro.hw import AcceleratorConfig, Compiler, GPUConfig, GPUModel, Simulator
from repro.obs import get_registry

#: Missions benchmarked in full mode; the first is the acceptance gate.
GATE_TASK = "roadside_hazards"
TASKS = [GATE_TASK, "valve_inspection", "cargo_audit", "stop_control"]

CAL_SEED = EVAL_SEED          # calibration scenes
HELDOUT_SEED = EVAL_SEED * 2  # disjoint deployment scenes

TARGET_RECOVERY = 0.8
MAX_RELATIVE_COST = 0.4


def measure_cost_ratio():
    """Per-scene cost of an escalation in units of the fast path.

    Both numbers simulate the same batch-1 program: the accelerator
    runs it as compiled int8 (fast path), the Jetson-class GPU roofline
    prices the float specialist an escalation pays for.
    """
    accel_config = AcceleratorConfig.edge_default()
    program = Compiler(accel_config).compile(quantized_configuration().model)
    accel = Simulator(accel_config).simulate(program)
    gpu = GPUModel(GPUConfig.jetson_class()).simulate(program)
    return {
        "accel_ms": accel.latency_ms,
        "gpu_ms": gpu.latency_ms,
        "cost_ratio": gpu.latency_s / accel.latency_s,
    }


def _detector(model, task_name):
    return TaskDetector(model, matcher=task_matcher(task_name),
                        score_threshold=DECISION_THRESHOLD)


def run_experiment(smoke: bool = False):
    """Calibrate + deploy the cascade per task; returns (tables, gate_row)."""
    registry = get_registry()
    registry.reset()  # isolate this run's spans for the share gate
    tasks = TASKS[:1] if smoke else TASKS
    num_cal, num_heldout = (8, 8) if smoke else (64, 64)

    cost = measure_cost_ratio()
    ratio = cost["cost_ratio"]
    store = CalibrationStore(builder().registry)
    quantized = quantized_configuration().model

    calibration_rows = []
    heldout_rows = []
    for name in tasks:
        task = get_task(name)
        fast = _detector(quantized, name)
        spec = _detector(specialist(name).model, name)

        cal_scenes = SceneGenerator(SceneConfig(),
                                    seed=CAL_SEED).generate_batch(num_cal)
        cal = calibrate_margin_threshold(
            fast, spec, cal_scenes, task,
            fast_cost=1.0, specialist_cost=ratio,
            target_recovery=TARGET_RECOVERY,
            max_relative_cost=MAX_RELATIVE_COST,
        )
        store.save(name, cal)
        calibration_rows.append({
            "task": name,
            "threshold": cal.margin_threshold,
            "escalation": cal.escalation_fraction,
            "fast_acc": cal.fast_accuracy,
            "spec_acc": cal.specialist_accuracy,
            "cascade_acc": cal.cascade_accuracy,
            "recovery": cal.recovery,
            "rel_cost": cal.relative_cost,
            "meets": cal.meets_targets,
        })

        # Deploy the calibrated threshold on disjoint scenes through the
        # real router (cascade.route spans + cascade.* counters).
        heldout = SceneGenerator(SceneConfig(),
                                 seed=HELDOUT_SEED).generate_batch(num_heldout)
        router = CascadeRouter(fast, spec, config=CascadeConfig(
            margin_threshold=cal.margin_threshold))
        results, decisions = router.detect_batch(heldout)
        escalated = sum(d.route == "escalated" for d in decisions)
        n = len(heldout)
        cascade_acc = sum(scene_cell_accuracy(s, r, task)
                          for s, r in zip(heldout, results)) / n
        fast_acc = sum(scene_cell_accuracy(s, r, task)
                       for s, r in zip(heldout, fast.detect_batch(heldout))) / n
        spec_acc = sum(scene_cell_accuracy(s, r, task)
                       for s, r in zip(heldout, spec.detect_batch(heldout))) / n
        delta = spec_acc - fast_acc
        recovery = 1.0 if delta <= 0 else (cascade_acc - fast_acc) / delta
        heldout_rows.append({
            "task": name,
            "escalated": escalated,
            "scenes": n,
            "fast_acc": fast_acc,
            "spec_acc": spec_acc,
            "cascade_acc": cascade_acc,
            "recovery": recovery,
            "rel_cost": (n * 1.0 + escalated * ratio) / (n * ratio),
        })

    tables = {
        "costs": [cost],
        "calibration": calibration_rows,
        "heldout": heldout_rows,
    }
    gate_row = next((row for row in calibration_rows
                     if row["task"] == GATE_TASK), None)
    return tables, gate_row


def run_overload_replay(smoke: bool = False):
    """Overload pass: shed under pressure, with every shed attributable.

    Replays the gate task through a router-only cascade session behind a
    multi-worker engine with a deliberately tight escalation budget, so
    a large fraction of scenes shed.  Each scene is submitted under its
    own request context with an :class:`ExemplarSampler` installed; the
    pass then **asserts** that every SHED decision carries a trace_id
    that resolves to a retained exemplar with a span tree — the
    operator-facing contract ("this scene shed; here is the request
    that suffered it").  The induced shed storm also exercises the
    flight-recorder dump.
    """
    import tempfile

    from repro.cascade import CascadeSession
    from repro.obs.context import request_context
    from repro.obs.sampler import ExemplarSampler, install_sampler
    from repro.serve.engine import EngineConfig

    name = GATE_TASK
    num_scenes = 24 if smoke else 96
    fast = _detector(quantized_configuration().model, name)
    spec = _detector(specialist(name).model, name)
    scenes = SceneGenerator(SceneConfig(),
                            seed=HELDOUT_SEED + 1).generate_batch(num_scenes)
    # margin_threshold far above any real margin: every scene desires
    # escalation, and the tight budget sheds ~75% of them.
    router = CascadeRouter(fast, spec, config=CascadeConfig(
        margin_threshold=10.0,
        max_escalation_fraction=0.25,
        escalation_window=16,
    ))
    session = CascadeSession(None, router)
    sampler = ExemplarSampler(
        per_reason=num_scenes,
        artifact_dir=tempfile.mkdtemp(prefix="repro_obs_e13_"))
    previous = install_sampler(sampler)
    registry = get_registry()
    try:
        with session.engine(EngineConfig(max_batch=4, workers=2,
                                         queue_size=32)) as engine:
            futures = []
            for scene in scenes:
                with request_context(name="overload.request",
                                     tenant="bench-e13") as ctx:
                    futures.append((ctx.trace_id, engine.submit(scene)))
            for _, future in futures:
                future.result()
        decisions = session.drain_decisions()
        sampler.resolve(registry)
    finally:
        install_sampler(previous)

    shed = [d for d in decisions if d.route == "shed"]
    missing_trace = [d for d in shed if d.trace_id is None]
    unresolved = [
        d for d in shed
        if d.trace_id is not None
        and not (sampler.lookup(d.trace_id) is not None
                 and sampler.lookup(d.trace_id).spans)
    ]
    assert decisions and shed, (
        f"overload replay produced no shed decisions "
        f"({len(decisions)} decisions) — the budget is not binding")
    assert not missing_trace and not unresolved, (
        f"{len(missing_trace)} shed decision(s) without a trace_id, "
        f"{len(unresolved)} whose trace_id does not resolve to a sampled "
        f"span tree — shed traffic must stay attributable")
    rows = [{
        "scenes": num_scenes,
        "fast_path": sum(d.route == "fast_path" for d in decisions),
        "escalated": sum(d.route == "escalated" for d in decisions),
        "shed": len(shed),
        "shed_resolvable": len(shed) - len(missing_trace) - len(unresolved),
        "storm_dumps": len(sampler.flight.dumps),
    }]
    # A bounded sample of the shed exemplars rides into the telemetry so
    # `repro obs report` readers can see real trace_id -> span trees.
    exemplar_rows = [e.as_dict() for e in sampler.exemplars("shed")[:8]]
    return rows, exemplar_rows


def _print_results(tables) -> None:
    print_table("E13: simulated per-scene costs (fast=accel, escalation=GPU)",
                tables["costs"])
    print_table("E13: calibrated operating points (gate table)",
                tables["calibration"])
    print_table("E13: held-out deployment of the calibrated threshold",
                tables["heldout"])
    if "overload" in tables:
        print_table("E13: overload replay (tight budget, traced sheds)",
                    tables["overload"])
    print()
    print(get_registry().report("E13 cascade routing"))


def test_e13_cascade(benchmark):
    tables, gate_row = benchmark.pedantic(
        run_experiment, kwargs={"smoke": True}, rounds=1, iterations=1)
    _print_results(tables)
    assert tables["costs"][0]["cost_ratio"] > 1.0
    assert gate_row is not None
    # Smoke scenes are too few to gate recovery; check the sweep is sane.
    assert 0.0 <= gate_row["escalation"] <= 1.0
    assert gate_row["rel_cost"] <= 1.0 + 1.0 / tables["costs"][0]["cost_ratio"]
    # The calibration must have persisted where the CLI can find it.
    assert CalibrationStore(builder().registry).exists(GATE_TASK)


def test_e13_overload_tracing(benchmark):
    rows, exemplars = benchmark.pedantic(
        run_overload_replay, kwargs={"smoke": True}, rounds=1, iterations=1)
    row = rows[0]
    # run_overload_replay itself asserts full attributability; re-check
    # the reported numbers agree and the exemplars carry span trees.
    assert row["shed"] > 0 and row["shed_resolvable"] == row["shed"]
    assert exemplars and all(e["spans"] for e in exemplars)


def main():
    smoke = "--smoke" in sys.argv[1:]
    tables, gate_row = run_experiment(smoke=smoke)
    overload_rows, shed_exemplars = run_overload_replay(smoke=smoke)
    tables["overload"] = overload_rows
    tables["shed_exemplars"] = shed_exemplars
    _print_results(tables)
    finalize_benchmark("e13_cascade", **tables)
    failed = False
    if not smoke and gate_row is not None and not gate_row["meets"]:
        print(f"WARNING: {GATE_TASK} calibrated cascade recovers "
              f"{gate_row['recovery']:.0%} of the specialist advantage at "
              f"{gate_row['rel_cost']:.0%} relative cost (targets: "
              f">={TARGET_RECOVERY:.0%} at <={MAX_RELATIVE_COST:.0%})")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
