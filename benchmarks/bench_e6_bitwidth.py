"""E6 — Quantization bit-width sweep.

Paper context: the quantized configuration must stay accurate enough at
int8 to be "robust for multi-task performance".  This bench regenerates
the accuracy-vs-bits curve: weight bit-width sweep at int8 activations,
per-channel vs per-tensor weight scales, and observer choice, measured as
mean task accuracy across the library plus raw class accuracy.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import (
    DECISION_THRESHOLD,
    eval_windows,
    finalize_benchmark,
    multitask_student,
    print_table,
    task_matcher,
)
from repro.data import attribute_head_spec, build_window_dataset, task_names
from repro.data.datasets import num_classes
from repro.detect import window_task_accuracy
from repro.nn import VisionTransformer
from repro.quant import QATConfig, QuantSpec, quantize_vit, train_qat

BITS = (2, 3, 4, 6, 8, 16)


def _mean_task_accuracy(model) -> float:
    scores = [
        window_task_accuracy(model, eval_windows(name), task_matcher(name),
                             threshold=DECISION_THRESHOLD)
        for name in task_names()
    ]
    return float(np.mean(scores))


def run_experiment(bits=BITS):
    student = multitask_student()
    calibration = build_window_dataset(
        seed=77, num_category_objects=96, num_distractors=32,
        num_background=32).images
    val = build_window_dataset(
        seed=88, num_category_objects=160, num_distractors=40,
        num_background=40)

    rows = []
    for bit in bits:
        for per_channel in (True, False):
            quantized = quantize_vit(
                student, calibration,
                weight_spec=QuantSpec(bits=bit, symmetric=True,
                                      per_channel=per_channel, axis=0),
                act_spec=QuantSpec(bits=8, symmetric=False),
            )
            class_acc = float(
                (quantized.classify(val.images) == val.class_labels).mean())
            rows.append({
                "weight_bits": bit,
                "granularity": "per-channel" if per_channel else "per-tensor",
                "class_accuracy": class_acc,
                "mean_task_accuracy": _mean_task_accuracy(quantized),
                "model_kib": quantized.model_size_bytes() / 1024.0,
            })
    return rows


def run_observer_comparison():
    """Secondary sweep: activation observer choice at w8a8."""
    student = multitask_student()
    calibration = build_window_dataset(
        seed=77, num_category_objects=96, num_distractors=32,
        num_background=32).images
    val = build_window_dataset(
        seed=88, num_category_objects=160, num_distractors=40,
        num_background=40)
    rows = []
    for observer in ("minmax", "moving_average", "percentile", "mse"):
        quantized = quantize_vit(student, calibration, observer_kind=observer)
        rows.append({
            "observer": observer,
            "class_accuracy": float(
                (quantized.classify(val.images) == val.class_labels).mean()),
        })
    return rows


def run_qat_vs_ptq(bits=(2, 3, 4)):
    """Extension: QAT fine-tuning recovers low-bit accuracy lost by PTQ."""
    student = multitask_student()
    train = build_window_dataset(seed=79, num_category_objects=240,
                                 num_distractors=60, num_background=60)
    val = build_window_dataset(seed=88, num_category_objects=160,
                               num_distractors=40, num_background=40)
    rows = []
    for bit in bits:
        spec = QuantSpec(bits=bit, symmetric=True, per_channel=True, axis=0)
        ptq = quantize_vit(student, train.images[:128], weight_spec=spec)
        ptq_acc = float((ptq.classify(val.images) == val.class_labels).mean())
        # QAT fine-tunes a copy so the cached student stays pristine.
        copy = VisionTransformer(student.config, rng=np.random.default_rng(0))
        copy.load_state_dict(student.state_dict())
        qat = train_qat(copy, train, weight_spec=spec,
                        config=QATConfig(epochs=4, seed=0))
        qat_acc = float((qat.classify(val.images) == val.class_labels).mean())
        rows.append({"weight_bits": bit, "ptq_accuracy": ptq_acc,
                     "qat_accuracy": qat_acc,
                     "recovery_pct": 100.0 * (qat_acc - ptq_acc)})
    return rows


def test_e6_bitwidth(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E6: accuracy vs weight bit-width", rows)
    per_channel = {r["weight_bits"]: r for r in rows
                   if r["granularity"] == "per-channel"}
    # int8 retains essentially full accuracy; 2-bit collapses.
    assert per_channel[8]["class_accuracy"] > per_channel[2]["class_accuracy"]
    assert per_channel[8]["class_accuracy"] >= per_channel[4]["class_accuracy"] - 0.02
    # model shrinks monotonically with bits
    sizes = [per_channel[b]["model_kib"] for b in sorted(per_channel)]
    assert sizes == sorted(sizes)


def test_e6_qat_vs_ptq(benchmark):
    rows = benchmark.pedantic(run_qat_vs_ptq, rounds=1, iterations=1)
    print_table("E6c: PTQ vs QAT at low bit widths", rows)
    two_bit = next(r for r in rows if r["weight_bits"] == 2)
    assert two_bit["qat_accuracy"] >= two_bit["ptq_accuracy"] - 0.02


def test_e6_observers(benchmark):
    rows = benchmark.pedantic(run_observer_comparison, rounds=1, iterations=1)
    print_table("E6b: activation observer comparison (w8a8)", rows)
    accs = [r["class_accuracy"] for r in rows]
    assert max(accs) - min(accs) < 0.2  # all viable at 8 bits


def main():
    rows = run_experiment()
    observer_rows = run_observer_comparison()
    qat_rows = run_qat_vs_ptq()
    print_table("E6: accuracy vs weight bit-width", rows)
    print_table("E6b: activation observer comparison (w8a8)", observer_rows)
    print_table("E6c: PTQ vs QAT at low bit widths", qat_rows)
    finalize_benchmark("e6_bitwidth", rows,
                       observers=observer_rows, qat_vs_ptq=qat_rows)


if __name__ == "__main__":
    sys.exit(main())
