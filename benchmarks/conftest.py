"""Make the ``benchmarks`` package importable when pytest collects from
the repository root or from inside the directory."""

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)
