"""E14 — Incremental streaming detection: delta gating across motion densities.

The streaming detector's frame-delta gate makes per-frame cost scale
with scene *change* instead of scene size: unchanged grid cells reuse
their cached raw score bit-for-bit instead of re-entering the model
forward.  This benchmark drives N independent camera feeds (the
multi-camera surveillance workload the paper's edge deployment targets)
through a full-recompute pass and a delta-gated pass over identical
pre-rendered frames, sweeping motion density from fully static to
every-cell-changes.

Three tables:

* ``sweep`` — frames/sec, speedup, gate hit rate, and bit-identity per
  motion density under exact gating;
* ``carryover`` — tracker-prior carryover (``motion_threshold > 0``) on
  a jittery feed, reporting carried reuses and the MOTA-style quality
  delta the approximation costs;
* ``manifest-level`` counters: ``stream.cells.{skipped,recomputed}``
  and the ``stream.delta_gate.hit_rate`` distribution ride into the
  telemetry automatically.

**Acceptance gate** (full mode): on the mostly-static multi-camera
sweep point (motion density ``0.05``) the gated pass must run at least
``MIN_SPEEDUP`` (3x) faster than full recompute **and** produce
bit-identical tracks; every exact-gate sweep point must be
bit-identical with zero quality delta, including the full-motion end
where the gate buys nothing.  The run exits non-zero otherwise.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_e14_stream.py
    PYTHONPATH=src python benchmarks/bench_e14_stream.py --smoke

``--smoke`` shrinks cameras/frames/grid (CI-friendly) and skips the
wall-clock speedup gate (shared CI runners make timing ratios noisy)
while still asserting bit-identity; both modes persist telemetry to
``BENCH_e14_stream.json`` for the CI share + SLO gates.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    finalize_benchmark,
    print_table,
    quantized_configuration,
    task_matcher,
)
from repro.data import get_task
from repro.obs import get_registry
from repro.stream import TrackerConfig, run_stream_bench

TASK = "roadside_hazards"

#: Motion densities swept under exact gating (fraction of live objects
#: re-rendered per frame; the rest repeat bit-identical pixels).
MOTION_RATES = (0.0, 0.05, 0.25, 1.0)
SMOKE_MOTION_RATES = (0.05, 1.0)

#: The deployment point the speedup gate stands on: mostly-static
#: multi-camera feeds, the regime the delta gate exists for.
GATE_MOTION_RATE = 0.05
MIN_SPEEDUP = 3.0

#: Carryover demonstration: sub-threshold jitter on a moderately busy
#: feed, with the periodic refresh bounding drift.
CARRYOVER_MOTION_RATE = 0.3
CARRYOVER_THRESHOLD = 0.05
CARRYOVER_REFRESH = 8


def run_experiment(smoke: bool = False):
    """Sweep motion densities full-vs-gated; returns (tables, gate_row)."""
    registry = get_registry()
    registry.reset()  # isolate this run's spans for the share gate
    model = quantized_configuration().model
    matcher = task_matcher(TASK)
    task = get_task(TASK)
    num_cameras, num_frames, grid = (2, 8, 4) if smoke else (3, 20, 5)
    motion_rates = SMOKE_MOTION_RATES if smoke else MOTION_RATES

    sweep_rows = []
    for motion_rate in motion_rates:
        row = run_stream_bench(
            model, matcher, task,
            num_cameras=num_cameras, num_frames=num_frames, grid=grid,
            motion_rate=motion_rate, seed=3)
        assert row["identical"], (
            f"exact delta gating diverged from full recompute at "
            f"motion_rate={motion_rate}: {row['mismatch']}")
        assert row["max_quality_delta"] == 0.0, (
            f"bit-identical tracks must yield identical streaming metrics "
            f"(motion_rate={motion_rate}, "
            f"delta={row['max_quality_delta']})")
        sweep_rows.append({
            "motion": motion_rate,
            "cameras": row["cameras"],
            "frames": row["frames"],
            "full_fps": row["full_fps"],
            "gated_fps": row["gated_fps"],
            "speedup": row["speedup"],
            "hit_rate": row["hit_rate"],
            "identical": row["identical"],
            "quality_delta": row["max_quality_delta"],
        })

    carryover = run_stream_bench(
        model, matcher, task,
        num_cameras=num_cameras, num_frames=num_frames, grid=grid,
        motion_rate=CARRYOVER_MOTION_RATE,
        gate=TrackerConfig(delta_gate=True,
                           motion_threshold=CARRYOVER_THRESHOLD,
                           refresh_every=CARRYOVER_REFRESH),
        seed=3)
    carryover_rows = [{
        "motion": CARRYOVER_MOTION_RATE,
        "threshold": CARRYOVER_THRESHOLD,
        "refresh_every": CARRYOVER_REFRESH,
        "speedup": carryover["speedup"],
        "hit_rate": carryover["hit_rate"],
        "carried": carryover["carried"],
        "quality_delta": carryover["max_quality_delta"],
    }]

    tables = {"sweep": sweep_rows, "carryover": carryover_rows}
    gate_row = next((row for row in sweep_rows
                     if row["motion"] == GATE_MOTION_RATE), None)
    return tables, gate_row


def _print_results(tables) -> None:
    print_table("E14: full recompute vs delta gating (exact, bit-identical)",
                tables["sweep"])
    print_table("E14: tracker-prior carryover (approximate, bounded drift)",
                tables["carryover"])
    print()
    print(get_registry().report("E14 incremental streaming"))


def test_e14_stream(benchmark):
    tables, gate_row = benchmark.pedantic(
        run_experiment, kwargs={"smoke": True}, rounds=1, iterations=1)
    _print_results(tables)
    # Bit-identity and zero quality delta are asserted inside
    # run_experiment for every sweep point; check the gate point exists
    # and the gate genuinely skipped work on the mostly-static feed.
    assert gate_row is not None and gate_row["identical"]
    assert gate_row["hit_rate"] > 0.5
    assert tables["carryover"][0]["quality_delta"] <= 0.1


def main():
    smoke = "--smoke" in sys.argv[1:]
    tables, gate_row = run_experiment(smoke=smoke)
    _print_results(tables)
    finalize_benchmark("e14_stream", **tables)
    failed = False
    if gate_row is None:
        print(f"WARNING: no sweep row at motion_rate={GATE_MOTION_RATE}")
        failed = True
    elif not smoke and gate_row["speedup"] < MIN_SPEEDUP:
        print(f"WARNING: gated streaming at motion_rate={GATE_MOTION_RATE} "
              f"is {gate_row['speedup']:.2f}x full recompute "
              f"(gate: >= {MIN_SPEEDUP:.1f}x)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
