"""E5 — Few-shot generalization via the knowledge graph.

Paper claim: iTask "generalize[s] efficiently from limited samples by
generating an abstract knowledge graph ... allowing iTask to identify
objects based on high-level characteristics rather than extensive data".

Sweep the number of support shots and compare three systems on held-out
task windows:

* **kg-clean** — graph from clean mission text (no refinement needed):
  the flat upper line; zero shots already work.
* **kg-noisy+refine** — graph from a *noisy* LLM (omissions +
  hallucinations), repaired by few-shot refinement: rises quickly with
  shots (the paper's few-shot adaptation story).
* **prototype baseline** — a data-only nearest-prototype classifier on
  the quantized model's CLS embeddings: the conventional approach that
  needs far more data to get there.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import (
    DECISION_THRESHOLD,
    eval_windows,
    finalize_benchmark,
    print_table,
    quantized_configuration,
)
from repro.data import few_shot_split, get_task, task_names
from repro.detect import predict_windows, window_task_accuracy
from repro.kg import GraphMatcher, LLMNoiseConfig, SimulatedLLM, refine_with_examples

SHOTS = (0, 1, 2, 4, 8, 16)
NOISE = LLMNoiseConfig(omission_rate=0.5, hallucination_rate=0.25, seed=7)


def _embeddings(model, images):
    out = model(images.astype(np.float32))
    return out["cls_embedding"]


def _prototype_accuracy(model, support, query) -> float:
    """Nearest-prototype relevance decision on CLS embeddings."""
    support_emb = _embeddings(model, support.images)
    query_emb = _embeddings(model, query.images)
    pos = support_emb[support.task_labels > 0.5].mean(axis=0)
    neg = support_emb[support.task_labels <= 0.5].mean(axis=0)
    d_pos = np.linalg.norm(query_emb - pos, axis=1)
    d_neg = np.linalg.norm(query_emb - neg, axis=1)
    decisions = d_pos < d_neg
    truth = query.task_labels > 0.5
    return float((decisions == truth).mean())


def run_experiment(shots=SHOTS, num_seeds: int = 3):
    quantized = quantized_configuration().model
    clean_llm = SimulatedLLM()
    rows = []
    for shot in shots:
        clean_scores, noisy_scores, proto_scores = [], [], []
        for task_name in task_names():
            task = get_task(task_name)
            dataset = eval_windows(task_name)
            clean_kg = clean_llm.generate_for_task(task)
            for seed in range(num_seeds):
                noisy_llm = SimulatedLLM(LLMNoiseConfig(
                    omission_rate=NOISE.omission_rate,
                    hallucination_rate=NOISE.hallucination_rate,
                    seed=NOISE.seed + seed,
                ))
                noisy_kg = noisy_llm.generate_for_task(task)
                if shot == 0:
                    support, query = None, dataset
                else:
                    support, query = few_shot_split(dataset, shots=shot,
                                                    seed=seed)
                    positives = [p for p, lbl in zip(support.profiles,
                                                     support.task_labels)
                                 if lbl > 0.5 and p is not None]
                    negatives = [p for p, lbl in zip(support.profiles,
                                                     support.task_labels)
                                 if lbl <= 0.5]
                    noisy_kg = refine_with_examples(noisy_kg, positives,
                                                    negatives)
                clean_scores.append(window_task_accuracy(
                    quantized, query, GraphMatcher(clean_kg),
                    threshold=DECISION_THRESHOLD))
                noisy_scores.append(window_task_accuracy(
                    quantized, query, GraphMatcher(noisy_kg),
                    threshold=DECISION_THRESHOLD))
                if shot > 0:
                    proto_scores.append(_prototype_accuracy(
                        quantized, support, query))
        rows.append({
            "shots": shot,
            "kg_clean": float(np.mean(clean_scores)),
            "kg_noisy_refined": float(np.mean(noisy_scores)),
            "prototype_baseline": (float(np.mean(proto_scores))
                                   if proto_scores else None),
        })
    return rows


def test_e5_fewshot(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E5: few-shot generalization (accuracy vs shots)", rows)
    by_shots = {r["shots"]: r for r in rows}
    # KG from clean text needs no shots at all.
    assert by_shots[0]["kg_clean"] > 0.8
    # Refinement evidence accumulates: 8 shots clearly beat 1 shot
    # (single-example refinement can overtighten the graph).
    assert by_shots[8]["kg_noisy_refined"] > by_shots[1]["kg_noisy_refined"] + 0.03
    # At low shot counts the KG path beats the data-only prototype baseline.
    assert by_shots[2]["kg_noisy_refined"] > by_shots[2]["prototype_baseline"] - 0.02


def main():
    rows = run_experiment()
    print_table("E5: few-shot generalization (accuracy vs shots)", rows)
    finalize_benchmark("e5_fewshot", rows)


if __name__ == "__main__":
    sys.exit(main())
