"""E12 — Quantized inference: exact BLAS integer kernels vs int64 reference.

The quantized configuration is the paper's resource-constrained
deployment target, and the seed executed it through numpy's naive int64
matmul — an order of magnitude slower than the float path it was meant
to undercut.  This benchmark measures the rebuilt integer stack
bottom-up:

* ``kernels`` — per-site GEMM latency of the exact BLAS-backed
  ``forward_integer`` vs the int64 ``forward_integer_reference``;
* ``forward`` — the whole quantized network end to end (patch
  projection → blocks → heads) at serving batch size — **the
  acceptance gate**: full mode exits non-zero below ``SPEEDUP_TARGET``;
* ``detect`` — scenes/sec through the full detect path (window
  extraction and NMS included), fast vs ``REPRO_QUANT_EXACT=1``;
* ``engine`` — float-specialist vs quantized micro-batching engines on
  the E11 harness (the quantized configuration must stay within
  ``ENGINE_RATIO_TARGET`` of float at batch >= 8).

Every timed workload asserts **bit-identical outputs** between the BLAS
kernels and the int64 reference before any clock starts — the speedup
is free, not bought with accuracy.  Timing rounds are interleaved and
speedups are medians of per-round ratios, so single-core machine drift
cancels (see :mod:`repro.serve.bench`).

Run standalone:

    PYTHONPATH=src python benchmarks/bench_e12_quant_inference.py
    PYTHONPATH=src python benchmarks/bench_e12_quant_inference.py --smoke

``--smoke`` shrinks every workload (CI-friendly) while keeping
``quant.forward.*`` stage *shares* stable for the CI regression gate
(``repro obs compare --metric share``).  Both modes persist telemetry —
manifest, span tree, and all four result tables — to
``BENCH_e12_quant_inference.json``.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import finalize_benchmark, print_table
from repro.obs import get_registry
from repro.quant.bench import (
    compare_engine_configurations,
    run_e2e_forward,
    run_forward_latency,
    run_kernel_latency,
)

SPEEDUP_TARGET = 5.0
ENGINE_RATIO_TARGET = 2.0


def run_experiment(smoke: bool = False):
    """All four workloads; returns (tables dict, forward speedup)."""
    registry = get_registry()
    registry.reset()  # isolate this run's spans for the share gate
    if smoke:
        kernel_rows = run_kernel_latency(rows_per_gemm=1024, repeats=2)
        forward_rows, forward_speedup = run_forward_latency(
            batch_images=64, repeats=2)
        detect_rows, _ = run_e2e_forward(num_scenes=12, repeats=2)
        engine_rows = compare_engine_configurations(num_scenes=16, repeats=2)
    else:
        kernel_rows = run_kernel_latency()
        forward_rows, forward_speedup = run_forward_latency()
        detect_rows, _ = run_e2e_forward(num_scenes=32, repeats=3)
        engine_rows = compare_engine_configurations()
    tables = {
        "kernels": kernel_rows,
        "forward": forward_rows,
        "detect": detect_rows,
        "engine": engine_rows,
    }
    return tables, forward_speedup


def quantized_engine_ratio(engine_rows) -> float:
    """Float-over-quantized scenes/sec ratio (small is good)."""
    ratios = [row["ratio_vs_float"] for row in engine_rows
              if row["configuration"] == "quantized"]
    return max(ratios) if ratios else float("inf")


def _print_results(tables) -> None:
    print_table("E12: per-site kernel latency (BLAS vs int64)",
                tables["kernels"])
    print_table("E12: end-to-end quantized forward (acceptance gate)",
                tables["forward"])
    print_table("E12: detect-path throughput (fast vs reference)",
                tables["detect"])
    print_table("E12: engine throughput (float vs quantized)",
                tables["engine"])
    print()
    print(get_registry().report("E12 quantized inference"))


def test_e12_quant_inference(benchmark):
    tables, forward_speedup = benchmark.pedantic(
        run_experiment, kwargs={"smoke": True}, rounds=1, iterations=1)
    _print_results(tables)
    # Bit-identity is asserted inside every workload before timing; here
    # only sanity-check the measurements exist and point the right way.
    assert all(row["speedup"] > 1.0 for row in tables["kernels"])
    assert forward_speedup > 1.0
    assert quantized_engine_ratio(tables["engine"]) < float("inf")


def main():
    smoke = "--smoke" in sys.argv[1:]
    tables, forward_speedup = run_experiment(smoke=smoke)
    _print_results(tables)
    finalize_benchmark("e12_quant_inference", **tables)
    failed = False
    if not smoke and forward_speedup < SPEEDUP_TARGET:
        print(f"WARNING: end-to-end quantized forward speedup "
              f"{forward_speedup:.2f}x below the {SPEEDUP_TARGET:.1f}x target")
        failed = True
    ratio = quantized_engine_ratio(tables["engine"])
    if not smoke and ratio > ENGINE_RATIO_TARGET:
        print(f"WARNING: quantized engine is {ratio:.2f}x slower than the "
              f"float configuration (target: within "
              f"{ENGINE_RATIO_TARGET:.1f}x)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
