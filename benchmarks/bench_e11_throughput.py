"""E11 — Serving throughput: per-call rebuild vs session vs engine.

The paper's deployment story is a *stream* of small edge scenes against
one standing mission.  This benchmark measures scenes/sec for the three
execution strategies the serving layer offers over the same detector:

* ``percall_rebuild`` — the seed semantics: every ``detect()`` call
  re-runs mission preparation (LLM graph extraction, few-shot
  refinement, configuration selection, detector construction) before
  scanning a single scene;
* ``percall_cached`` — :class:`repro.serve.MissionSession` alone:
  preparation cached, still one scene per forward;
* ``engine`` — cached session plus :class:`repro.serve.DetectionEngine`
  micro-batching, fusing windows from many scenes into shared forwards
  (swept over ``max_batch`` × ``workers``).

Timing rounds are interleaved across all modes and speedups are the
median of per-round ratios, so single-core machine drift cancels (see
:mod:`repro.serve.bench`).  A correctness gate asserts the engine
reproduces sequential per-scene detection before anything is timed.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_e11_throughput.py
    PYTHONPATH=src python benchmarks/bench_e11_throughput.py --smoke

``--smoke`` shrinks the stream (CI-friendly) while keeping hot-path
stage *shares* stable for the CI regression gate (``repro obs compare
--metric share``).  Both modes persist telemetry — manifest, batched
span tree, ``session.cache.*`` counters, ``engine.*`` distributions,
and the throughput rows — to ``BENCH_e11_throughput.json``.  The full
run exits non-zero if the best engine configuration (batch >= 8) falls
below 2x the per-call rebuild baseline.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import finalize_benchmark, print_table
from repro.obs import get_registry
from repro.serve.bench import best_engine_speedup, run_throughput

SPEEDUP_TARGET = 2.0


def run_experiment(num_scenes: int = 64, repeats: int = 5,
                   batch_sizes=(1, 8, 32), workers=(1, 2)):
    """Throughput sweep; returns (rows, counter/distribution table)."""
    registry = get_registry()
    registry.reset()  # isolate this run's spans, counters, distributions
    rows = run_throughput(num_scenes=num_scenes, repeats=repeats,
                          batch_sizes=batch_sizes, workers=workers)
    snapshot = registry.snapshot()
    serving = [
        {"metric": name, "value": counter,
         "mean": None, "p90": None, "max": None}
        for name, counter in sorted(snapshot.get("counters", {}).items())
        if name.startswith("session.cache.")
    ] + [
        {"metric": name, "value": stats["count"], "mean": stats["mean"],
         "p90": stats["p90"], "max": stats["max"]}
        for name, stats in sorted(snapshot.get("distributions", {}).items())
        if name.startswith("engine.")
    ]
    return rows, serving


def _print_results(rows, serving) -> None:
    print_table("E11: serving throughput (scenes/sec)", rows)
    print_table("E11: session cache counters + engine distributions", serving)
    print()
    print(get_registry().report("E11 serving"))


def test_e11_throughput(benchmark):
    rows, serving = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    _print_results(rows, serving)
    assert best_engine_speedup(rows) >= SPEEDUP_TARGET
    # The serving layer's own telemetry must be populated: the session
    # cache was exercised (hits from the cached modes) and the engine
    # recorded its batch-size distribution.
    metrics = {row["metric"] for row in serving}
    assert "session.cache.hit" in metrics
    assert "engine.batch_size" in metrics


def main():
    smoke = "--smoke" in sys.argv[1:]
    # Smoke keeps CI fast; the share-based regression gate only needs
    # stable *relative* stage weights, which hold at 16 scenes.
    rows, serving = (run_experiment(num_scenes=16, repeats=2,
                                    batch_sizes=(1, 8), workers=(1,))
                     if smoke else run_experiment())
    _print_results(rows, serving)
    finalize_benchmark("e11_throughput", rows, serving=serving)
    best = best_engine_speedup(rows)
    if not smoke and best < SPEEDUP_TARGET:
        print(f"WARNING: best engine speedup {best:.2f}x below the "
              f"{SPEEDUP_TARGET:.1f}x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
