"""E9 — iTask vs a vision-language-model baseline.

Paper motivation: "iTask addresses the challenges of high computational
cost and resource limitations in vision-language models by offering two
configuration models".  This bench reproduces that comparison: a
CLIP-style two-tower VLM trained contrastively on six of the eight
missions, evaluated zero-shot on all eight (two unseen), against the
iTask quantized configuration with its knowledge graph.

Reproduction targets:

* iTask matches/beats the VLM on *seen* missions and clearly beats it on
  *unseen* missions (the KG transfers; the VLM's joint space does not);
* iTask's deployed model is several times cheaper per query (FLOPs and
  modelled edge latency).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import numpy as np

from benchmarks.common import (
    DECISION_THRESHOLD,
    eval_windows,
    finalize_benchmark,
    print_table,
    quantized_configuration,
    task_matcher,
)
from repro.data import get_task, task_names
from repro.detect import window_task_accuracy
from repro.hw import AcceleratorConfig, Compiler, GPUConfig, GPUModel, Simulator
from repro.quant import quantize_vit
from repro.vlm import Tokenizer, TwoTowerVLM, VLMTrainer, VLMTrainingConfig

TRAIN_TASKS = tuple(task_names()[:6])   # the VLM sees these missions
UNSEEN_TASKS = tuple(task_names()[6:])  # held out from VLM training


def _train_vlm(steps: int = 400):
    tokenizer = Tokenizer()
    model = TwoTowerVLM(tokenizer, rng=np.random.default_rng(0))
    trainer = VLMTrainer(model, [get_task(n) for n in TRAIN_TASKS],
                         VLMTrainingConfig(steps=steps, seed=0))
    trainer.train()
    return model


def _calibrate_threshold(model, tasks) -> float:
    """One global similarity threshold, chosen on the training missions."""
    scores, labels = [], []
    for name in tasks:
        dataset = eval_windows(name, seed_offset=7)
        scores.append(model.score_windows(dataset.images,
                                          get_task(name).mission_text))
        labels.append(dataset.task_labels > 0.5)
    scores = np.concatenate(scores)
    labels = np.concatenate(labels)
    candidates = np.linspace(scores.min(), scores.max(), 60)
    accuracies = [((scores >= t) == labels).mean() for t in candidates]
    return float(candidates[int(np.argmax(accuracies))])


def run_accuracy(steps: int = 400):
    vlm = _train_vlm(steps)
    threshold = _calibrate_threshold(vlm, TRAIN_TASKS)
    itask_model = quantized_configuration().model

    rows = []
    for name in task_names():
        dataset = eval_windows(name)
        vlm_scores = vlm.score_windows(dataset.images,
                                       get_task(name).mission_text)
        vlm_acc = float(((vlm_scores >= threshold)
                         == (dataset.task_labels > 0.5)).mean())
        itask_acc = window_task_accuracy(itask_model, dataset,
                                         task_matcher(name),
                                         threshold=DECISION_THRESHOLD)
        rows.append({
            "task": name,
            "split": "seen" if name in TRAIN_TASKS else "UNSEEN",
            "vlm_baseline": vlm_acc,
            "itask_quantized": itask_acc,
        })
    for split in ("seen", "UNSEEN"):
        subset = [r for r in rows if r["split"] == split]
        rows.append({
            "task": f"MEAN ({split})",
            "split": split,
            "vlm_baseline": float(np.mean([r["vlm_baseline"] for r in subset])),
            "itask_quantized": float(np.mean([r["itask_quantized"] for r in subset])),
        })
    return rows, vlm


def run_cost(vlm) -> list:
    """Per-query compute comparison (FLOPs + modelled latency)."""
    itask = quantized_configuration().model
    accel_config = AcceleratorConfig.edge_default()
    itask_program = Compiler(accel_config).compile(itask)
    itask_accel = Simulator(accel_config).simulate(itask_program)
    itask_gpu = GPUModel(GPUConfig.jetson_class()).simulate(itask_program)

    # The VLM's per-query cost is its image tower (mission embedding is
    # cached); model its deployment the same way: quantize + compile.
    rng = np.random.default_rng(0)
    vlm_backbone_q = quantize_vit(
        vlm.image_encoder.backbone,
        rng.random((16, 3, 32, 32)).astype(np.float32))
    vlm_program = Compiler(accel_config).compile(vlm_backbone_q)
    vlm_gpu = GPUModel(GPUConfig.jetson_class()).simulate(vlm_program)

    return [{
        "model": "iTask quantized student",
        "macs_per_query_m": itask_program.total_macs() / 1e6,
        "gpu_latency_ms": itask_gpu.latency_ms,
        "accel_latency_ms": itask_accel.latency_ms,
    }, {
        "model": "VLM image tower",
        "macs_per_query_m": vlm.flops_per_query() / 1e6,
        "gpu_latency_ms": vlm_gpu.latency_ms,
        "accel_latency_ms": None,
    }]


def test_e9_vlm_baseline(benchmark):
    (rows, vlm) = benchmark.pedantic(run_accuracy, rounds=1, iterations=1)
    print_table("E9: iTask vs VLM baseline (task accuracy)", rows)
    cost_rows = run_cost(vlm)
    print_table("E9b: per-query compute", cost_rows)

    seen = next(r for r in rows if r["task"] == "MEAN (seen)")
    unseen = next(r for r in rows if r["task"] == "MEAN (UNSEEN)")
    # iTask competitive on the VLM's own training missions...
    assert seen["itask_quantized"] > seen["vlm_baseline"] - 0.05
    # ...and clearly better on missions the VLM never saw.
    assert unseen["itask_quantized"] > unseen["vlm_baseline"] + 0.05
    # and several times cheaper per query.
    assert (cost_rows[1]["macs_per_query_m"]
            > 3.0 * cost_rows[0]["macs_per_query_m"])


def main():
    rows, vlm = run_accuracy()
    cost_rows = run_cost(vlm)
    print_table("E9: iTask vs VLM baseline (task accuracy)", rows)
    print_table("E9b: per-query compute", cost_rows)
    finalize_benchmark("e9_vlm_baseline", rows, cost=cost_rows)


if __name__ == "__main__":
    sys.exit(main())
