"""E2 — Multi-task robustness of the two configurations.

Paper claim: "the quantized model provides robust multi-task performance"
while the task-specific model is only strong on its own mission.

We run every configuration (each of the 8 specialists plus the quantized
generalist) across every task's scenario and report per-config mean and
worst-case accuracy.  The reproduction target: the quantized generalist's
*worst-case* accuracy beats the specialists' worst cases (off-task
collapse), even though each specialist wins its own diagonal cell.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    DECISION_THRESHOLD,
    eval_windows,
    finalize_benchmark,
    print_table,
    quantized_configuration,
    specialist,
    task_matcher,
)
from repro.data import task_names
from repro.detect import window_task_accuracy


def run_experiment():
    names = task_names()
    configs = [(f"specialist:{n}", specialist(n).model) for n in names]
    configs.append(("quantized-generalist", quantized_configuration().model))

    rows = []
    for config_name, model in configs:
        accuracies = {}
        for task in names:
            accuracies[task] = window_task_accuracy(
                model, eval_windows(task), task_matcher(task),
                threshold=DECISION_THRESHOLD,
            )
        values = list(accuracies.values())
        row = {"config": config_name}
        row.update({t: accuracies[t] for t in names})
        row["mean"] = sum(values) / len(values)
        row["worst"] = min(values)
        rows.append(row)
    return rows


def test_e2_multitask_robustness(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E2: multi-task robustness", rows,
                columns=["config", "mean", "worst"])
    quantized_row = next(r for r in rows if r["config"] == "quantized-generalist")
    specialist_rows = [r for r in rows if r["config"] != "quantized-generalist"]
    # Reproduction target: the generalist is the most robust configuration.
    mean_specialist_worst = sum(r["worst"] for r in specialist_rows) / len(specialist_rows)
    assert quantized_row["worst"] > mean_specialist_worst
    # And each specialist still wins (or ties) its own diagonal task.
    own_wins = sum(
        1 for r in specialist_rows
        if r[r["config"].split(":", 1)[1]] >= quantized_row[r["config"].split(":", 1)[1]] - 0.02
    )
    assert own_wins >= len(specialist_rows) // 2


def main():
    rows = run_experiment()
    print_table("E2: multi-task robustness (per-task)", rows)
    print_table("E2: summary", rows, columns=["config", "mean", "worst"])
    finalize_benchmark("e2_multitask", rows)


if __name__ == "__main__":
    sys.exit(main())
